#include "core/chaos.h"

#include <algorithm>

#include "common/guesterror.h"
#include "common/logging.h"
#include "sim/snapshot.h"

namespace uexc::rt::chaos {

namespace {

/** Repro-file sections: metadata plus the nested rig snapshot. */
constexpr Word kTagRepro = sim::snapshotTag('R', 'P', 'R', 'O');
constexpr Word kTagReproSnap = sim::snapshotTag('R', 'S', 'N', 'P');

} // namespace

// -- Rig --------------------------------------------------------------------

Rig::Rig(sim::FaultInjector *injector, const RigConfig &config)
    : config_(config), injector_(injector)
{
    sim::MachineConfig mcfg;
    if (config.memBytes != 0)
        mcfg.memBytes = config.memBytes;
    mcfg.cpu.userVectorHw = config.hardwareExtensions;
    mcfg.cpu.tlbmpHw = config.hardwareExtensions;
    mcfg.cpu.fastInterpreter = config.fastInterpreter;
    mcfg.cpu.faultInjector = injector;
    mcfg.scheduler = config.scheduler;
    machine_ = std::make_unique<sim::Machine>(mcfg);
    kernel_ = std::make_unique<os::Kernel>(*machine_);
    kernel_->boot();
    env_ = std::make_unique<UserEnv>(*kernel_,
                                     DeliveryMode::FastSoftware);
    env_->install(0xffff);
    env_->allocate(kRegion, kRegionBytes);
    env_->allocate(kScratch, os::kPageBytes);
    env_->setHandler([this](Fault &) {
        // Idempotent recovery: make the whole region writable.
        env_->protect(kRegion, kRegionBytes,
                      os::kProtRead | os::kProtWrite);
    });
    env_->store(kScratch, 0x5c5c5c5cu); // map it for good
    env_->setHandlerBudget(config.handlerBudget);

    if (injector_) {
        machine_->registerSnapshotSection(
            sim::snapshotTag('F', 'I', 'N', 'J'),
            [this](sim::SnapshotWriter &w) {
                injector_->snapshotSave(w);
            },
            [this](sim::SnapshotReader &r) {
                injector_->snapshotLoad(r);
            });
    }
    machine_->registerSnapshotSection(
        sim::snapshotTag('C', 'R', 'I', 'G'),
        [this](sim::SnapshotWriter &w) {
            w.u32(cursor_);
            w.u32(static_cast<Word>(words_.size()));
            for (Word word : words_)
                w.u32(word);
        },
        [this](sim::SnapshotReader &r) {
            Word cursor = r.u32();
            if (cursor > kTotalOps)
                r.fail("rig op cursor out of range");
            Word nwords = r.u32();
            unsigned reads_done =
                cursor > kChaosOps + kFinalWords
                    ? cursor - (kChaosOps + kFinalWords)
                    : 0;
            if (nwords != reads_done)
                r.fail("rig word count inconsistent with op cursor");
            std::vector<Word> words(nwords);
            for (Word &word : words)
                word = r.u32();
            cursor_ = cursor;
            words_ = std::move(words);
        });
}

void
Rig::restore(const std::vector<Byte> &image)
{
    machine_->restore(image);
}

void
Rig::runTo(unsigned op)
{
    if (op > kTotalOps)
        UEXC_FATAL("chaos: op %u past the end of the campaign", op);
    while (cursor_ < op) {
        runOp(cursor_);
        cursor_++;
    }
}

void
Rig::runOp(unsigned op)
{
    if (op < kChaosOps) {
        // Protection-fault churn: the window injections land in.
        unsigned round = op / kOpsPerRound;
        unsigned step = op % kOpsPerRound;
        if (step == 0) {
            env_->protect(kRegion, kRegionBytes, os::kProtRead);
        } else if (step <= 8) {
            unsigned i = step - 1;
            Addr va = kRegion + ((round * 8 + i) * 132u) % kRegionBytes;
            env_->store(va & ~3u, round * 100 + i);
        } else if (step <= 12) {
            unsigned i = step - 9;
            (void)env_->load(kRegion + (i * 292u) % kRegionBytes);
        } else {
            (void)env_->load(kScratch);
        }
        return;
    }

    unsigned f = op - kChaosOps;
    if (f == 0 && injector_ != nullptr) {
        // Close the injection window before recovery rewrites the
        // region; still-pending events never fired.
        injector_->clear();
    }
    if (f < kFinalWords) {
        Word off = f * kCheckStride;
        env_->store(kRegion + off, 0xabcd0000u + off);
    } else {
        Word off = (f - kFinalWords) * kCheckStride;
        words_.push_back(env_->load(kRegion + off));
    }
}

// -- campaigns --------------------------------------------------------------

std::vector<sim::FaultEvent>
planEvents(std::uint64_t seed, InstCount window, Rig &rig,
           bool *may_diagnose)
{
    using sim::FaultInjector;
    using sim::FaultKind;

    std::vector<sim::FaultEvent> events;
    bool may = false;
    std::uint64_t rng = seed;
    unsigned nevents = 1 + FaultInjector::splitmix64(rng) % 3;
    for (unsigned i = 0; i < nevents; i++) {
        sim::FaultEvent e;
        e.kind =
            static_cast<FaultKind>(FaultInjector::splitmix64(rng) % 5);
        e.hart = 0;
        e.atInst = rig.env().cpu().instret() +
                   FaultInjector::splitmix64(rng) % window;
        switch (e.kind) {
          case FaultKind::MemBitFlip: {
            // Confined to the workload region: the recovery contract
            // (final rewrite) covers exactly this memory.
            Word off = static_cast<Word>(FaultInjector::splitmix64(rng) %
                                         kRegionBytes) &
                       ~3u;
            e.addr =
                rig.physOf(kRegion + (off & ~(os::kPageBytes - 1))) +
                (off & (os::kPageBytes - 1));
            e.bit = FaultInjector::splitmix64(rng) % 32;
            break;
          }
          case FaultKind::TlbCorrupt:
          case FaultKind::TlbSpuriousMiss:
            e.tlbIndex =
                static_cast<unsigned>(FaultInjector::splitmix64(rng));
            // Only in-place corruption may end in a diagnosis (the
            // pmap consistency check); an eviction always recovers.
            may |= e.kind == FaultKind::TlbCorrupt;
            break;
          case FaultKind::SpuriousException:
            // Always transparent since the injector masks the stub's
            // K0 resume window (the PR 4 hazard): the refill lands
            // one instruction later, where k0 is dead.
            e.addr = kScratch;
            break;
          case FaultKind::HandlerRunaway: {
            Addr page = rig.env().stubAddr() & ~(os::kPageBytes - 1);
            e.addr = rig.physOf(page) +
                     (rig.env().stubAddr() & (os::kPageBytes - 1));
            break;
          }
        }
        events.push_back(e);
    }
    if (may_diagnose != nullptr)
        *may_diagnose = may;
    return events;
}

Reference
makeReference(const RigConfig &config)
{
    Reference ref;
    Rig rig(nullptr, config);
    rig.runTo(kChaosOps);
    ref.window = rig.env().cpu().instret();
    rig.run();
    ref.words = rig.words();
    return ref;
}

CampaignOutcome
runCampaign(std::uint64_t seed, InstCount window,
            const std::vector<Word> &reference, const RigConfig &config,
            unsigned checkpoint_every_ops,
            std::vector<CampaignCheckpoint> *checkpoints)
{
    CampaignOutcome out;
    sim::FaultInjector inj;
    std::unique_ptr<Rig> rig;
    try {
        rig = std::make_unique<Rig>(&inj, config);
        bool may = false;
        for (const sim::FaultEvent &e :
             planEvents(seed, window, *rig, &may)) {
            inj.addEvent(e);
        }
        out.mayDiagnose = may;

        while (!rig->done()) {
            if (checkpoint_every_ops != 0 && checkpoints != nullptr &&
                rig->cursor() % checkpoint_every_ops == 0) {
                checkpoints->push_back({rig->cursor(),
                                        rig->env().cpu().instret(),
                                        rig->checkpoint()});
            }
            unsigned next =
                checkpoint_every_ops != 0
                    ? std::min(kTotalOps,
                               rig->cursor() + checkpoint_every_ops)
                    : kTotalOps;
            rig->runTo(next);
        }
        out.words = rig->words();
        if (out.words != reference) {
            out.hostFailure = true;
            out.failOp = kTotalOps;
            out.what = "final contents diverged from reference";
        }
    } catch (const GuestError &e) {
        out.diagnosed = true;
        out.what = e.what();
        out.failOp = rig ? rig->cursor() + 1 : 0;
    } catch (const std::exception &e) {
        out.hostFailure = true;
        out.what = e.what();
        out.failOp = rig ? rig->cursor() + 1 : 0;
    } catch (...) {
        out.hostFailure = true;
        out.what = "unknown exception";
        out.failOp = rig ? rig->cursor() + 1 : 0;
    }
    return out;
}

// -- minimal repro windows ---------------------------------------------------

CampaignOutcome
replayRepro(const ReproWindow &repro,
            const std::vector<Word> &reference)
{
    CampaignOutcome out;
    sim::FaultInjector inj;
    std::unique_ptr<Rig> rig;
    try {
        rig = std::make_unique<Rig>(&inj, repro.config);
        rig->restore(repro.snapshot);
        if (rig->cursor() != repro.startOp) {
            throw sim::SnapshotError(
                "repro snapshot op cursor does not match startOp");
        }
        rig->runTo(repro.endOp);
        if (repro.endOp == kTotalOps) {
            out.words = rig->words();
            if (out.words != reference) {
                out.hostFailure = true;
                out.failOp = kTotalOps;
                out.what = "final contents diverged from reference";
            }
        }
    } catch (const GuestError &e) {
        out.diagnosed = true;
        out.what = e.what();
        out.failOp = rig ? rig->cursor() + 1 : 0;
    } catch (const std::exception &e) {
        out.hostFailure = true;
        out.what = e.what();
        out.failOp = rig ? rig->cursor() + 1 : 0;
    } catch (...) {
        out.hostFailure = true;
        out.what = "unknown exception";
        out.failOp = rig ? rig->cursor() + 1 : 0;
    }
    return out;
}

ReproWindow
shrinkCampaign(std::uint64_t seed, InstCount window,
               const std::vector<Word> &reference,
               const RigConfig &config, unsigned checkpoint_every_ops)
{
    ReproWindow repro;
    repro.seed = seed;
    repro.window = window;
    repro.config = config;
    repro.campaignOps = kTotalOps;

    std::vector<CampaignCheckpoint> cps;
    CampaignOutcome full = runCampaign(seed, window, reference, config,
                                       checkpoint_every_ops, &cps);
    if (!outcomeFailed(full))
        return repro;
    unsigned end_op = full.failOp != 0 ? full.failOp : kTotalOps;
    while (!cps.empty() && cps.back().op >= end_op)
        cps.pop_back();
    if (cps.empty())
        return repro;

    auto reproduces = [&](const CampaignCheckpoint &cp) {
        ReproWindow cand;
        cand.config = config;
        cand.startOp = cp.op;
        cand.endOp = end_op;
        cand.snapshot = cp.image;
        CampaignOutcome out = replayRepro(cand, reference);
        return out.diagnosed == full.diagnosed &&
               out.hostFailure == full.hostFailure &&
               out.what == full.what;
    };

    // Binary-search the latest checkpoint that still reproduces. The
    // op-0 checkpoint always does (the campaign is deterministic), so
    // the search is anchored; the final verification guards against a
    // non-monotone surprise.
    std::size_t lo = 0, hi = cps.size() - 1;
    while (lo < hi) {
        std::size_t mid = lo + (hi - lo + 1) / 2;
        if (reproduces(cps[mid]))
            lo = mid;
        else
            hi = mid - 1;
    }
    if (!reproduces(cps[lo]))
        return repro;

    repro.found = true;
    repro.startOp = cps[lo].op;
    repro.endOp = end_op;
    repro.startInst = cps[lo].instret;
    repro.snapshot = std::move(cps[lo].image);
    repro.failure = full.what;
    return repro;
}

void
writeReproFile(const ReproWindow &repro, const std::string &path)
{
    sim::SnapshotWriter w;
    w.beginSection(kTagRepro);
    w.u64(repro.seed);
    w.u64(repro.window);
    w.boolean(repro.config.hardwareExtensions);
    w.boolean(repro.config.fastInterpreter);
    w.u64(repro.config.handlerBudget);
    w.u64(repro.config.memBytes);
    w.u32(repro.startOp);
    w.u32(repro.endOp);
    w.u64(repro.startInst);
    w.u32(repro.campaignOps);
    w.str(repro.failure);
    w.endSection();
    w.beginSection(kTagReproSnap);
    w.u64(repro.snapshot.size());
    w.bytes(repro.snapshot.data(), repro.snapshot.size());
    w.endSection();
    sim::writeSnapshotFile(path, w.finish());
}

ReproWindow
readReproFile(const std::string &path)
{
    std::vector<Byte> bytes = sim::readSnapshotFile(path);
    sim::SnapshotImage img(bytes);

    ReproWindow repro;
    sim::SnapshotReader r = img.section(kTagRepro);
    repro.seed = r.u64();
    repro.window = r.u64();
    repro.config.hardwareExtensions = r.boolean();
    repro.config.fastInterpreter = r.boolean();
    repro.config.handlerBudget = r.u64();
    repro.config.memBytes = std::size_t(r.u64());
    repro.startOp = r.u32();
    repro.endOp = r.u32();
    repro.startInst = r.u64();
    repro.campaignOps = r.u32();
    repro.failure = r.str();
    if (repro.campaignOps != kTotalOps)
        r.fail("repro was recorded against a different campaign shape");
    if (repro.startOp >= repro.endOp || repro.endOp > kTotalOps)
        r.fail("repro op range out of bounds");
    r.expectEnd();

    sim::SnapshotReader s = img.section(kTagReproSnap);
    std::uint64_t len = s.u64();
    if (len != s.remaining())
        s.fail("nested snapshot length mismatch");
    repro.snapshot.resize(len);
    s.bytes(repro.snapshot.data(), repro.snapshot.size());
    s.expectEnd();

    repro.found = true;
    return repro;
}

std::string
reproCommandLine(const std::string &path)
{
    return "uexc-snap replay " + path;
}

} // namespace uexc::rt::chaos
