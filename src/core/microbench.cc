#include "core/microbench.h"

#include "common/logging.h"
#include "core/lintspec.h"
#include "os/kernel.h"
#include "sim/cp0.h"
#include "sim/pseudo.h"

namespace uexc::rt::micro {

using namespace sim;
using namespace os;

namespace {

constexpr Addr kHeap = 0x10000000;
/** Exception mask enabled for fast scenarios. */
constexpr Word kFastMask =
    (1u << static_cast<unsigned>(ExcCode::Mod)) |
    (1u << static_cast<unsigned>(ExcCode::TlbL)) |
    (1u << static_cast<unsigned>(ExcCode::TlbS)) |
    (1u << static_cast<unsigned>(ExcCode::AdEL)) |
    (1u << static_cast<unsigned>(ExcCode::AdES)) |
    (1u << static_cast<unsigned>(ExcCode::Bp)) |
    (1u << static_cast<unsigned>(ExcCode::Ov));

/** The fast-stub body used by Table 2: call the null C handler, then
 *  advance the saved EPC when the scenario must skip the faulting
 *  instruction (@p skip_fault). */
void
emitTable2Body(Assembler &a, bool skip_fault)
{
    a.jal("null_handler");
    a.nop();
    if (skip_fault) {
        a.lw(T0, static_cast<SWord>(uframe::Epc), T3);
        a.addiu(T0, T0, 4);
        a.sw(T0, static_cast<SWord>(uframe::Epc), T3);
    }
}

/** Emit the common benchmark loop skeleton. The caller provides the
 *  faulting instruction and the per-iteration post-resume work. */
void
emitLoop(Assembler &a,
         const std::function<void(Assembler &)> &emit_fault,
         const std::function<void(Assembler &)> &emit_post)
{
    a.label("user_main");
    a.label("bench_loop");
    // distinct warm-up breakpoint site: handler resumption re-arrives
    // at fault_site, so the loop top must be a different address
    a.nop();
    a.label("fault_site");
    emit_fault(a);
    a.label("resume_point");
    emit_post(a);
    a.addiu(S1, S1, -1);
    a.bgtz(S1, "bench_loop");
    a.nop();
    a.label("park");
    a.j("park");
    a.nop();

    a.label("null_handler");
    a.jr(RA);
    a.nop();
}

/** Emit a guest syscall with up to three register-copied args. */
void
emitSyscall3(Assembler &a, Word num, unsigned a0_src)
{
    a.move(A0, a0_src);
    // a1/a2 set by the caller right before
    pseudo::emitSyscall(a, num);
}

struct Harness
{
    explicit Harness(const MachineConfig &cfg)
        : machine(cfg), kernel(machine)
    {
        kernel.boot();
        proc = &kernel.createProcess();
    }

    void
    finish(GuestImage image, Scenario scenario)
    {
        img = std::move(image);
        prog = img.textProgram();
        kernel.loadImage(*proc, img);
        proc->as().allocate(kHeap, kPageBytes,
                            kProtRead | kProtWrite);
        bool uv = scenario == Scenario::HwVectorSimple ||
                  scenario == Scenario::HwVectorTableSimple;
        kernel.enterUser(*proc, img.entry, uv);
    }

    Machine machine;
    Kernel kernel;
    Process *proc = nullptr;
    GuestImage img;
    Program prog;
};

} // namespace

const char *
scenarioName(Scenario scenario)
{
    switch (scenario) {
      case Scenario::FastSimple:          return "fast-simple";
      case Scenario::FastWriteProt:       return "fast-writeprot";
      case Scenario::FastSubpage:         return "fast-subpage";
      case Scenario::UltrixSimple:        return "ultrix-simple";
      case Scenario::UltrixWriteProt:     return "ultrix-writeprot";
      case Scenario::HwVectorSimple:      return "hwvector-simple";
      case Scenario::HwVectorTableSimple: return "hwvector-table";
      case Scenario::NullSyscall:         return "null-syscall";
      case Scenario::FastSpecialized:     return "fast-specialized";
    }
    return "?";
}

Program
buildScenarioProgram(Scenario scenario)
{
    Assembler a(kUserTextBase);

    switch (scenario) {
      case Scenario::FastSimple:
      case Scenario::FastSpecialized:
        emitLoop(a,
                 [](Assembler &as) { as.lw(T7, 2, T6); },
                 [](Assembler &) {});
        if (scenario == Scenario::FastSimple) {
            emitFastStub(a, "stub", SavePolicy::UltrixEquivalent,
                         [](Assembler &as) { emitTable2Body(as, true); });
        } else {
            // the specialized handler of section 4.2.2: saves only ra
            emitFastStub(a, "stub", SavePolicy::Minimal,
                         [](Assembler &as) {
                             as.sw(RA, static_cast<SWord>(uframe::Spill),
                                   T3);
                             emitTable2Body(as, true);
                             as.lw(RA, static_cast<SWord>(uframe::Spill),
                                   T3);
                         });
        }
        break;

      case Scenario::FastWriteProt:
        emitLoop(a,
                 [](Assembler &as) { as.sw(T7, 0, T6); },
                 [](Assembler &as) {
                     // re-protect the page for the next iteration
                     as.li(A1, kPageBytes);
                     as.li(A2, kProtRead);
                     emitSyscall3(as, sys::UexcProtect, T6);
                 });
        emitFastStub(a, "stub", SavePolicy::UltrixEquivalent,
                     [](Assembler &as) { emitTable2Body(as, false); });
        break;

      case Scenario::FastSubpage:
        emitLoop(a,
                 [](Assembler &as) { as.sw(T7, 0, T6); },
                 [](Assembler &as) {
                     as.li(A1, kSubpageBytes);
                     as.li(A2, kProtRead);
                     emitSyscall3(as, sys::SubpageProtect, T6);
                 });
        emitFastStub(a, "stub", SavePolicy::UltrixEquivalent,
                     [](Assembler &as) { emitTable2Body(as, false); });
        break;

      case Scenario::UltrixSimple:
        emitLoop(a,
                 [](Assembler &as) { as.lw(T7, 2, T6); },
                 [](Assembler &) {});
        // signal handler: advance sc_pc past the faulting load
        a.label("sig_handler");
        a.lw(T0, sigctx::Pc * 4, A2);
        a.addiu(T0, T0, 4);
        a.sw(T0, sigctx::Pc * 4, A2);
        a.jr(RA);
        a.nop();
        emitTrampoline(a, "tramp");
        break;

      case Scenario::UltrixWriteProt:
        emitLoop(a,
                 [](Assembler &as) { as.sw(T7, 0, T6); },
                 [](Assembler &as) {
                     as.li(A1, kPageBytes);
                     as.li(A2, kProtRead);
                     emitSyscall3(as, sys::Mprotect, T6);
                 });
        // SIGSEGV handler: mprotect the faulting page writable again
        a.label("sig_handler");
        a.lw(A0, sigctx::BadVA * 4, A2);
        a.srl(A0, A0, kPageShift);
        a.sll(A0, A0, kPageShift);
        a.li(A1, kPageBytes);
        a.li(A2, kProtRead | kProtWrite);
        a.li(V0, sys::Mprotect);
        a.syscall();
        a.jr(RA);
        a.nop();
        emitTrampoline(a, "tramp");
        break;

      case Scenario::HwVectorSimple:
      case Scenario::HwVectorTableSimple:
        emitLoop(a,
                 [](Assembler &as) { as.lw(T7, 2, T6); },
                 [](Assembler &) {});
        emitUserVectorStub(a, "stub", [](Assembler &as) {
            as.jal("null_handler");
            as.nop();
            as.mfux(T0, UxReg::Epc);
            as.addiu(T0, T0, 4);
            as.mtux(T0, UxReg::Epc);
        });
        if (scenario == Scenario::HwVectorTableSimple) {
            // process-local vector table: 16 entries, all the stub
            a.align(64);
            a.label("uvtable");
            for (unsigned i = 0; i < NumExcCodes; i++)
                a.wordAddr("stub");
        }
        break;

      case Scenario::NullSyscall:
        emitLoop(a,
                 [](Assembler &as) {
                     as.li(V0, sys::Getpid);
                     as.syscall();
                 },
                 [](Assembler &) {});
        break;
    }
    return a.finalize();
}

os::GuestImage
buildScenarioImage(Scenario scenario)
{
    Program prog = buildScenarioProgram(scenario);
    GuestImage img =
        GuestImage::fromProgram(prog, scenarioName(scenario));
    img.entry = prog.symbol("user_main");
    img.setLintConfig(userProgramLintConfig(prog));
    img.validate();
    return img;
}

namespace {

std::unique_ptr<Harness>
buildScenario(Scenario scenario, const MachineConfig &config)
{
    auto h = std::make_unique<Harness>(config);
    h->finish(buildScenarioImage(scenario), scenario);

    switch (scenario) {
      case Scenario::FastSimple:
      case Scenario::FastSpecialized:
        h->kernel.svcUexcEnable(*h->proc, kFastMask,
                                h->prog.symbol("stub"), kUexcFramePage);
        break;

      case Scenario::FastWriteProt:
        h->kernel.svcUexcEnable(*h->proc, kFastMask,
                                h->prog.symbol("stub"), kUexcFramePage);
        h->kernel.svcUexcSetFlags(*h->proc, kPfEagerAmplify);
        h->kernel.svcUexcProtect(*h->proc, kHeap, kPageBytes,
                                 kProtRead);
        break;

      case Scenario::FastSubpage:
        h->kernel.svcUexcEnable(*h->proc, kFastMask,
                                h->prog.symbol("stub"), kUexcFramePage);
        h->kernel.svcSubpageProtect(*h->proc, kHeap + 0x800,
                                    kSubpageBytes, kProtRead);
        break;

      case Scenario::UltrixSimple:
        h->proc->setField(proc::TrampolineU, h->prog.symbol("tramp"));
        h->proc->setField(proc::SigHandlers + 4 * kSigbus,
                          h->prog.symbol("sig_handler"));
        break;

      case Scenario::UltrixWriteProt:
        h->proc->setField(proc::TrampolineU, h->prog.symbol("tramp"));
        h->proc->setField(proc::SigHandlers + 4 * kSigsegv,
                          h->prog.symbol("sig_handler"));
        h->kernel.svcMprotect(*h->proc, kHeap, kPageBytes, kProtRead);
        break;

      case Scenario::HwVectorSimple:
      case Scenario::HwVectorTableSimple:
        h->machine.cpu().cp0().setUxReg(
            UxReg::Target,
            h->prog.symbol(scenario == Scenario::HwVectorTableSimple
                               ? "uvtable"
                               : "stub"));
        break;

      case Scenario::NullSyscall:
        break;
    }

    // loop counter and fault operands
    Cpu &cpu = h->machine.cpu();
    cpu.setReg(S1, 1'000'000);  // effectively unbounded
    cpu.setReg(T6, scenario == Scenario::FastSubpage ? kHeap + 0x800
                                                     : kHeap);
    cpu.setReg(T7, 1);
    return h;
}

Addr
handlerEntry(const Harness &h, Scenario scenario)
{
    switch (scenario) {
      case Scenario::UltrixSimple:
      case Scenario::UltrixWriteProt:
        return h.prog.symbol("sig_handler");
      case Scenario::NullSyscall:
        return 0;
      default:
        return h.prog.symbol("null_handler");
    }
}

void
runTo(Cpu &cpu, Addr stop)
{
    cpu.addBreakpoint(stop);
    RunResult r = cpu.run(10'000'000);
    cpu.removeBreakpoint(stop);
    if (r.reason != StopReason::Breakpoint)
        UEXC_FATAL("microbench: run did not reach 0x%08x", stop);
}

} // namespace

MachineConfig
paperMachineConfig()
{
    MachineConfig cfg;
    cfg.cpu.cachesEnabled = true;
    // hardware extensions are present but cost nothing unless used
    cfg.cpu.userVectorHw = true;
    cfg.cpu.tlbmpHw = true;
    return cfg;
}

Timing
measure(Scenario scenario, const MachineConfig &config,
        unsigned warm_iters)
{
    MachineConfig cfg = config;
    if (scenario == Scenario::HwVectorTableSimple)
        cfg.cpu.userVectorTable = true;
    auto h = buildScenario(scenario, cfg);
    Cpu &cpu = h->machine.cpu();
    Addr fault_site = h->prog.symbol("fault_site");
    Addr resume_point = h->prog.symbol("resume_point");
    Addr handler = handlerEntry(*h, scenario);

    // warm TLB, caches and the loop's steady state; the loop-top
    // breakpoint is distinct from fault_site because re-execute-style
    // handlers revisit fault_site mid-iteration
    Addr loop_top = h->prog.symbol("bench_loop");
    for (unsigned i = 0; i <= warm_iters; i++)
        runTo(cpu, loop_top);
    runTo(cpu, fault_site);

    // attribute kernel instructions during the measured exception
    PhaseProfiler prof;
    prof.addPhase("kernel", Cpu::RefillVector,
                  h->machine.symbol(ksym::StockEnd));
    cpu.setObserver(&prof);

    Timing t;
    const CostModel &cost = config.cpu.cost;
    Cycles c0 = cpu.cycles();
    if (handler != 0) {
        runTo(cpu, handler);
        Cycles c1 = cpu.cycles();
        runTo(cpu, resume_point);
        Cycles c2 = cpu.cycles();
        t.deliverCycles = c1 - c0;
        t.returnCycles = c2 - c1;
    } else {
        runTo(cpu, resume_point);
        t.deliverCycles = cpu.cycles() - c0;
        t.returnCycles = 0;
    }
    cpu.setObserver(nullptr);

    t.roundTripCycles = t.deliverCycles + t.returnCycles;
    t.deliverUs = cost.toMicros(t.deliverCycles);
    t.returnUs = cost.toMicros(t.returnCycles);
    t.roundTripUs = cost.toMicros(t.roundTripCycles);
    t.kernelInsts = prof.phases()[0].instructions;
    return t;
}

std::vector<PhaseStats>
profileFastPath(const MachineConfig &config)
{
    auto h = buildScenario(Scenario::FastSimple, config);
    Cpu &cpu = h->machine.cpu();

    for (unsigned i = 0; i <= 4; i++)
        runTo(cpu, h->prog.symbol("bench_loop"));
    runTo(cpu, h->prog.symbol("fault_site"));

    PhaseProfiler prof;
    const Machine &m = h->machine;
    prof.addPhase("Decode Exception", m.symbol(ksym::FastDecode),
                  m.symbol(ksym::FastCompat));
    prof.addPhase("Compatibility Check", m.symbol(ksym::FastCompat),
                  m.symbol(ksym::FastSave));
    prof.addPhase("Save Partial State", m.symbol(ksym::FastSave),
                  m.symbol(ksym::FastFp));
    prof.addPhase("Floating Point Check", m.symbol(ksym::FastFp),
                  m.symbol(ksym::FastTlbCheck));
    prof.addPhase("Check for TLB Fault", m.symbol(ksym::FastTlbCheck),
                  m.symbol(ksym::FastVector));
    prof.addPhase("Vector to User", m.symbol(ksym::FastVector),
                  m.symbol(ksym::FastEnd));
    cpu.setObserver(&prof);
    runTo(cpu, h->prog.symbol("null_handler"));
    cpu.setObserver(nullptr);
    return prof.phases();
}

} // namespace uexc::rt::micro
