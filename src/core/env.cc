#include "core/env.h"

#include "common/bits.h"
#include "common/guesterror.h"
#include "common/logging.h"
#include "core/lintspec.h"
#include "sim/cp0.h"
#include "sim/faultinject.h"

namespace uexc::rt {

using namespace sim;
using namespace os;

// -- Fault ---------------------------------------------------------------------

Word
Fault::reg(unsigned r) const
{
    return env_.contextReg(r);
}

void
Fault::setReg(unsigned r, Word value)
{
    env_.setContextReg(r, value);
}

void
Fault::resumeAt(Addr pc)
{
    switch (env_.curDelivery_) {
      case DeliveryMode::UltrixSignal:
        env_.kernel().machine().debugWriteWord(
            env_.sigctxKva() + sigctx::Pc * 4, pc);
        break;
      case DeliveryMode::FastSoftware:
        env_.kernel().machine().debugWriteWord(
            env_.frameKva() + uframe::Epc, pc);
        break;
      case DeliveryMode::FastHardwareVector:
        env_.cpu().cp0().setUxReg(UxReg::Epc, pc);
        break;
    }
}

// -- UserEnv ----------------------------------------------------------------------

UserEnv::UserEnv(Kernel &kernel, DeliveryMode mode, SavePolicy policy,
                 unsigned hart)
    : kernel_(kernel), mode_(mode), policy_(policy), hart_(hart)
{
    if (mode == DeliveryMode::FastHardwareVector &&
        !kernel.machine().cpu().config().userVectorHw) {
        UEXC_FATAL("FastHardwareVector mode needs "
                   "CpuConfig::userVectorHw");
    }
    if (hart >= kernel.machine().numHarts())
        UEXC_FATAL("UserEnv on hart %u of a %u-hart machine", hart,
                   kernel.machine().numHarts());
}

void
UserEnv::bind()
{
    Machine &m = kernel_.machine();
    if (m.currentHart() != hart_)
        m.setCurrentHart(hart_);
    // Re-activating syncs the shared curproc global and this hart's
    // ASID/PTEBase after another env ran; host-side only, uncharged
    // (the host is the scheduler here). The comparison must be
    // against the machine-wide guest curproc: another hart's env may
    // have activated its process since we last ran, even though this
    // hart's own current() still names ours.
    if (proc_ && kernel_.guestCurrent() != proc_)
        kernel_.activate(*proc_);
}

Program
UserEnv::buildShimProgram(SavePolicy policy, bool user_vector_hw)
{
    Assembler a(kUserTextBase);

    // parking loop: the CPU sits here, in user mode, between
    // host-driven operations
    a.label("shim_idle");
    a.j("shim_idle");
    a.nop();

    // fault sites: single-instruction load/store used to inject
    // application memory accesses into the real machine pipeline
    a.label("fault_lw");
    a.lw(T7, 0, T6);
    a.label("fault_lw_done");
    a.nop();
    a.nop();
    a.label("fault_sw");
    a.sw(T7, 0, T6);
    a.label("fault_sw_done");
    a.nop();
    a.nop();

    // raw syscall site: v0/a0-a2 are set by the host
    a.label("do_syscall");
    a.syscall();
    a.label("do_syscall_ret");
    a.nop();
    a.nop();

    // user-level TLB protection modification site (section 3.2.3)
    a.label("tlbmp_site");
    a.tlbmp(T6, T7);
    a.label("tlbmp_done");
    a.nop();
    a.nop();

    // fast software stub: body bridges to the host handler
    emitFastStub(a, "fast_stub", policy,
                 [](Assembler &as) { as.hcall(svc::Upcall); });

    // hardware-vectored stub
    if (user_vector_hw) {
        emitUserVectorStub(a, "hw_stub", [](Assembler &as) {
            as.hcall(svc::Upcall);
        });
    }

    // Unix signal handler (called by the trampoline) + trampoline
    a.label("unix_handler");
    a.hcall(svc::Upcall);
    a.jr(RA);
    a.nop();
    emitTrampoline(a, "sigtramp");

    return a.finalize();
}

os::GuestImage
UserEnv::buildShimImage(SavePolicy policy, bool user_vector_hw)
{
    Program p = buildShimProgram(policy, user_vector_hw);
    GuestImage img = GuestImage::fromProgram(p, "user-shim");
    img.entry = p.symbol("shim_idle");
    img.setLintConfig(userProgramLintConfig(p));
    img.validate();
    return img;
}

void
UserEnv::buildShim()
{
    GuestImage img = buildShimImage(
        policy_, kernel_.machine().cpu().config().userVectorHw);
    Program p = img.textProgram();
#ifndef NDEBUG
    // Debug builds refuse to install a shim that fails the analyzer,
    // including the worst-case-latency bound of every handler stub
    // against the delivery watchdog budget.
    std::vector<analysis::Finding> findings =
        analysis::lint(p, shimLintConfig());
    if (analysis::hasErrors(findings)) {
        UEXC_PANIC("user shim fails uexc-lint:\n%s",
                   analysis::formatFindings(findings).c_str());
    }
#endif
    kernel_.loadImage(*proc_, img);

    shimIdle_ = p.symbol("shim_idle");
    faultLw_ = p.symbol("fault_lw");
    faultLwDone_ = p.symbol("fault_lw_done");
    faultSw_ = p.symbol("fault_sw");
    faultSwDone_ = p.symbol("fault_sw_done");
    doSyscall_ = p.symbol("do_syscall");
    doSyscallRet_ = p.symbol("do_syscall_ret");
    tlbmpSite_ = p.symbol("tlbmp_site");
    tlbmpDone_ = p.symbol("tlbmp_done");
    stub_ = p.symbol(mode_ == DeliveryMode::FastHardwareVector
                         ? "hw_stub"
                         : "fast_stub");
    stubRestore_ = p.symbol("fast_stub__restore");
    stubEnd_ = p.symbol("fast_stub__end");
    trampoline_ = p.symbol("sigtramp");

    unixHandler_ = p.symbol("unix_handler");
}

analysis::LintConfig
UserEnv::shimLintConfig() const
{
    Program p = buildShimProgram(
        policy_, kernel_.machine().cpu().config().userVectorHw);
    analysis::LintConfig config = userProgramLintConfig(p);
    // A handler whose static worst case cannot fit the watchdog
    // budget would be demoted on every single delivery.
    applyHandlerWcetBudget(config, handlerBudget_);
    return config;
}

void
UserEnv::setHandlerBudget(InstCount budget)
{
    handlerBudget_ = budget;
#ifndef NDEBUG
    Program p = buildShimProgram(
        policy_, kernel_.machine().cpu().config().userVectorHw);
    std::vector<analysis::Finding> findings =
        analysis::lint(p, shimLintConfig());
    if (analysis::hasErrors(findings)) {
        UEXC_PANIC("user shim fails uexc-lint under handler budget "
                   "%llu:\n%s",
                   (unsigned long long)budget,
                   analysis::formatFindings(findings).c_str());
    }
#endif
}

void
UserEnv::install(Word exc_mask)
{
    if (installed_)
        UEXC_FATAL("UserEnv installed twice");
    Machine &m = kernel_.machine();
    if (m.numHarts() > 1) {
        if (kernel_.hasUpcallHandler(hart_))
            UEXC_FATAL("another UserEnv is already installed on hart "
                       "%u; one environment per hart (env.h)", hart_);
    } else if (kernel_.hasUpcallHandler()) {
        UEXC_FATAL("another UserEnv is already installed on this "
                   "kernel; one machine per environment (env.h)");
    }
    if (m.currentHart() != hart_)
        m.setCurrentHart(hart_);
    proc_ = &kernel_.createProcess();
    buildShim();
    kernel_.activate(*proc_);

    if (m.numHarts() > 1)
        kernel_.setUpcallHandler(hart_, [this](Kernel &) { onUpcall(); });
    else
        kernel_.setUpcallHandler([this](Kernel &) { onUpcall(); });

    // Unix signal state is always set up: it is the fallback for
    // recursive exceptions and the primary path in UltrixSignal mode
    proc_->setField(proc::TrampolineU, trampoline_);
    for (unsigned sig : {kSigill, kSigtrap, kSigfpe, kSigbus, kSigsegv})
        proc_->setField(proc::SigHandlers + 4 * sig, unixHandler_);

    switch (mode_) {
      case DeliveryMode::UltrixSignal:
        break;
      case DeliveryMode::FastSoftware:
        kernel_.svcUexcEnable(*proc_, exc_mask, stub_, kUexcFramePage);
        writeCanary();
        break;
      case DeliveryMode::FastHardwareVector:
        kernel_.svcUexcEnable(*proc_, exc_mask, stub_, kUexcFramePage);
        cpu().cp0().setUxReg(UxReg::Target, stub_);
        writeCanary();
        break;
    }

    // The fast stub's restore window has k0 live across user
    // instructions; tell any fault injector not to raise spurious
    // exceptions inside it (the PR 4 K0 resume-window hazard). Every
    // env shares the same shim layout, so the window may already be
    // registered by another hart's env.
    if (FaultInjector *inj = cpu().config().faultInjector) {
        bool present = false;
        for (const auto &[b, e] : inj->maskedPcWindows())
            present = present || (b == stubRestore_ && e == stubEnd_);
        if (!present)
            inj->maskPcWindow(stubRestore_, stubEnd_);
    }

    m.registerSnapshotSection(
        sim::snapshotTag('U', 'E', 'N', '\0') | (Word(hart_) << 24),
        [this](sim::SnapshotWriter &w) { snapshotSave(w); },
        [this](sim::SnapshotReader &r) { snapshotLoad(r); });

    kernel_.enterUser(*proc_, shimIdle_,
                      mode_ == DeliveryMode::FastHardwareVector);
    installed_ = true;
}

void
UserEnv::snapshotSave(sim::SnapshotWriter &w) const
{
    if (inHandler_)
        UEXC_FATAL("UserEnv: checkpoint taken mid-delivery (snapshots "
                    "are only meaningful between operations)");
    w.u32(hart_);
    w.u32(static_cast<std::uint32_t>(mode_));
    w.boolean(demoted_);
    w.u64(handlerBudget_);
    w.u64(syscallOverhead_);
    w.u64(stats_.loads);
    w.u64(stats_.stores);
    w.u64(stats_.faultsDelivered);
    w.u64(stats_.guestSyscalls);
    w.u64(stats_.inHandlerServiceCalls);
    w.u64(stats_.deliveryDemoted);
    w.u64(stats_.savePageCorruptions);
}

void
UserEnv::snapshotLoad(sim::SnapshotReader &r)
{
    if (r.u32() != hart_)
        r.fail("env hart mismatch");
    if (r.u32() != static_cast<std::uint32_t>(mode_))
        r.fail("env delivery-mode mismatch");
    demoted_ = r.boolean();
    handlerBudget_ = r.u64();
    syscallOverhead_ = r.u64();
    stats_.loads = r.u64();
    stats_.stores = r.u64();
    stats_.faultsDelivered = r.u64();
    stats_.guestSyscalls = r.u64();
    stats_.inHandlerServiceCalls = r.u64();
    stats_.deliveryDemoted = r.u64();
    stats_.savePageCorruptions = r.u64();
    inHandler_ = false;
}

void
UserEnv::allocate(Addr va, Word len, Word prot)
{
    proc_->as().allocate(va, len, prot);
}

void
UserEnv::runGuest(Addr entry, Addr stop, InstCount limit)
{
    Cpu &c = cpu();
    InstCount budget = std::min(limit, handlerBudget_);
    c.setPc(entry);
    c.addBreakpoint(stop);
    RunResult r;
    try {
        r = c.run(budget);
        if (r.reason == StopReason::InstLimit &&
            deliveryMode() != DeliveryMode::UltrixSignal) {
            // Watchdog: the delivery exhausted its instruction budget
            // — a runaway user handler. Demote to kernel-mediated
            // delivery and retry the (idempotent, single-instruction)
            // guest entry once; the retried fault then takes the
            // stock signal path with an intact handler chain.
            demote();
            c.setPc(entry);
            r = c.run(budget);
        }
    } catch (...) {
        c.removeBreakpoint(stop);
        throw;
    }
    c.removeBreakpoint(stop);
    if (r.reason != StopReason::Breakpoint) {
        UEXC_GUEST_ERROR(
            hart_, c.pc(), c.cp0().badVAddr(),
            "guest execution from 0x%08x did not reach 0x%08x "
            "(%s after %llu instructions%s)", entry, stop,
            r.reason == StopReason::Halted ? "halted"
                                           : "instruction limit",
            static_cast<unsigned long long>(r.instsExecuted),
            demoted_ ? ", after demotion to kernel delivery" : "");
    }
}

bool
UserEnv::hostRefill(Addr va, AccessType type)
{
    // Emulate the TLB refill handler host-side: used when a quiet
    // translation misses only because the entry was shot down, which
    // must not surface as a fault to in-handler code. Charges what
    // the 8-instruction guest refill costs.
    Word pte = proc_->as().pte(va);
    if (!(pte & sim::entrylo::V))
        return false;
    if (type == AccessType::Store && !(pte & sim::entrylo::D))
        return false;
    Word hi = (va & sim::entryhi::VpnMask) |
              (proc_->asid() << sim::entryhi::AsidShift);
    cpu().tlb().setEntry(cpu().cp0().randomIndex(), hi, pte);
    cpu().charge(12);
    return true;
}

Word
UserEnv::load(Addr va)
{
    bind();
    stats_.loads++;
    if (isAligned(va, 4)) {
        TranslateResult tr = cpu().translateQuiet(va, AccessType::Load);
        if (!tr.ok && tr.refill && inHandler_ &&
            hostRefill(va, AccessType::Load)) {
            tr = cpu().translateQuiet(va, AccessType::Load);
        }
        if (tr.ok) {
            cpu().charge(cpu().config().cost.baseCost +
                         cpu().config().cost.loadExtra);
            cpu().chargeDataAccess(tr.paddr, tr.cacheable);
            return kernel_.machine().mem().readWord(tr.paddr);
        }
    }
    if (inHandler_) {
        UEXC_GUEST_ERROR(hart_, cpu().pc(), va,
                         "fault on load 0x%08x from inside a fault "
                         "handler (recursive faults on the host "
                         "bridge are not supported; see DESIGN.md)",
                         va);
    }
    cpu().setReg(T6, va);
    runGuest(faultLw_, faultLwDone_, 1'000'000);
    return cpu().reg(T7);
}

void
UserEnv::store(Addr va, Word value)
{
    bind();
    stats_.stores++;
    if (isAligned(va, 4)) {
        TranslateResult tr = cpu().translateQuiet(va, AccessType::Store);
        if (!tr.ok && tr.refill && inHandler_ &&
            hostRefill(va, AccessType::Store)) {
            tr = cpu().translateQuiet(va, AccessType::Store);
        }
        if (tr.ok) {
            cpu().charge(cpu().config().cost.baseCost +
                         cpu().config().cost.storeExtra);
            cpu().chargeDataAccess(tr.paddr, tr.cacheable);
            kernel_.machine().mem().writeWord(tr.paddr, value);
            return;
        }
    }
    if (inHandler_) {
        UEXC_GUEST_ERROR(hart_, cpu().pc(), va,
                         "fault on store 0x%08x from inside a fault "
                         "handler (recursive faults on the host "
                         "bridge are not supported; see DESIGN.md)",
                         va);
    }
    cpu().setReg(T6, va);
    cpu().setReg(T7, value);
    runGuest(faultSw_, faultSwDone_, 1'000'000);
}

void
UserEnv::setHandler(sim::ExcCode code, FaultHandler handler)
{
    typedHandlers_[static_cast<unsigned>(code)] = std::move(handler);
}

Word
UserEnv::guestSyscall(Word num, Word a0, Word a1, Word a2)
{
    if (inHandler_)
        UEXC_PANIC("guestSyscall from inside a fault handler");
    bind();
    Cpu &c = cpu();
    c.setReg(V0, num);
    c.setReg(A0, a0);
    c.setReg(A1, a1);
    c.setReg(A2, a2);
    runGuest(doSyscall_, doSyscallRet_, 1'000'000);
    stats_.guestSyscalls++;
    return c.reg(V0);
}

void
UserEnv::protect(Addr va, Word len, Word prot)
{
    Word call = (mode_ == DeliveryMode::UltrixSignal) ? sys::Mprotect
                                                      : sys::UexcProtect;
    if (inHandler_) {
        cpu().charge(syscallOverhead_);
        stats_.inHandlerServiceCalls++;
        if (mode_ == DeliveryMode::UltrixSignal)
            kernel_.svcMprotect(*proc_, va, len, prot);
        else
            kernel_.svcUexcProtect(*proc_, va, len, prot);
        return;
    }
    guestSyscall(call, va, len, prot);
}

void
UserEnv::subpageProtect(Addr va, Word len, Word prot)
{
    if (inHandler_) {
        cpu().charge(syscallOverhead_);
        stats_.inHandlerServiceCalls++;
        kernel_.svcSubpageProtect(*proc_, va, len, prot);
        return;
    }
    guestSyscall(sys::SubpageProtect, va, len, prot);
}

void
UserEnv::userTlbModify(Addr va, bool writable, bool valid)
{
    if (inHandler_) {
        // A handler executing TLBMP: with the hardware present this
        // is a register-file-speed operation, which is exactly what
        // makes user-level fault handling self-sufficient (section
        // 2.2). We apply the instruction's semantics directly.
        if (!cpu().config().tlbmpHw)
            UEXC_PANIC("in-handler userTlbModify requires TLBMP "
                       "hardware (the software emulation re-enters "
                       "the kernel)");
        auto hit = cpu().tlb().probeQuiet(va, proc_->asid());
        if (!hit || !cpu().tlb().entry(*hit).userModifiable()) {
            // miss or no U bit: the hardware would trap to the
            // kernel's emulation; model that cost and do it there
            cpu().charge(syscallOverhead_);
            Word pte = proc_->as().pte(va);
            pte = writable ? (pte | sim::entrylo::D)
                           : (pte & ~sim::entrylo::D);
            pte = valid ? (pte | sim::entrylo::V)
                        : (pte & ~sim::entrylo::V);
            proc_->as().setPte(va, pte);
            return;
        }
        const sim::TlbEntry &e = cpu().tlb().entry(*hit);
        Word lo = e.lo;
        lo = writable ? (lo | sim::entrylo::D) : (lo & ~sim::entrylo::D);
        lo = valid ? (lo | sim::entrylo::V) : (lo & ~sim::entrylo::V);
        cpu().tlb().setEntry(*hit, e.hi, lo);
        cpu().charge(2);
        return;
    }
    bind();
    Word ctl = (writable ? 1u : 0u) | (valid ? 2u : 0u);
    cpu().setReg(T6, va);
    cpu().setReg(T7, ctl);
    runGuest(tlbmpSite_, tlbmpDone_, 1'000'000);
}

void
UserEnv::setEagerAmplify(bool enable)
{
    Word flags = enable ? kPfEagerAmplify : 0;
    if (inHandler_) {
        cpu().charge(syscallOverhead_);
        kernel_.svcUexcSetFlags(*proc_, flags);
        return;
    }
    guestSyscall(sys::UexcSetFlags, flags);
}

// -- upcall dispatch -----------------------------------------------------------------

Addr
UserEnv::frameKva() const
{
    Word frame_u_base = proc_->field(proc::UexcFrameU);
    Word frame_k_base = proc_->field(proc::UexcFrameK);
    return frame_k_base + (curFrameU_ - frame_u_base);
}

void
UserEnv::demote()
{
    if (demoted_)
        return;
    kernel_.demoteDelivery(*proc_);
    demoted_ = true;
    stats_.deliveryDemoted++;
}

Word
UserEnv::canaryWord(Word index)
{
    // Deterministic, index-dependent pattern (an all-zero page or a
    // single repeated word would miss many corruption shapes).
    return 0xc0ffee00u ^ (index * 0x9e3779b9u);
}

/**
 * The pinned exception frame page holds one 128-byte frame per
 * ExcCode: 16 * 128 = 2048 bytes. The upper half of the 4 KB page is
 * dead space, which the canary fills: any stray write into the pinned
 * page — a wild user store, a corrupted DMA, an injected bit flip —
 * lands in it with probability 1/2 even if it misses live frames.
 */
void
UserEnv::writeCanary()
{
    Machine &m = kernel_.machine();
    Addr base = proc_->field(proc::UexcFrameK);
    for (Word off = os::kUexcCanaryOffset; off < os::kPageBytes;
         off += 4)
        m.debugWriteWord(base + off, canaryWord(off / 4));
}

bool
UserEnv::checkCanary()
{
    Machine &m = kernel_.machine();
    Addr base = proc_->field(proc::UexcFrameK);
    for (Word off = os::kUexcCanaryOffset; off < os::kPageBytes;
         off += 4) {
        if (m.debugReadWord(base + off) == canaryWord(off / 4))
            continue;
        // Corruption of the pinned save page: the fast mechanism can
        // no longer be trusted with this process. Demote to
        // kernel-mediated delivery and repair the canary so the
        // diagnosis fires once per corruption event.
        stats_.savePageCorruptions++;
        demote();
        writeCanary();
        return false;
    }
    return true;
}

Addr
UserEnv::sigctxKva() const
{
    return Cpu::Kseg0Base + proc_->as().physOf(curSigctxU_);
}

void
UserEnv::onUpcall()
{
    stats_.faultsDelivered++;
    Machine &m = kernel_.machine();
    ExcCode code;
    Addr pc, badva;
    bool bd;

    // Latch the mechanism this delivery actually used: a demotion
    // that happens here (canary corruption) or mid-handler only
    // applies to *future* deliveries; the fault in flight decodes and
    // resumes through the mechanism that delivered it (its frame
    // words sit in the canary-free low half of the pinned page).
    curDelivery_ = deliveryMode();
    if (curDelivery_ != DeliveryMode::UltrixSignal)
        checkCanary();

    switch (curDelivery_) {
      case DeliveryMode::FastSoftware: {
        curFrameU_ = cpu().reg(T3);
        Addr fk = frameKva();
        Word cause_word = m.debugReadWord(fk + uframe::Cause);
        code = static_cast<ExcCode>((cause_word & cause::ExcCodeMask) >>
                                    cause::ExcCodeShift);
        bd = cause_word & cause::BD;
        pc = m.debugReadWord(fk + uframe::Epc);
        badva = m.debugReadWord(fk + uframe::BadVA);
        break;
      }
      case DeliveryMode::FastHardwareVector: {
        Word cond = cpu().cp0().uxReg(UxReg::Cond);
        code = static_cast<ExcCode>(cond >> 2);
        bd = cond & 1u;
        pc = cpu().cp0().uxReg(UxReg::Epc);
        badva = cpu().cp0().uxReg(UxReg::BadAddr);
        break;
      }
      case DeliveryMode::UltrixSignal:
      default: {
        curSigctxU_ = cpu().reg(A2);
        Addr sk = sigctxKva();
        Word cause_word = m.debugReadWord(sk + sigctx::Cause * 4);
        code = static_cast<ExcCode>((cause_word & cause::ExcCodeMask) >>
                                    cause::ExcCodeShift);
        bd = cause_word & cause::BD;
        pc = m.debugReadWord(sk + sigctx::Pc * 4);
        badva = m.debugReadWord(sk + sigctx::BadVA * 4);
        break;
      }
    }

    const FaultHandler &handler =
        typedHandlers_[static_cast<unsigned>(code)]
            ? typedHandlers_[static_cast<unsigned>(code)]
            : handler_;
    if (!handler) {
        UEXC_GUEST_ERROR(hart_, pc, badva,
                         "fault (%s at pc=0x%08x badva=0x%08x) "
                         "delivered with no handler installed",
                         excName(code), pc, badva);
    }

    curCode_ = code;
    bool was = inHandler_;
    inHandler_ = true;
    Fault fault(*this, code, pc, badva, bd);
    handler(fault);
    inHandler_ = was;
    // Validate the pinned save page again before the guest resumes
    // from it (the canary covers the unused top half of the page).
    if (curDelivery_ != DeliveryMode::UltrixSignal)
        checkCanary();
}

Word
UserEnv::contextReg(unsigned r) const
{
    if (r == 0)
        return 0;
    Machine &m = kernel_.machine();
    switch (curDelivery_) {
      case DeliveryMode::UltrixSignal:
        return m.debugReadWord(sigctxKva() + (sigctx::Regs + r - 1) * 4);
      case DeliveryMode::FastSoftware: {
        Addr fk = frameKva();
        switch (r) {
          case AT: return m.debugReadWord(fk + uframe::At);
          case T0: return m.debugReadWord(fk + uframe::T0);
          case T1: return m.debugReadWord(fk + uframe::T1);
          case T2: return m.debugReadWord(fk + uframe::T2);
          case T3: return m.debugReadWord(fk + uframe::T3);
          case T4: return m.debugReadWord(fk + uframe::T4);
          case T5: return m.debugReadWord(fk + uframe::T5);
          default: break;
        }
        if (policy_ == SavePolicy::UltrixEquivalent) {
            int slot = spillSlot(r);
            if (slot >= 0)
                return m.debugReadWord(fk + uframe::Spill + 4 * slot);
        }
        return cpu().reg(r);
      }
      case DeliveryMode::FastHardwareVector:
      default:
        switch (r) {
          case AT: return cpu().cp0().uxReg(UxReg::Scratch0);
          case T0: return cpu().cp0().uxReg(UxReg::Scratch1);
          case T1: return cpu().cp0().uxReg(UxReg::Scratch2);
          case T2: return cpu().cp0().uxReg(UxReg::Scratch3);
          case T3: return cpu().cp0().uxReg(UxReg::Scratch4);
          case RA: return cpu().cp0().uxReg(UxReg::Scratch5);
          default: return cpu().reg(r);
        }
    }
}

void
UserEnv::setContextReg(unsigned r, Word value)
{
    if (r == 0)
        return;
    Machine &m = kernel_.machine();
    switch (curDelivery_) {
      case DeliveryMode::UltrixSignal:
        m.debugWriteWord(sigctxKva() + (sigctx::Regs + r - 1) * 4,
                         value);
        return;
      case DeliveryMode::FastSoftware: {
        Addr fk = frameKva();
        switch (r) {
          case AT: m.debugWriteWord(fk + uframe::At, value); return;
          case T0: m.debugWriteWord(fk + uframe::T0, value); return;
          case T1: m.debugWriteWord(fk + uframe::T1, value); return;
          case T2: m.debugWriteWord(fk + uframe::T2, value); return;
          case T3: m.debugWriteWord(fk + uframe::T3, value); return;
          case T4: m.debugWriteWord(fk + uframe::T4, value); return;
          case T5: m.debugWriteWord(fk + uframe::T5, value); return;
          default: break;
        }
        if (policy_ == SavePolicy::UltrixEquivalent) {
            int slot = spillSlot(r);
            if (slot >= 0) {
                m.debugWriteWord(fk + uframe::Spill + 4 * slot, value);
                return;
            }
        }
        cpu().setReg(r, value);
        return;
      }
      case DeliveryMode::FastHardwareVector:
      default:
        switch (r) {
          case AT: cpu().cp0().setUxReg(UxReg::Scratch0, value); return;
          case T0: cpu().cp0().setUxReg(UxReg::Scratch1, value); return;
          case T1: cpu().cp0().setUxReg(UxReg::Scratch2, value); return;
          case T2: cpu().cp0().setUxReg(UxReg::Scratch3, value); return;
          case T3: cpu().cp0().setUxReg(UxReg::Scratch4, value); return;
          case RA: cpu().cp0().setUxReg(UxReg::Scratch5, value); return;
          default: cpu().setReg(r, value); return;
        }
    }
}

} // namespace uexc::rt
