#include "core/lintspec.h"

#include "common/logging.h"
#include "sim/cp0.h"
#include "sim/isa.h"

namespace uexc::rt {

using namespace sim;

namespace {

constexpr const char *kEndSuffix = "__end";

Word
regBit(unsigned r)
{
    return Word{1} << r;
}

DecodedInst
instAt(const Program &prog, Addr a)
{
    Addr off = a - prog.origin;
    Word w = (a >= prog.origin && off / 4 < prog.words.size())
                 ? prog.words[off / 4]
                 : 0;
    return decode(w);
}

} // namespace

Word
fastStubScratchMask()
{
    return regBit(AT) | regBit(T0) | regBit(T1) | regBit(T2) |
           regBit(T3) | regBit(T4) | regBit(T5) | regBit(K0) |
           regBit(K1);
}

Word
hwStubScratchMask()
{
    return regBit(K0) | regBit(K1);
}

analysis::LintConfig
userProgramLintConfig(const Program &prog)
{
    analysis::LintConfig config;

    std::vector<analysis::AddrRange> data;
    if (prog.hasSymbol("uvtable")) {
        Addr t = prog.symbol("uvtable");
        data.push_back({t, t + NumExcCodes * 4});
    }

    analysis::RegionSpec text;
    text.name = "user-text";
    text.begin = prog.origin;
    text.end = prog.end();
    text.userMode = true;
    text.dataRanges = data;
    for (const auto &[name, addr] : prog.symbols) {
        if (name.ends_with(kEndSuffix))
            continue;
        if (addr >= text.begin && addr < text.end)
            text.entries.push_back(addr);
    }
    config.regions.push_back(std::move(text));

    // One handler region per X / X__end stub pair.
    for (const auto &[name, addr] : prog.symbols) {
        if (name.ends_with(kEndSuffix))
            continue;
        if (!prog.hasSymbol(name + kEndSuffix))
            continue;
        analysis::RegionSpec h;
        h.name = name;
        h.begin = addr;
        h.end = prog.symbol(name + kEndSuffix);
        h.userMode = true;
        h.handler = true;
        h.entries = {addr};
        h.dataRanges = data;
        // The hardware-vectored stub opens by stashing registers in
        // the user exception scratch registers; the software stub is
        // entered with at/t0-t5 already frame-saved by the kernel.
        h.scratchMask = instAt(prog, addr).op == Op::Mtux
                            ? hwStubScratchMask()
                            : fastStubScratchMask();
        config.regions.push_back(std::move(h));
    }
    return config;
}

std::vector<Addr>
perHartEntryPoints(const Program &prog, unsigned num_harts)
{
    std::vector<Addr> entries;
    for (unsigned i = 0; i < num_harts; ++i) {
        std::string name = "mh_hart" + std::to_string(i) + "_entry";
        if (!prog.hasSymbol(name))
            UEXC_FATAL("program exports no '%s': built for fewer "
                       "than %u harts", name.c_str(), num_harts);
        entries.push_back(prog.symbol(name));
    }
    return entries;
}

void
applyHandlerWcetBudget(analysis::LintConfig &config, Cycles budget)
{
    config.analyzeWcet = true;
    for (analysis::RegionSpec &r : config.regions) {
        if (r.handler && !r.wcetBudget)
            r.wcetBudget = budget;
    }
}

analysis::LintConfig
userProgramLintConfig(const Program &prog, unsigned num_harts)
{
    analysis::LintConfig config = userProgramLintConfig(prog);
    std::vector<Addr> entries = perHartEntryPoints(prog, num_harts);
    // Handlers are still entered asynchronously (by the vectoring
    // hardware), so their starts remain roots of the text region.
    for (const auto &[name, addr] : prog.symbols) {
        if (!name.ends_with(kEndSuffix) &&
            prog.hasSymbol(name + kEndSuffix)) {
            entries.push_back(addr);
        }
    }
    config.regions.front().entries = std::move(entries);
    return config;
}

} // namespace uexc::rt
