#include "core/userprogs.h"

#include <functional>

#include "common/logging.h"
#include "core/lintspec.h"
#include "core/stubs.h"
#include "os/layout.h"
#include "sim/cp0.h"
#include "sim/isa.h"
#include "sim/pseudo.h"

namespace uexc::rt::userprog {

using namespace sim;
using namespace os;

namespace {

/** Exception mask the fast-delivery scenarios enable. */
constexpr Word kFaultMask =
    (1u << static_cast<unsigned>(ExcCode::Mod)) |
    (1u << static_cast<unsigned>(ExcCode::TlbL)) |
    (1u << static_cast<unsigned>(ExcCode::TlbS)) |
    (1u << static_cast<unsigned>(ExcCode::AdEL)) |
    (1u << static_cast<unsigned>(ExcCode::AdES));

/** The swizzle target's payload word ("swizzled object" contents). */
constexpr Word kSwizzlePayload = 0x5157495a;
/** The value a resolved future produces. */
constexpr Word kFutureValue = 42;

using EmitFn = std::function<void(Assembler &)>;

/**
 * Assemble a two-section program: data at kUserDataBase first (so its
 * symbols can be bound as externals), then text at kUserTextBase.
 * @p data_bss_bytes extends the data section's memory extent past its
 * initialized words (ELF-style BSS, zero-filled by the loader).
 */
GuestImage
assembleImage(const std::string &name, const EmitFn &emit_data,
              const EmitFn &emit_text, Word data_bss_bytes = 0)
{
    Program data;
    bool has_data = static_cast<bool>(emit_data);
    if (has_data) {
        Assembler d(kUserDataBase);
        emit_data(d);
        data = d.finalize();
    }

    Assembler a(kUserTextBase);
    if (has_data) {
        for (const auto &[sym, addr] : data.symbols)
            a.bindExternal(sym, addr);
    }
    emit_text(a);
    Program text = a.finalize();

    GuestImage img;
    img.name = name;

    GuestSection tsec;
    tsec.name = ".text";
    tsec.vaddr = text.origin;
    tsec.words = text.words;
    tsec.memBytes = static_cast<Word>(4 * text.words.size());
    tsec.writable = false;
    tsec.executable = true;
    img.sections.push_back(std::move(tsec));

    if (has_data) {
        GuestSection dsec;
        dsec.name = ".data";
        dsec.vaddr = data.origin;
        dsec.words = data.words;
        dsec.memBytes =
            static_cast<Word>(4 * data.words.size()) + data_bss_bytes;
        dsec.writable = true;
        dsec.executable = false;
        img.sections.push_back(std::move(dsec));
    }

    img.symbols = text.symbols;
    if (has_data)
        img.symbols.insert(data.symbols.begin(), data.symbols.end());
    img.entry = img.symbol("_start");

    img.setLintConfig(userProgramLintConfig(img.textProgram()));
    img.validate();
    return img;
}

/** NUL-terminated string constant, padded to a word boundary. */
void
emitString(Assembler &a, const std::string &label, const std::string &s)
{
    a.label(label);
    std::string padded = s;
    padded.push_back('\0');
    while (padded.size() % 4 != 0)
        padded.push_back('\0');
    for (std::size_t i = 0; i < padded.size(); i += 4) {
        a.word(Word(Byte(padded[i])) | Word(Byte(padded[i + 1])) << 8 |
               Word(Byte(padded[i + 2])) << 16 |
               Word(Byte(padded[i + 3])) << 24);
    }
}

/** _start: call main, pass its return value to exit(). */
void
emitCrt0(Assembler &a)
{
    a.label("_start");
    a.jal("main");
    a.nop();
    a.move(A0, V0);
    pseudo::emitSyscall(a, sys::Exit);
    a.label("crt0_park");
    a.j("crt0_park");
    a.nop();
}

/** exit(code) directly, for failure paths inside main. exit() does
 *  not return; the park jump terminates the block for the CFG (and
 *  catches a broken kernel that resumed us). */
void
emitExit(Assembler &a, const std::string &label, Word code)
{
    a.label(label);
    a.li(A0, code);
    pseudo::emitSyscall(a, sys::Exit);
    a.j("crt0_park");
    a.nop();
}

/** hits := hits + 1, clobbering only @p t_a / @p t_b. */
void
emitCountHit(Assembler &a, unsigned t_a, unsigned t_b)
{
    pseudo::loadGlobal(a, t_a, "hits", t_b);
    a.addiu(t_a, t_a, 1);
    pseudo::storeGlobal(a, t_a, "hits", t_b);
}

/**
 * The scenario-program prologue: main parses argv[1] and branches to
 * "setup_signal" on 's', falls through toward the fast setup on 'u',
 * exits 2 on anything else. execve's convention: a0 = argc,
 * a1 = argv.
 */
void
emitModeDispatch(Assembler &a)
{
    a.label("main");
    a.li(T0, 2);
    a.slt(T1, A0, T0);
    a.bne(T1, Zero, "fail_usage");
    a.nop();
    a.lw(T2, 4, A1);
    a.lbu(T3, 0, T2);
    a.li(T4, 's');
    a.beq(T3, T4, "setup_signal");
    a.nop();
    a.li(T4, 'u');
    a.bne(T3, T4, "fail_usage");
    a.nop();
}

/** s0 := one fresh heap page from sbrk(). */
void
emitGrabHeapPage(Assembler &a)
{
    a.li(A0, kPageBytes);
    pseudo::emitSyscall(a, sys::Sbrk);
    a.move(S0, V0);
}

/** uexc_enable(kFaultMask, stub, frame page) + eager amplification. */
void
emitFastSetup(Assembler &a)
{
    a.li(A0, kFaultMask);
    pseudo::loadAddress(a, A1, "stub");
    a.li(A2, kUexcFramePage);
    pseudo::emitSyscall(a, sys::UexcEnable);
    a.li(A0, kPfEagerAmplify);
    pseudo::emitSyscall(a, sys::UexcSetFlags);
}

/** sigaction(sig, handler) + settramp(tramp). */
void
emitSignalSetup(Assembler &a, unsigned sig)
{
    a.li(A0, sig);
    pseudo::loadAddress(a, A1, "sig_handler");
    pseudo::emitSyscall(a, sys::Sigaction);
    pseudo::loadAddress(a, A0, "tramp");
    pseudo::emitSyscall(a, sys::SetTrampoline);
}

/** protect(s0 page, @p prot) through syscall number @p num. */
void
emitProtectHeap(Assembler &a, Word num, Word prot)
{
    a.move(A0, S0);
    a.li(A1, kPageBytes);
    a.li(A2, prot);
    pseudo::emitSyscall(a, num);
}

// -- hello --------------------------------------------------------------------

GuestImage
buildHello()
{
    const std::string msg = "hello, userland\n";
    return assembleImage(
        "hello",
        [&](Assembler &d) { emitString(d, "msg", msg); },
        [&](Assembler &a) {
            emitCrt0(a);
            a.label("main");
            a.li(A0, 1);
            pseudo::loadAddress(a, A1, "msg");
            a.li(A2, static_cast<Word>(msg.size()));
            pseudo::emitSyscall(a, sys::Write);
            a.li(T0, static_cast<Word>(msg.size()));
            a.bne(V0, T0, "fail");
            a.nop();
            pseudo::emitSyscall(a, sys::Getpid);
            a.blez(V0, "fail");
            a.nop();
            a.move(V0, Zero);
            a.jr(RA);
            a.nop();
            emitExit(a, "fail", 1);
        });
}

// -- sbrktest -----------------------------------------------------------------

GuestImage
buildSbrkTest()
{
    constexpr unsigned kPages = 8;
    return assembleImage(
        "sbrktest",
        [](Assembler &d) {
            d.label("marker");
            d.word(0x12345678);
            // one word of BSS, covered by the section's memBytes
            // extension below: the loader must hand it to us zeroed
            d.label("bss_word");
        },
        [](Assembler &a) {
            emitCrt0(a);
            a.label("main");
            // initialized data arrived intact
            pseudo::loadGlobal(a, T0, "marker", T1);
            a.li(T1, 0x12345678);
            a.bne(T0, T1, "fail");
            a.nop();
            // BSS is zero-filled
            pseudo::loadGlobal(a, T0, "bss_word", T1);
            a.bne(T0, Zero, "fail");
            a.nop();
            // s0 = current break; grow by kPages pages (sbrk returns
            // the OLD break)
            a.move(A0, Zero);
            pseudo::emitSyscall(a, sys::Sbrk);
            a.move(S0, V0);
            a.li(A0, kPages * kPageBytes);
            pseudo::emitSyscall(a, sys::Sbrk);
            a.bne(V0, S0, "fail");
            a.nop();
            // touch every new page (TLB refill per page), checking
            // the fresh frames come up zeroed
            a.li(S1, kPages);
            a.move(T6, S0);
            a.label("wloop");
            a.lw(T0, 4, T6);
            a.bne(T0, Zero, "fail");
            a.nop();
            a.sw(S1, 0, T6);
            a.addiu(T6, T6, kPageBytes);
            a.addiu(S1, S1, -1);
            a.bgtz(S1, "wloop");
            a.nop();
            // read the markers back
            a.li(S1, kPages);
            a.move(T6, S0);
            a.label("rloop");
            a.lw(T0, 0, T6);
            a.bne(T0, S1, "fail");
            a.nop();
            a.addiu(T6, T6, kPageBytes);
            a.addiu(S1, S1, -1);
            a.bgtz(S1, "rloop");
            a.nop();
            // negative increment moves the break back
            a.li(A0, static_cast<Word>(-kPageBytes));
            pseudo::emitSyscall(a, sys::Sbrk);
            a.move(A0, Zero);
            pseudo::emitSyscall(a, sys::Sbrk);
            a.li(T1, (kPages - 1) * kPageBytes);
            a.addu(T1, S0, T1);
            a.bne(V0, T1, "fail");
            a.nop();
            a.move(V0, Zero);
            a.jr(RA);
            a.nop();
            emitExit(a, "fail", 1);
        },
        /*data_bss_bytes=*/4);
}

// -- forktest -----------------------------------------------------------------

GuestImage
buildForkTest()
{
    const std::string ok = "forktest ok\n";
    return assembleImage(
        "forktest",
        [&](Assembler &d) {
            emitString(d, "path", "out.txt");
            emitString(d, "cmsg", "hi!");  // exactly one word with NUL
            emitString(d, "okmsg", ok);
        },
        [&](Assembler &a) {
            emitCrt0(a);
            a.label("main");
            // scratch page for wait()'s status word and the read-back
            // buffer
            a.li(A0, kPageBytes);
            pseudo::emitSyscall(a, sys::Sbrk);
            a.move(S2, V0);
            pseudo::emitSyscall(a, sys::Fork);
            a.bne(V0, Zero, "parent");
            a.nop();
            // -- child: write a file and exit 7 --
            pseudo::loadAddress(a, A0, "path");
            a.li(A1, kOpenCreate | kOpenWrite);
            pseudo::emitSyscall(a, sys::Open);
            a.bltz(V0, "cfail");
            a.nop();
            a.move(S0, V0);
            a.move(A0, S0);
            pseudo::loadAddress(a, A1, "cmsg");
            a.li(A2, 4);
            pseudo::emitSyscall(a, sys::Write);
            a.li(T0, 4);
            a.bne(V0, T0, "cfail");
            a.nop();
            a.move(A0, S0);
            pseudo::emitSyscall(a, sys::Close);
            a.li(A0, 7);
            pseudo::emitSyscall(a, sys::Exit);
            emitExit(a, "cfail", 9);
            // -- parent --
            a.label("parent");
            a.move(S3, V0);
            a.move(A0, S2);
            pseudo::emitSyscall(a, sys::Wait);
            a.bne(V0, S3, "fail");
            a.nop();
            a.lw(T0, 0, S2);
            a.li(T1, 7);
            a.bne(T0, T1, "fail");
            a.nop();
            // read the child's file back
            pseudo::loadAddress(a, A0, "path");
            a.li(A1, kOpenRead);
            pseudo::emitSyscall(a, sys::Open);
            a.bltz(V0, "fail");
            a.nop();
            a.move(S0, V0);
            a.move(A0, S0);
            a.addiu(A1, S2, 4);
            a.li(A2, 4);
            pseudo::emitSyscall(a, sys::Read);
            a.li(T0, 4);
            a.bne(V0, T0, "fail");
            a.nop();
            a.lw(T0, 4, S2);
            pseudo::loadGlobal(a, T1, "cmsg", T2);
            a.bne(T0, T1, "fail");
            a.nop();
            a.li(A0, 1);
            pseudo::loadAddress(a, A1, "okmsg");
            a.li(A2, static_cast<Word>(ok.size()));
            pseudo::emitSyscall(a, sys::Write);
            a.move(V0, Zero);
            a.jr(RA);
            a.nop();
            emitExit(a, "fail", 1);
        });
}

// -- gcbar: generational write barrier (paper section 4.1) --------------------

GuestImage
buildGcBar()
{
    return assembleImage(
        "gcbar",
        [](Assembler &d) {
            d.label("hits");
            d.word(0);
        },
        [](Assembler &a) {
            emitCrt0(a);
            emitModeDispatch(a);
            // fast: protection-fault barrier with eager amplification
            // — the handler only records; the kernel already restored
            // write access before the upcall (section 3.2.3)
            emitGrabHeapPage(a);
            emitFastSetup(a);
            emitProtectHeap(a, sys::UexcProtect, kProtRead);
            a.li(S3, sys::UexcProtect);
            a.j("run");
            a.nop();
            // signal: the handler must also mprotect() the page
            // writable — the second kernel crossing the paper counts
            // against Unix delivery
            a.label("setup_signal");
            emitGrabHeapPage(a);
            emitSignalSetup(a, kSigsegv);
            emitProtectHeap(a, sys::Mprotect, kProtRead);
            a.li(S3, sys::Mprotect);
            a.label("run");
            a.li(S1, kScenarioIters);
            a.li(T7, 0x1234);
            a.label("bloop");
            // the barriered pointer store: first store per iteration
            // faults (page is read-only), handler records the page
            a.sw(T7, 0, S0);
            // re-protect for the next iteration (what the collector
            // does after scanning the dirtied page)
            a.move(A0, S0);
            a.li(A1, kPageBytes);
            a.li(A2, kProtRead);
            a.move(V0, S3);
            a.syscall();
            a.addiu(S1, S1, -1);
            a.bgtz(S1, "bloop");
            a.nop();
            pseudo::loadGlobal(a, T0, "hits", T1);
            a.li(T1, kScenarioIters);
            a.bne(T0, T1, "fail");
            a.nop();
            a.move(V0, Zero);
            a.jr(RA);
            a.nop();
            emitExit(a, "fail", 1);
            emitExit(a, "fail_usage", 2);

            emitFastStub(a, "stub", SavePolicy::UltrixEquivalent,
                         [](Assembler &s) { emitCountHit(s, T0, T1); });

            a.label("sig_handler");
            emitCountHit(a, T0, T1);
            a.lw(A0, sigctx::BadVA * 4, A2);
            a.srl(A0, A0, kPageShift);
            a.sll(A0, A0, kPageShift);
            a.li(A1, kPageBytes);
            a.li(A2, kProtRead | kProtWrite);
            pseudo::emitSyscall(a, sys::Mprotect);
            a.jr(RA);
            a.nop();
            emitTrampoline(a, "tramp");
        });
}

// -- swizzle: object faulting / pointer swizzling -----------------------------

GuestImage
buildSwizzle()
{
    return assembleImage(
        "swizzle",
        [](Assembler &d) {
            d.label("hits");
            d.word(0);
            d.label("target");
            d.word(kSwizzlePayload);
        },
        [](Assembler &a) {
            emitCrt0(a);
            emitModeDispatch(a);
            // fast: loads from the no-access page fault; eager
            // amplification opens the page so the handler can install
            // the swizzled pointer without a syscall
            emitGrabHeapPage(a);
            emitFastSetup(a);
            emitProtectHeap(a, sys::UexcProtect, 0);
            a.li(S3, sys::UexcProtect);
            a.j("run");
            a.nop();
            a.label("setup_signal");
            emitGrabHeapPage(a);
            emitSignalSetup(a, kSigsegv);
            emitProtectHeap(a, sys::Mprotect, 0);
            a.li(S3, sys::Mprotect);
            a.label("run");
            a.li(S1, kScenarioIters);
            a.label("bloop");
            // the object fault: the slot is unreadable until the
            // handler swizzles &target into it
            a.lw(T7, 0, S0);
            pseudo::loadAddress(a, T1, "target");
            a.bne(T7, T1, "fail");
            a.nop();
            // dereference the swizzled pointer
            a.lw(T8, 0, T7);
            a.li(T1, kSwizzlePayload);
            a.bne(T8, T1, "fail");
            a.nop();
            // un-swizzle: make the page unreachable again
            a.move(A0, S0);
            a.li(A1, kPageBytes);
            a.move(A2, Zero);
            a.move(V0, S3);
            a.syscall();
            a.addiu(S1, S1, -1);
            a.bgtz(S1, "bloop");
            a.nop();
            pseudo::loadGlobal(a, T0, "hits", T1);
            a.li(T1, kScenarioIters);
            a.bne(T0, T1, "fail");
            a.nop();
            a.move(V0, Zero);
            a.jr(RA);
            a.nop();
            emitExit(a, "fail", 1);
            emitExit(a, "fail_usage", 2);

            emitFastStub(a, "stub", SavePolicy::UltrixEquivalent,
                         [](Assembler &s) {
                             // install the pointer at the faulting
                             // slot (page already amplified), then
                             // record the object fault
                             pseudo::loadAddress(s, T0, "target");
                             s.lw(T1, static_cast<SWord>(uframe::BadVA),
                                  T3);
                             s.sw(T0, 0, T1);
                             emitCountHit(s, T1, T2);
                         });

            a.label("sig_handler");
            a.lw(T6, sigctx::BadVA * 4, A2);
            a.srl(A0, T6, kPageShift);
            a.sll(A0, A0, kPageShift);
            a.li(A1, kPageBytes);
            a.li(A2, kProtRead | kProtWrite);
            pseudo::emitSyscall(a, sys::Mprotect);
            pseudo::loadAddress(a, T0, "target");
            a.sw(T0, 0, T6);
            emitCountHit(a, T0, T1);
            a.jr(RA);
            a.nop();
            emitTrampoline(a, "tramp");
        });
}

// -- futures: unaligned-pointer representation (section 4.2.1) ----------------

GuestImage
buildFutures()
{
    return assembleImage(
        "futures",
        [](Assembler &d) {
            d.label("hits");
            d.word(0);
            d.label("cell");
            d.word(0);
            d.label("box");
            d.word(0);
        },
        [](Assembler &a) {
            emitCrt0(a);
            emitModeDispatch(a);
            a.li(A0, kFaultMask);
            pseudo::loadAddress(a, A1, "stub");
            a.li(A2, kUexcFramePage);
            pseudo::emitSyscall(a, sys::UexcEnable);
            a.j("run");
            a.nop();
            a.label("setup_signal");
            emitSignalSetup(a, kSigbus);
            a.label("run");
            a.li(S1, kScenarioIters);
            a.label("bloop");
            // create an unresolved future: cell = &box | 2, box empty
            pseudo::loadAddress(a, T0, "box");
            a.ori(T0, T0, 2);
            pseudo::storeGlobal(a, T0, "cell", T1);
            pseudo::storeGlobal(a, Zero, "box", T1);
            // consume it: touching the tagged pointer faults; the
            // handler resolves and restarts the consume sequence
            a.label("retry");
            pseudo::loadGlobal(a, T2, "cell", T2);
            a.lw(T7, 0, T2);
            a.li(T4, kFutureValue);
            a.bne(T7, T4, "fail");
            a.nop();
            a.addiu(S1, S1, -1);
            a.bgtz(S1, "bloop");
            a.nop();
            pseudo::loadGlobal(a, T0, "hits", T1);
            a.li(T1, kScenarioIters);
            a.bne(T0, T1, "fail");
            a.nop();
            a.move(V0, Zero);
            a.jr(RA);
            a.nop();
            emitExit(a, "fail", 1);
            emitExit(a, "fail_usage", 2);

            // resolve: run the producer (box := value), strip the
            // tag, and resume at the consume sequence's top
            emitFastStub(a, "stub", SavePolicy::UltrixEquivalent,
                         [](Assembler &s) {
                             pseudo::loadGlobal(s, T0, "cell", T1);
                             s.srl(T0, T0, 2);
                             s.sll(T0, T0, 2);
                             pseudo::storeGlobal(s, T0, "cell", T1);
                             s.li(T2, kFutureValue);
                             pseudo::storeGlobal(s, T2, "box", T1);
                             emitCountHit(s, T4, T1);
                             pseudo::loadAddress(s, T0, "retry");
                             s.sw(T0, static_cast<SWord>(uframe::Epc),
                                  T3);
                         });

            a.label("sig_handler");
            pseudo::loadGlobal(a, T0, "cell", T1);
            a.srl(T0, T0, 2);
            a.sll(T0, T0, 2);
            pseudo::storeGlobal(a, T0, "cell", T1);
            a.li(T2, kFutureValue);
            pseudo::storeGlobal(a, T2, "box", T1);
            emitCountHit(a, T4, T1);
            pseudo::loadAddress(a, T0, "retry");
            a.sw(T0, sigctx::Pc * 4, A2);
            a.jr(RA);
            a.nop();
            emitTrampoline(a, "tramp");
        });
}

} // namespace

const std::vector<std::string> &
programNames()
{
    static const std::vector<std::string> names = {
        "hello", "sbrktest", "forktest", "gcbar", "swizzle", "futures",
    };
    return names;
}

os::GuestImage
buildUserProgram(const std::string &name)
{
    if (name == "hello")
        return buildHello();
    if (name == "sbrktest")
        return buildSbrkTest();
    if (name == "forktest")
        return buildForkTest();
    if (name == "gcbar")
        return buildGcBar();
    if (name == "swizzle")
        return buildSwizzle();
    if (name == "futures")
        return buildFutures();
    UEXC_FATAL("unknown user program '%s'", name.c_str());
}

} // namespace uexc::rt::userprog
