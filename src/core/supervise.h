/**
 * @file
 * The fleet supervisor: liveness tracking, failure taxonomy, and
 * self-healing recovery policy.
 *
 * The supervisor is deliberately mechanism-free: it never touches a
 * machine, an image, or a transport. The fleet (or any other
 * harness) feeds it heartbeats — monotone progress counters plus a
 * handler-budget echo, both measured in simulated work, never host
 * time — and reports observed failures classified into a small typed
 * taxonomy. The supervisor answers with a *decision*: restart from
 * the last good checkpoint, re-migrate to a healthy host, how many
 * ticks of capped exponential backoff to wait first, or quarantine
 * after K consecutive failures. Every decision is appended to a log
 * that is a pure function of the seed and the observed event
 * sequence, so two runs of the same seeded soak produce bit-identical
 * decision logs — the property the nightly soak diffs against.
 *
 * MTTR is measured from the tick a failure is first reported to the
 * tick the harness confirms recovery, in both scheduler ticks and
 * simulated cycles; p50/p99 land in BENCH_fleet.json next to the
 * migration downtime percentiles.
 */

#ifndef UEXC_CORE_SUPERVISE_H
#define UEXC_CORE_SUPERVISE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace uexc::rt::supervise {

/** Typed failure taxonomy the harness classifies into. */
enum class FailureKind : std::uint8_t
{
    /** Heartbeats arrive but show no progress: instret frozen and no
     *  handler-budget echo — the guest spins or hangs. */
    Wedged,
    /** The guest's host process state is gone mid-run (an injected
     *  guest crash drill, or a rig that threw away its machine). */
    Crashed,
    /** A stored checkpoint or transferred image failed validation —
     *  restore refused it before touching any state. */
    CorruptedImage,
    /** A migration or transfer exhausted its retry budget. */
    Partitioned,
    /** The host under the guest died (everything on it is lost). */
    HostDown,
};

constexpr unsigned kFailureKinds = 5;
const char *failureKindName(FailureKind kind);

/** What the supervisor decides to do about a failure. */
enum class Action : std::uint8_t
{
    /** Roll back to the last good checkpoint on the same host. */
    Restart,
    /** Re-home: restore the last good checkpoint on a healthy host. */
    Remigrate,
    /** Stop scheduling the guest entirely (K consecutive failures);
     *  it is excluded from convergence oracles from here on. */
    Quarantine,
};

const char *actionName(Action action);

struct SupervisorConfig
{
    /** Seed of the (deterministic) backoff jitter stream. */
    std::uint64_t seed = 1;
    /** Consecutive failures before a guest is quarantined. */
    unsigned quarantineAfter = 3;
    /** Backoff before the Nth consecutive retry doubles from the
     *  base, capped: min(base << (N-2), cap), plus 0-1 ticks of
     *  seeded jitter. The first recovery attempt is immediate. */
    std::uint64_t backoffBaseTicks = 1;
    std::uint64_t backoffCapTicks = 8;
    /** Beats without progress (and without a budget echo) before a
     *  heartbeat consumer should classify the guest Wedged. */
    unsigned wedgedAfterBeats = 2;
};

/** One appended decision-log entry. */
struct Decision
{
    std::uint64_t tick = 0;
    unsigned guest = 0;
    FailureKind failure = FailureKind::Wedged;
    Action action = Action::Restart;
    unsigned consecutiveFailures = 0;
    std::uint64_t backoffTicks = 0; ///< wait before acting
    std::string note;
};

/** Render a decision as one deterministic log line. */
std::string decisionLine(const Decision &d);

struct SupervisorStats
{
    std::uint64_t heartbeats = 0;
    std::uint64_t wedgeDetections = 0;
    std::uint64_t failuresByKind[kFailureKinds] = {};
    std::uint64_t restarts = 0;
    std::uint64_t remigrations = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t backoffTicksCharged = 0;
    /** One sample per completed recovery. */
    std::vector<std::uint64_t> mttrTicks;
    std::vector<Cycles> mttrCycles;

    std::uint64_t mttrTicksPercentile(double p) const;
    Cycles mttrCyclesPercentile(double p) const;
};

/**
 * Tracks per-guest health and drives the recovery policy. All time
 * is the harness's scheduler tick; all "cycles" are simulated cycles
 * the harness accounts. Nothing here reads a host clock.
 */
class Supervisor
{
  public:
    explicit Supervisor(const SupervisorConfig &config = {});

    /** Register a guest (idempotent; guests are dense small ints). */
    void track(unsigned guest);

    /**
     * Record one liveness beat: @p progress is any monotone count of
     * simulated work (campaign ops, instret), @p budget_echo a
     * counter proving the exception path still responds (delivery
     * demotions, handler entries). Returns true when the guest has
     * shown neither progress nor an echo for at least
     * wedgedAfterBeats beats — the caller should then report
     * FailureKind::Wedged.
     */
    bool heartbeat(unsigned guest, std::uint64_t tick,
                   std::uint64_t progress, std::uint64_t budget_echo);

    /**
     * Report an observed failure; returns the decision (also
     * appended to the log). The guest is considered down from the
     * first unresolved failure until onRecovered. Repeated failures
     * without an intervening recovery escalate the consecutive count
     * (and eventually quarantine) but keep the original down-since
     * tick for MTTR.
     */
    Decision onFailure(unsigned guest, std::uint64_t tick,
                       Cycles sim_cycles, FailureKind kind,
                       const std::string &note);

    /** The harness confirmed the guest healthy again; records the
     *  MTTR sample and resets the consecutive-failure count. */
    void onRecovered(unsigned guest, std::uint64_t tick,
                     Cycles sim_cycles);

    bool quarantined(unsigned guest) const;
    bool down(unsigned guest) const;
    /** First tick at which a decided action may execute. */
    std::uint64_t retryAtTick(unsigned guest) const;
    unsigned consecutiveFailures(unsigned guest) const;

    const std::vector<Decision> &decisionLog() const { return log_; }
    const SupervisorStats &stats() const { return stats_; }

    /** The whole log rendered one decision per line. */
    std::string decisionLogText() const;

  private:
    struct GuestHealth
    {
        std::uint64_t lastProgress = 0;
        std::uint64_t lastEcho = 0;
        unsigned stalledBeats = 0;
        bool everBeat = false;
        bool down = false;
        bool quarantined = false;
        unsigned consecutiveFailures = 0;
        std::uint64_t downSinceTick = 0;
        Cycles downSinceCycles = 0;
        std::uint64_t retryAtTick = 0;
    };

    GuestHealth &health(unsigned guest);

    SupervisorConfig config_;
    std::uint64_t rng_;
    std::vector<GuestHealth> guests_;
    std::vector<Decision> log_;
    SupervisorStats stats_;
};

} // namespace uexc::rt::supervise

#endif // UEXC_CORE_SUPERVISE_H
