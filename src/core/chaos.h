/**
 * @file
 * The chaos-campaign rig: a seeded fault-injection workload with
 * checkpoint/replay support and a divergence finder.
 *
 * The workload is the protection-fault churn the fault-injection
 * tests introduced, re-cut as a sequence of numbered *ops* so that a
 * run can be checkpointed between any two ops, restored, and replayed
 * bit-identically. On top of the op index sit:
 *
 *  - runCampaign(): plan injections from a seed, run the workload,
 *    classify the outcome (converged / diagnosed / host failure),
 *    optionally snapshotting the whole rig every N ops;
 *  - shrinkCampaign(): on a failing seed, binary-search the collected
 *    checkpoints for the latest one that still reproduces the failure
 *    and emit a minimal ReproWindow — seed, start snapshot, and the
 *    op range to replay;
 *  - replayRepro() / repro files: a ReproWindow round-trips through a
 *    crash-consistent file so a failure found in CI replays from the
 *    artifact alone (`uexc-snap replay <file>`), without rerunning
 *    the campaign from boot.
 */

#ifndef UEXC_CORE_CHAOS_H
#define UEXC_CORE_CHAOS_H

#include <memory>
#include <string>
#include <vector>

#include "core/env.h"
#include "core/transport.h"
#include "os/kernel.h"
#include "sim/faultinject.h"
#include "sim/machine.h"

namespace uexc::rt::chaos {

// -- the workload ---------------------------------------------------------

constexpr Addr kRegion = 0x01000000;          ///< workload data, 2 pages
constexpr Word kRegionBytes = 2 * os::kPageBytes;
constexpr Addr kScratch = 0x01008000;         ///< always-mapped page
constexpr Word kCheckStride = 64;             ///< bytes between checked words

/** Op decomposition: 6 rounds of protection-fault churn (1 protect +
 *  8 stores + 4 loads + 1 scratch load each), then a rewrite and a
 *  readback of every checked word. */
constexpr unsigned kChaosRounds = 6;
constexpr unsigned kOpsPerRound = 14;
constexpr unsigned kChaosOps = kChaosRounds * kOpsPerRound;
constexpr unsigned kFinalWords = kRegionBytes / kCheckStride;
constexpr unsigned kTotalOps = kChaosOps + 2 * kFinalWords;

/** Rig construction knobs; part of a ReproWindow so a replay rebuilds
 *  the identical machine. */
struct RigConfig
{
    bool hardwareExtensions = true;
    bool fastInterpreter = false;
    InstCount handlerBudget = 50000;
    /** Host scheduler policy for the rig's machine. Not serialized
     *  into repro files: the Barrier scheduler is bit-identical to
     *  Serial, so a repro captured under either replays under both. */
    sim::SchedulerMode scheduler = sim::SchedulerMode::Auto;
    /** Physical memory size; 0 = the Machine default. The fleet
     *  harness shrinks this so dozens of guests fit in host RAM; it
     *  is part of the machine config echo, so it IS serialized into
     *  repro files. */
    std::size_t memBytes = 0;
};

/**
 * One bootable workload instance, optionally under injection.
 *
 * The rig owns its machine, kernel, and UserEnv, and registers two
 * extra snapshot sections with the machine: the injector's event
 * streams (when an injector is attached) and its own op cursor plus
 * collected readback words. checkpoint()/restore() therefore capture
 * a run *mid-campaign*: restore into a freshly constructed rig of the
 * same shape and call runTo() to continue exactly where the image
 * left off.
 */
class Rig
{
  public:
    explicit Rig(sim::FaultInjector *injector = nullptr,
                 const RigConfig &config = {});

    Rig(const Rig &) = delete;
    Rig &operator=(const Rig &) = delete;

    /** Index of the next op to run, in [0, kTotalOps]. */
    unsigned cursor() const { return cursor_; }
    bool done() const { return cursor_ == kTotalOps; }

    /** Run ops [cursor, op). A GuestError thrown by an op propagates
     *  with cursor() still naming the op that threw. */
    void runTo(unsigned op);
    void run() { runTo(kTotalOps); }

    /** Readback words collected so far (complete once done()). */
    const std::vector<Word> &words() const { return words_; }

    UserEnv &env() { return *env_; }
    os::Kernel &kernel() { return *kernel_; }
    sim::Machine &machine() { return *machine_; }
    Addr physOf(Addr va) { return env_->process().as().physOf(va); }

    std::vector<Byte> checkpoint() const { return machine_->checkpoint(); }
    void restore(const std::vector<Byte> &image);

  private:
    void runOp(unsigned op);

    RigConfig config_;
    sim::FaultInjector *injector_;
    std::unique_ptr<sim::Machine> machine_;
    std::unique_ptr<os::Kernel> kernel_;
    std::unique_ptr<UserEnv> env_;
    unsigned cursor_ = 0;
    std::vector<Word> words_;
};

// -- campaigns ------------------------------------------------------------

/**
 * Plan 1-3 injection events from @p seed, placed uniformly over
 * @p window instructions past the rig's current instret. Sets
 * @p may_diagnose when a planned event may legitimately end in a
 * structured diagnosis instead of convergence (TlbCorrupt, detected
 * by the kernel's pmap consistency check). Spurious refills no longer
 * qualify: the injector masks the stub's K0 resume window, so they
 * are always transparently recoverable.
 */
std::vector<sim::FaultEvent> planEvents(std::uint64_t seed,
                                        InstCount window, Rig &rig,
                                        bool *may_diagnose);

/**
 * One planned fleet-level chaos op inside a campaign: a live
 * migration of the running rig to a fresh twin host (with optional
 * endpoint crashes mid-transfer), or an outright crash of the host
 * under the guest. Ops fire when the campaign cursor *reaches*
 * atOp, before op atOp itself runs, so they sit on the same op grid
 * the checkpoint stride and the shrinker use — a migration-triggered
 * failure minimizes to the same 8-12-op repro windows as a memory
 * fault.
 *
 * Semantics by kind/crash:
 *  - Migrate, crash None: full stop-and-copy attempt under the op's
 *    weather. Success swaps the campaign onto the destination rig
 *    (bit-identical, so a clean migration is a no-op to the oracle);
 *    a typed failure (partition, rejected image) keeps the source
 *    running — graceful degradation, not a campaign failure.
 *  - Migrate, crash Dest: the destination host dies mid-transfer
 *    (after crashAfterPercent of the chunks). The half-staged image
 *    is discarded unrestored; the source never stopped.
 *  - Migrate, crash Source/Both: the source host dies mid-transfer
 *    while the destination holds only a partial image — the guest is
 *    lost, surfaced as a deterministic structured GuestError the
 *    shrinker can reproduce (and a supervisor can recover from a
 *    checkpoint).
 *  - HostCrash: the host dies under the running guest; same
 *    guest-lost diagnosis without any transfer.
 */
struct MigrateOp
{
    enum class Kind : std::uint8_t { Migrate, HostCrash };
    enum class Crash : std::uint8_t { None, Source, Dest, Both };

    Kind kind = Kind::Migrate;
    unsigned atOp = 0;                ///< in [0, kTotalOps)
    migrate::TransportConfig weather; ///< Migrate only
    Crash crash = Crash::None;
    /** Chunks delivered before the endpoint dies, as a percentage of
     *  the image's chunk count. */
    unsigned crashAfterPercent = 50;
};

using MigrationPlan = std::vector<MigrateOp>;

/** Seeded plan of @p count migration/host-crash ops over the op
 *  grid: mostly clean migrations under mixed weather, with a tail of
 *  endpoint crashes and host crashes. Sorted by atOp. */
MigrationPlan planMigrationOps(std::uint64_t seed, unsigned count);

/** Outcome classification of one campaign or replay. */
struct CampaignOutcome
{
    bool diagnosed = false;   ///< ended in a GuestError
    bool hostFailure = false; ///< non-GuestError escape, or divergence
    bool mayDiagnose = false; ///< a planned event may diagnose
    std::string what;
    /** One past the op that failed (kTotalOps for divergence at the
     *  final compare; 0 when the run converged). */
    unsigned failOp = 0;
    std::vector<Word> words;
};

/** Whether the outcome is anything other than clean convergence. */
inline bool
outcomeFailed(const CampaignOutcome &out)
{
    return out.diagnosed || out.hostFailure;
}

/** One collected mid-campaign checkpoint. */
struct CampaignCheckpoint
{
    unsigned op = 0;
    InstCount instret = 0;
    std::vector<Byte> image;
};

/**
 * Run one seeded campaign against @p reference (the fault-free final
 * words). With @p checkpoint_every_ops nonzero and @p checkpoints
 * non-null, snapshots the rig at every multiple of the stride
 * (including op 0) while it runs.
 */
CampaignOutcome runCampaign(std::uint64_t seed, InstCount window,
                            const std::vector<Word> &reference,
                            const RigConfig &config = {},
                            unsigned checkpoint_every_ops = 0,
                            std::vector<CampaignCheckpoint> *checkpoints =
                                nullptr,
                            const MigrationPlan *migrations = nullptr);

/** Fault-free reference: final words and the instruction window the
 *  campaign places injections in. */
struct Reference
{
    InstCount window = 0;
    std::vector<Word> words;
};
Reference makeReference(const RigConfig &config = {});

// -- minimal repro windows -------------------------------------------------

/**
 * A minimal reproduction of a campaign failure: restore @p snapshot
 * into a fresh rig of shape @p config and replay ops
 * [startOp, endOp). Everything a replay needs — including the
 * not-yet-fired injection events — travels inside the snapshot.
 */
struct ReproWindow
{
    bool found = false;
    std::uint64_t seed = 0;
    InstCount window = 0;      ///< campaign injection window (insts)
    RigConfig config;
    unsigned startOp = 0;
    unsigned endOp = 0;
    InstCount startInst = 0;   ///< instret at the start snapshot
    unsigned campaignOps = kTotalOps;
    std::vector<Byte> snapshot;
    std::string failure;       ///< the outcome's what
    /** Planned migration/host-crash ops of the originating campaign.
     *  Replay re-performs those with atOp inside [startOp, endOp);
     *  earlier ones need no replay (a completed migration is
     *  bit-identical, a failed graceful one touched nothing). */
    MigrationPlan migrations;
};

/**
 * Rerun a failing seed with periodic checkpoints, then binary-search
 * the checkpoints for the latest one whose replay still reproduces
 * the identical failure. Returns found=false when the seed converges.
 */
ReproWindow shrinkCampaign(std::uint64_t seed, InstCount window,
                           const std::vector<Word> &reference,
                           const RigConfig &config = {},
                           unsigned checkpoint_every_ops = 16,
                           const MigrationPlan *migrations = nullptr);

/** Replay a repro window; reproduces the recorded failure (or the
 *  final-words comparison against @p reference when it runs to the
 *  end of the campaign). */
CampaignOutcome replayRepro(const ReproWindow &repro,
                            const std::vector<Word> &reference);

/**
 * Persist / reload a repro window as a crash-consistent snapshot
 * file (the rig snapshot nested inside a metadata image), the format
 * `uexc-snap replay` consumes.
 */
void writeReproFile(const ReproWindow &repro, const std::string &path);
ReproWindow readReproFile(const std::string &path);

/** The copy-pasteable reproduction command for a saved repro file. */
std::string reproCommandLine(const std::string &path);

} // namespace uexc::rt::chaos

#endif // UEXC_CORE_CHAOS_H
