/**
 * @file
 * Guest-code microbenchmarks for exception delivery cost — the
 * measurements behind Tables 1, 2 and 3 of the paper.
 *
 * Each scenario builds a complete machine (kernel image + a user
 * program written in guest assembly), warms caches and TLB with a few
 * iterations, and then measures one steady-state exception with
 * breakpoints at three points: the faulting instruction, the entry of
 * the null C handler, and the resumption point. "Deliver" and
 * "return" match the paper's Table 2 row definitions.
 */

#ifndef UEXC_CORE_MICROBENCH_H
#define UEXC_CORE_MICROBENCH_H

#include <vector>

#include "core/stubs.h"
#include "os/guestimage.h"
#include "sim/machine.h"
#include "sim/profile.h"

namespace uexc::rt::micro {

/** Measured scenarios. */
enum class Scenario
{
    /** Unaligned load, fast path, null handler (Table 2 rows 1/4/5). */
    FastSimple,
    /** Write-protection fault, fast path + eager amplification
     *  (Table 2 row 2). */
    FastWriteProt,
    /** Write into a protected 1 KB subpage (Table 2 row 3). */
    FastSubpage,
    /** Unaligned load through the stock Ultrix signal machinery
     *  (Table 1 / Table 2 baseline column). */
    UltrixSimple,
    /** Write-protection fault through SIGSEGV + mprotect. */
    UltrixWriteProt,
    /** Unaligned load with direct hardware user vectoring
     *  (section 2; the claimed extra 2-3x). */
    HwVectorSimple,
    /** Hardware vectoring through a process-local vector table (the
     *  section 2.2 alternative the paper judges "little likely
     *  performance gain"). */
    HwVectorTableSimple,
    /** Null system call (getpid), for the paper's 12 us reference. */
    NullSyscall,
    /** Unaligned load, fast path, *specialized* handler that saves
     *  only what it needs (section 4.2.2's 6 us figure). */
    FastSpecialized,
};

/** One scenario's measured costs. */
struct Timing
{
    Cycles deliverCycles = 0;   ///< fault -> null handler entry
    Cycles returnCycles = 0;    ///< handler entry -> resumption
    Cycles roundTripCycles = 0; ///< sum
    double deliverUs = 0;
    double returnUs = 0;
    double roundTripUs = 0;
    /** Dynamic instructions spent inside the kernel (fast path). */
    InstCount kernelInsts = 0;
};

/** All scenarios, for iteration (tools, lint gates, tests). */
inline constexpr Scenario kAllScenarios[] = {
    Scenario::FastSimple,      Scenario::FastWriteProt,
    Scenario::FastSubpage,     Scenario::UltrixSimple,
    Scenario::UltrixWriteProt, Scenario::HwVectorSimple,
    Scenario::HwVectorTableSimple, Scenario::NullSyscall,
    Scenario::FastSpecialized,
};

/** Stable kebab-case name of @p scenario (CLI/report use). */
const char *scenarioName(Scenario scenario);

/**
 * Assemble a scenario's user program (benchmark loop + handlers +
 * stubs) without building a machine. This is what buildScenario loads
 * and what the static analyzer lints.
 */
sim::Program buildScenarioProgram(Scenario scenario);

/**
 * The scenario program as a GuestImage: entry at user_main, the
 * user-program lint configuration attached. buildScenario loads this
 * form; uexc-lint's micro target consumes the same image.
 */
os::GuestImage buildScenarioImage(Scenario scenario);

/** Measure one scenario on a machine configuration. */
Timing measure(Scenario scenario, const sim::MachineConfig &config,
               unsigned warm_iters = 8);

/**
 * Run the FastSimple scenario with a phase profiler attached to the
 * kernel fast handler and return the per-phase dynamic instruction
 * counts — the regeneration of Table 3.
 */
std::vector<sim::PhaseStats>
profileFastPath(const sim::MachineConfig &config);

/** Convenience: the DECstation 5000/200-like default configuration
 *  used by the paper's tables (25 MHz, caches modeled). */
sim::MachineConfig paperMachineConfig();

} // namespace uexc::rt::micro

#endif // UEXC_CORE_MICROBENCH_H
