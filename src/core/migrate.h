/**
 * @file
 * Live migration of running guests: checkpoint → chunked lossy
 * transfer → receive-side verification → restore → resume.
 *
 * The engine moves a crash-consistent .uxsn image (a Machine, a chaos
 * rig, or a whole DSM cluster) between hosts over a transport that
 * reuses the DSM unreliable-network model: every chunk frame carries
 * its own CRC32, a lost or corrupted chunk costs a retransmit timeout
 * that doubles per retry up to a hard cap, and a chunk that exhausts
 * its retry budget raises a structured MigrateError *without*
 * destroying either end — the source keeps running (stop-and-copy
 * releases nothing until the destination has accepted the image) and
 * the TransferSession remembers every chunk the receiver already
 * acknowledged, so a later resume retransmits only the missing ones.
 *
 * The receive side never trusts reassembly: before any restore, the
 * reassembled bytes go through full SnapshotImage validation — the
 * same header/section-CRC/footer checks `uexc-snap verify` runs — so
 * a partial or torn image is rejected as a typed error, never applied
 * as partial state. Restore-window safety falls out of the snapshot
 * layer's construction-vs-state split: the destination rig re-registers
 * the fast stub's K0 resume-window masks at construction, and the
 * pending injector events travel inside the image, so a fault planned
 * to land in the first instructions after resume defers exactly the
 * way it would have on the source (the PR 5 K0-hazard discipline,
 * extended across a migration).
 *
 * Downtime accounting is simulated cycles, not host time: the guest
 * is paused from checkpoint to resume, and every latency, wire word,
 * and timeout the transfer charges accumulates into
 * MigrationResult::downtimeCycles — the number the fleet harness
 * turns into p50/p99 migration downtime.
 */

#ifndef UEXC_CORE_MIGRATE_H
#define UEXC_CORE_MIGRATE_H

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/chaos.h"
#include "core/transport.h"

namespace uexc::rt::migrate {

/** Failure classes of one migration attempt. */
enum class MigrateErrorKind
{
    /** A chunk exhausted its retry budget (network partition). The
     *  session is resumable: already-delivered chunks stay
     *  acknowledged. */
    Partition,
    /** The reassembled image failed snapshot validation (truncation,
     *  CRC mismatch, version skew) — rejected before any restore. */
    ImageRejected,
    /** The destination machine refused the validated image (shape
     *  mismatch: hart count, config echo, missing consumer). */
    RestoreRefused,
};

const char *migrateErrorKindName(MigrateErrorKind kind);

/**
 * Structured failure of a migration step. Catching code switches on
 * kind(): Partition → keep the source running and optionally resume
 * the transfer later; ImageRejected/RestoreRefused → the destination
 * was never touched (or was left freshly constructed), discard it.
 */
class MigrateError : public std::runtime_error
{
  public:
    MigrateError(MigrateErrorKind kind, unsigned chunk,
                 const std::string &what)
        : MigrateError(kind, chunk, 0, 0, what)
    {
    }

    MigrateError(MigrateErrorKind kind, unsigned chunk,
                 unsigned retries, Cycles charged_timeout,
                 const std::string &what)
        : std::runtime_error(std::string("migrate [") +
                             migrateErrorKindName(kind) + "]: " + what),
          kind_(kind), chunk_(chunk), retries_(retries),
          chargedTimeout_(charged_timeout)
    {
    }

    MigrateErrorKind kind() const { return kind_; }
    /** Chunk index the failure occurred on (~0u when not per-chunk). */
    unsigned chunk() const { return chunk_; }
    /** Retransmit timeouts waited on that chunk before giving up. */
    unsigned retries() const { return retries_; }
    /** Last retransmit timeout charged before the failure (cycles;
     *  0 when the retry budget was exhausted before any wait). */
    Cycles chargedTimeout() const { return chargedTimeout_; }

  private:
    MigrateErrorKind kind_;
    unsigned chunk_;
    unsigned retries_;
    Cycles chargedTimeout_;
};

/**
 * A resumable transfer of one snapshot image. run() pushes every
 * not-yet-acknowledged chunk through the lossy link; on Partition the
 * delivered-chunk set survives, so run() after the network heals
 * (reconfigure()) finishes the remainder. receivedImage() reassembles
 * and *validates* — the receive-side `uexc-snap verify` — before
 * handing bytes to any restore path.
 */
class TransferSession
{
  public:
    TransferSession(std::vector<Byte> image,
                    const TransportConfig &config);

    /** Transfer all missing chunks; throws MigrateError(Partition)
     *  when a chunk exhausts its retries. Safe to call again. */
    void run();

    /**
     * Transfer at most @p max_chunks of the missing chunks, then
     * return how many were delivered. The partial-progress primitive
     * behind crash-mid-transfer chaos ops: a host that dies with a
     * session half run leaves exactly this many chunks on the far
     * side, and the abandoned session is simply dropped (the receive
     * side never saw a complete image, so nothing was restored).
     * Throws the same Partition error as run().
     */
    unsigned runSome(unsigned max_chunks);

    bool complete() const { return deliveredCount_ == chunks_; }
    unsigned chunksTotal() const { return chunks_; }
    unsigned chunksDelivered() const { return deliveredCount_; }

    /**
     * Reassemble and validate the received image. Throws
     * MigrateError(ImageRejected) if chunks are missing or the
     * reassembled bytes fail SnapshotImage validation (section CRCs,
     * footer) — a partial image is never observable as success.
     */
    std::vector<Byte> receivedImage() const;

    /** Swap transport knobs mid-session (a healed or degraded
     *  network); the delivered-chunk set and RNG stream persist. */
    void reconfigure(const TransportConfig &config);

    const TransportConfig &config() const { return config_; }
    const TransportStats &stats() const { return stats_; }

  private:
    bool roll(unsigned pct);
    void sendChunk(unsigned index);

    TransportConfig config_;
    std::vector<Byte> source_;
    unsigned chunks_ = 0;
    /** Receiver-side chunk store plus delivered flags (a chunk may
     *  legitimately be empty, so presence is tracked explicitly). */
    std::vector<std::vector<Byte>> delivered_;
    std::vector<bool> have_;
    unsigned deliveredCount_ = 0;
    TransportStats stats_;
    std::uint64_t rng_ = 0;
};

/** One-shot convenience: transfer @p image over a fresh session and
 *  return the validated received copy. */
std::vector<Byte> transferImage(const std::vector<Byte> &image,
                                const TransportConfig &config,
                                TransportStats *stats = nullptr);

/** Knobs of the iterative pre-copy loop. */
struct PreCopyConfig
{
    /** Pre-copy rounds to attempt before giving up and doing
     *  stop-and-copy on whatever residual remains (>= 1). Each round
     *  runs the guest one slice, then ships the pages dirtied since
     *  the previous send. */
    unsigned maxRounds = 4;
    /** Convergence threshold: once a round's dirty set is at most
     *  this many pages, pre-copy stops and the residual is moved
     *  during the downtime window. */
    unsigned convergePages = 8;
};

/** What the pre-copy loop did (embedded in MigrationResult). */
struct PreCopyStats
{
    unsigned roundsRun = 0;      ///< guest slices executed
    bool converged = false;      ///< dirty set shrank under threshold
    std::uint64_t pagesSentPreCopy = 0;
    std::uint64_t residualPages = 0;  ///< moved during downtime
    std::uint64_t bytesMovedPreCopy = 0;
    /** Bytes moved while the guest was paused (residual pages plus
     *  the control image). */
    std::uint64_t bytesMovedStopCopy = 0;
    /** Simulated cycles charged while the guest kept running — the
     *  price of pre-copy that is *not* downtime. */
    Cycles precopyCycles = 0;
};

/** Everything a migration attempt reports. On failure the error
 *  taxonomy is populated and the source is guaranteed untouched. */
struct MigrationResult
{
    bool succeeded = false;
    MigrateErrorKind errorKind = MigrateErrorKind::Partition;
    std::string error;
    /** Per-chunk failure diagnostics (valid when !succeeded and the
     *  failure was chunk-level; errorChunk == ~0u otherwise). */
    unsigned errorChunk = ~0u;
    unsigned errorRetries = 0;
    Cycles errorTimeoutCharged = 0;
    /** Simulated guest-paused cycles: checkpoint + transfer +
     *  restore (stop-and-copy downtime). Under pre-copy this covers
     *  only the residual + control-image window. */
    Cycles downtimeCycles = 0;
    /** Bytes shipped across all transfers of this attempt (every
     *  pre-copy round plus the stop-and-copy window). */
    std::uint64_t bytesMoved = 0;
    bool usedPreCopy = false;
    PreCopyStats precopy;
    TransportStats transport;
};

/** Flat per-word costs for the checkpoint/restore halves of the
 *  downtime window (serialization is charged like a page copy). */
struct MigrationConfig
{
    TransportConfig transport;
    Cycles checkpointPerWordCycles = 1;
    Cycles restorePerWordCycles = 1;
};

/**
 * Migrate a live chaos rig into @p dst (a freshly constructed rig of
 * the same shape, injector attached). On success @p dst holds the
 * guest, bit-identical to @p src at the cut, and @p src should be
 * discarded by the caller; on failure @p src is untouched and keeps
 * running — graceful degradation is the caller keeping the source.
 * Never throws for transfer/restore failures (they land in the
 * result); programming errors still panic.
 */
MigrationResult migrateRig(chaos::Rig &src, chaos::Rig &dst,
                           const MigrationConfig &config);

/** Same contract for a bare Machine (twin-shaped destination). */
MigrationResult migrateMachine(sim::Machine &src, sim::Machine &dst,
                               const MigrationConfig &config);

/** Migrate an already-serialized image into a restore callable; the
 *  shared core of the two helpers above (and of DSM-cluster moves,
 *  whose restore target is a cluster, not a machine). */
MigrationResult
migrateImage(const std::vector<Byte> &image,
             const std::function<void(const std::vector<Byte> &)>
                 &restore_fn,
             const MigrationConfig &config);

/**
 * Everything the iterative pre-copy engine needs from a source guest.
 * The callbacks view the guest's physical memory at snapshot-page
 * granularity (sim::kSnapshotPageBytes), expose the PhysMemory
 * write-version counters as the dirty-tracking oracle, pause-free
 * advance the guest one slice, and produce a full paused checkpoint
 * for the final cut.
 */
struct PreCopySource
{
    std::uint64_t memBytes = 0;
    std::function<void(std::uint32_t page, Byte *dst, std::size_t len)>
        readPage;
    /** Current write-version of a page (PhysMemory::pageVersion). */
    std::function<std::uint32_t(std::uint32_t page)> pageVersion;
    /** Optional fast zero predicate (PhysMemory::blockIsZero). */
    std::function<bool(std::uint32_t page, std::size_t len)> pageIsZero;
    /** Run the guest while a round's pages are "in flight". */
    std::function<void()> runSlice;
    /** Full checkpoint of the (now paused) guest. */
    std::function<std::vector<Byte>()> checkpoint;
};

/**
 * Iterative pre-copy migration: ship all live pages while the guest
 * keeps running, re-ship whatever it dirties per round until the
 * dirty set converges (or maxRounds is spent), then pause only for
 * the residual pages plus a memory-less control image. The receiver
 * reassembles the final image from its page store and the control
 * image through the *same* serializer Machine::checkpoint uses, and
 * accepts it only when both the reconstructed memory payload CRC and
 * the whole-image CRC recorded in the control image match — so a
 * successful pre-copy migration restores bytes identical to what a
 * stop-and-copy of the paused source would have shipped, with
 * downtimeCycles covering only the residual window.
 *
 * On any failure the destination is untouched and the source keeps
 * running (it may have advanced by the slices already run — exactly
 * what live migration means).
 */
MigrationResult
migrateImagePreCopy(const PreCopySource &source,
                    const std::function<void(const std::vector<Byte> &)>
                        &restore_fn,
                    const MigrationConfig &config,
                    const PreCopyConfig &precopy);

/** Pre-copy a live Machine into a twin-shaped destination; @p
 *  run_slice advances the source between rounds (e.g. run(N)). */
MigrationResult
migrateMachinePreCopy(sim::Machine &src, sim::Machine &dst,
                      const MigrationConfig &config,
                      const PreCopyConfig &precopy,
                      const std::function<void()> &run_slice);

/** Pre-copy a live chaos rig, advancing its campaign by
 *  @p ops_per_slice ops per round (clamped to the campaign end). */
MigrationResult
migrateRigPreCopy(chaos::Rig &src, chaos::Rig &dst,
                  const MigrationConfig &config,
                  const PreCopyConfig &precopy,
                  unsigned ops_per_slice);

} // namespace uexc::rt::migrate

#endif // UEXC_CORE_MIGRATE_H
