/**
 * @file
 * Live migration of running guests: checkpoint → chunked lossy
 * transfer → receive-side verification → restore → resume.
 *
 * The engine moves a crash-consistent .uxsn image (a Machine, a chaos
 * rig, or a whole DSM cluster) between hosts over a transport that
 * reuses the DSM unreliable-network model: every chunk frame carries
 * its own CRC32, a lost or corrupted chunk costs a retransmit timeout
 * that doubles per retry up to a hard cap, and a chunk that exhausts
 * its retry budget raises a structured MigrateError *without*
 * destroying either end — the source keeps running (stop-and-copy
 * releases nothing until the destination has accepted the image) and
 * the TransferSession remembers every chunk the receiver already
 * acknowledged, so a later resume retransmits only the missing ones.
 *
 * The receive side never trusts reassembly: before any restore, the
 * reassembled bytes go through full SnapshotImage validation — the
 * same header/section-CRC/footer checks `uexc-snap verify` runs — so
 * a partial or torn image is rejected as a typed error, never applied
 * as partial state. Restore-window safety falls out of the snapshot
 * layer's construction-vs-state split: the destination rig re-registers
 * the fast stub's K0 resume-window masks at construction, and the
 * pending injector events travel inside the image, so a fault planned
 * to land in the first instructions after resume defers exactly the
 * way it would have on the source (the PR 5 K0-hazard discipline,
 * extended across a migration).
 *
 * Downtime accounting is simulated cycles, not host time: the guest
 * is paused from checkpoint to resume, and every latency, wire word,
 * and timeout the transfer charges accumulates into
 * MigrationResult::downtimeCycles — the number the fleet harness
 * turns into p50/p99 migration downtime.
 */

#ifndef UEXC_CORE_MIGRATE_H
#define UEXC_CORE_MIGRATE_H

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/chaos.h"

namespace uexc::rt::migrate {

/** Failure classes of one migration attempt. */
enum class MigrateErrorKind
{
    /** A chunk exhausted its retry budget (network partition). The
     *  session is resumable: already-delivered chunks stay
     *  acknowledged. */
    Partition,
    /** The reassembled image failed snapshot validation (truncation,
     *  CRC mismatch, version skew) — rejected before any restore. */
    ImageRejected,
    /** The destination machine refused the validated image (shape
     *  mismatch: hart count, config echo, missing consumer). */
    RestoreRefused,
};

const char *migrateErrorKindName(MigrateErrorKind kind);

/**
 * Structured failure of a migration step. Catching code switches on
 * kind(): Partition → keep the source running and optionally resume
 * the transfer later; ImageRejected/RestoreRefused → the destination
 * was never touched (or was left freshly constructed), discard it.
 */
class MigrateError : public std::runtime_error
{
  public:
    MigrateError(MigrateErrorKind kind, unsigned chunk,
                 const std::string &what)
        : std::runtime_error(std::string("migrate [") +
                             migrateErrorKindName(kind) + "]: " + what),
          kind_(kind), chunk_(chunk)
    {
    }

    MigrateErrorKind kind() const { return kind_; }
    /** Chunk index the failure occurred on (~0u when not per-chunk). */
    unsigned chunk() const { return chunk_; }

  private:
    MigrateErrorKind kind_;
    unsigned chunk_;
};

/** Seeded-deterministic lossy transport knobs (the DSM
 *  unreliable-network model, applied to image chunks). */
struct TransportConfig
{
    std::uint64_t seed = 1;
    std::size_t chunkBytes = 4096;
    unsigned lossPercent = 0;    ///< chunk lost in flight
    unsigned corruptPercent = 0; ///< one bit of the frame flipped
    unsigned dupPercent = 0;     ///< chunk delivered twice
    unsigned delayPercent = 0;   ///< extra-delay chance
    Cycles latencyCycles = 25000;  ///< per-frame one-way latency
    Cycles delayCycles = 5000;     ///< extra latency when delayed
    Cycles perWordCycles = 1;      ///< wire time per 32-bit word
    Cycles timeoutCycles = 50000;  ///< initial retransmit timeout
    /** Ceiling for the doubling retransmit timeout (same discipline
     *  as DsmCluster::Config::timeoutCapCycles). */
    Cycles timeoutCapCycles = 8 * 50000;
    unsigned maxRetries = 16;      ///< per chunk, then Partition
};

/** Transfer-side statistics (host measurement + simulated cycles). */
struct TransportStats
{
    std::uint64_t chunksTotal = 0;
    std::uint64_t chunksDelivered = 0;
    std::uint64_t framesSent = 0;     ///< incl. retransmits and dups
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t lostInFlight = 0;
    std::uint64_t corruptDropped = 0; ///< chunk-CRC rejections
    std::uint64_t duplicatesSuppressed = 0;
    /** Largest single timeout charged; never exceeds the cap. */
    Cycles maxTimeoutCharged = 0;
    /** Simulated cycles the transfer cost (latency + wire + waits). */
    Cycles cyclesCharged = 0;
    /** retryHistogram[i] = chunks that needed exactly i retries;
     *  the last bucket saturates. */
    std::vector<std::uint64_t> retryHistogram =
        std::vector<std::uint64_t>(9, 0);
};

/**
 * A resumable transfer of one snapshot image. run() pushes every
 * not-yet-acknowledged chunk through the lossy link; on Partition the
 * delivered-chunk set survives, so run() after the network heals
 * (reconfigure()) finishes the remainder. receivedImage() reassembles
 * and *validates* — the receive-side `uexc-snap verify` — before
 * handing bytes to any restore path.
 */
class TransferSession
{
  public:
    TransferSession(std::vector<Byte> image,
                    const TransportConfig &config);

    /** Transfer all missing chunks; throws MigrateError(Partition)
     *  when a chunk exhausts its retries. Safe to call again. */
    void run();

    bool complete() const { return deliveredCount_ == chunks_; }
    unsigned chunksTotal() const { return chunks_; }
    unsigned chunksDelivered() const { return deliveredCount_; }

    /**
     * Reassemble and validate the received image. Throws
     * MigrateError(ImageRejected) if chunks are missing or the
     * reassembled bytes fail SnapshotImage validation (section CRCs,
     * footer) — a partial image is never observable as success.
     */
    std::vector<Byte> receivedImage() const;

    /** Swap transport knobs mid-session (a healed or degraded
     *  network); the delivered-chunk set and RNG stream persist. */
    void reconfigure(const TransportConfig &config);

    const TransportConfig &config() const { return config_; }
    const TransportStats &stats() const { return stats_; }

  private:
    bool roll(unsigned pct);
    void sendChunk(unsigned index);

    TransportConfig config_;
    std::vector<Byte> source_;
    unsigned chunks_ = 0;
    /** Receiver-side chunk store plus delivered flags (a chunk may
     *  legitimately be empty, so presence is tracked explicitly). */
    std::vector<std::vector<Byte>> delivered_;
    std::vector<bool> have_;
    unsigned deliveredCount_ = 0;
    TransportStats stats_;
    std::uint64_t rng_ = 0;
};

/** One-shot convenience: transfer @p image over a fresh session and
 *  return the validated received copy. */
std::vector<Byte> transferImage(const std::vector<Byte> &image,
                                const TransportConfig &config,
                                TransportStats *stats = nullptr);

/** Everything a migration attempt reports. On failure the error
 *  taxonomy is populated and the source is guaranteed untouched. */
struct MigrationResult
{
    bool succeeded = false;
    MigrateErrorKind errorKind = MigrateErrorKind::Partition;
    std::string error;
    /** Simulated guest-paused cycles: checkpoint + transfer +
     *  restore (stop-and-copy downtime). */
    Cycles downtimeCycles = 0;
    TransportStats transport;
};

/** Flat per-word costs for the checkpoint/restore halves of the
 *  downtime window (serialization is charged like a page copy). */
struct MigrationConfig
{
    TransportConfig transport;
    Cycles checkpointPerWordCycles = 1;
    Cycles restorePerWordCycles = 1;
};

/**
 * Migrate a live chaos rig into @p dst (a freshly constructed rig of
 * the same shape, injector attached). On success @p dst holds the
 * guest, bit-identical to @p src at the cut, and @p src should be
 * discarded by the caller; on failure @p src is untouched and keeps
 * running — graceful degradation is the caller keeping the source.
 * Never throws for transfer/restore failures (they land in the
 * result); programming errors still panic.
 */
MigrationResult migrateRig(chaos::Rig &src, chaos::Rig &dst,
                           const MigrationConfig &config);

/** Same contract for a bare Machine (twin-shaped destination). */
MigrationResult migrateMachine(sim::Machine &src, sim::Machine &dst,
                               const MigrationConfig &config);

/** Migrate an already-serialized image into a restore callable; the
 *  shared core of the two helpers above (and of DSM-cluster moves,
 *  whose restore target is a cluster, not a machine). */
MigrationResult
migrateImage(const std::vector<Byte> &image,
             const std::function<void(const std::vector<Byte> &)>
                 &restore_fn,
             const MigrationConfig &config);

} // namespace uexc::rt::migrate

#endif // UEXC_CORE_MIGRATE_H
