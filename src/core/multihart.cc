#include "core/multihart.h"

#include <string>

#include "common/logging.h"
#include "core/lintspec.h"
#include "os/layout.h"
#include "sim/cp0.h"
#include "sim/cpu.h"
#include "sim/isa.h"
#include "sim/pseudo.h"

namespace uexc::rt::multihart {

using namespace sim;

namespace {

void
checkHarts(unsigned num_harts)
{
    if (num_harts == 0 || num_harts > kMaxHarts)
        UEXC_FATAL("multihart study supports 1..%u harts, not %u",
                   kMaxHarts, num_harts);
}

} // namespace

Program
buildKernelImage(unsigned num_harts)
{
    checkHarts(num_harts);
    Assembler a(Cpu::RefillVector);

    // Refill slot: the study runs on wired mappings, so this firing
    // is a bug; spinning in place makes the hang obvious in a trace.
    a.label("mh_refill");
    a.j("mh_refill");
    a.nop();

    a.align(0x80);
    if (a.here() != Cpu::GeneralVector)
        UEXC_PANIC("multihart refill stub overflowed the vector slot");

    // General vector: count the exception in this hart's save slot
    // (indexed by PrId[31:24], so no two harts share a cache line of
    // writable state) and resume past the faulting break.
    a.label("mh_kernel_handler");
    a.mfc0(K0, cp0reg::PrId);
    a.srl(K0, K0, 24);
    a.sll(K0, K0, os::hartsave::SizeShift);
    pseudo::loadAddress(a, K1, "mh_save");
    a.addu(K1, K1, K0);
    a.lw(K0, 0, K1);
    a.nop();                         // load delay
    a.addiu(K0, K0, 1);
    a.sw(K0, 0, K1);
    a.mfc0(K0, cp0reg::Epc);
    a.addiu(K0, K0, 4);
    a.jr(K0);
    a.rfe();
    a.label("mh_kernel_handler__end");

    a.align(os::hartsave::Bytes);
    a.label("mh_save");
    a.space(num_harts * os::hartsave::Bytes);
    return a.finalize();
}

Program
buildWorkerProgram(unsigned num_harts)
{
    checkHarts(num_harts);
    Assembler a(os::kUserTextBase);

    // One entry per hart; all converge on the shared loop (each hart
    // counts in its own s0, so the code can be shared read-only).
    for (unsigned i = 0; i < num_harts; ++i) {
        a.label("mh_hart" + std::to_string(i) + "_entry");
        a.j("mh_work_loop");
        a.nop();
    }

    a.label("mh_work_loop");
    a.break_();
    // Both handlers resume at EPC+4, i.e. here.
    a.label("mh_resume_point");
    a.addiu(S0, S0, 1);
    a.j("mh_work_loop");
    a.nop();

    // Minimal COP3 handler: bump the saved EPC past the break and
    // return. Touches only k0 — entirely per-hart state.
    a.label("mh_uv_handler");
    a.mfux(K0, UxReg::Epc);
    a.addiu(K0, K0, 4);
    a.mtux(K0, UxReg::Epc);
    a.xret();
    a.label("mh_uv_handler__end");

    return a.finalize();
}

os::GuestImage
buildKernelGuestImage(unsigned num_harts)
{
    Program prog = buildKernelImage(num_harts);
    os::GuestImage img =
        os::GuestImage::fromProgram(prog, "multihart-kernel");
    img.setLintConfig(kernelLintConfig(prog, num_harts));
    img.validate();
    return img;
}

os::GuestImage
buildWorkerImage(unsigned num_harts)
{
    Program prog = buildWorkerProgram(num_harts);
    os::GuestImage img =
        os::GuestImage::fromProgram(prog, "multihart-worker");
    img.entry = prog.symbol("mh_hart0_entry");
    img.setLintConfig(workerLintConfig(prog, num_harts));
    img.validate();
    return img;
}

analysis::LintConfig
kernelLintConfig(const Program &prog, unsigned num_harts)
{
    checkHarts(num_harts);
    analysis::LintConfig config;
    analysis::RegionSpec spec;
    spec.name = "multihart-kernel";
    spec.begin = prog.origin;
    // Everything from the save area on is per-hart data, not code.
    spec.end = prog.symbol("mh_save");
    spec.userMode = false;
    spec.entries = {prog.symbol("mh_refill"),
                    prog.symbol("mh_kernel_handler")};
    config.regions.push_back(spec);

    // The general-vector handler under the register discipline and
    // the latency bound (straight-line: the bound is exact). The
    // refill slot is deliberately an infinite spin, so it must stay
    // out of the WCET-checked handler region.
    analysis::RegionSpec h;
    h.name = "mh_kernel_handler";
    h.begin = prog.symbol("mh_kernel_handler");
    h.end = prog.symbol("mh_kernel_handler__end");
    h.handler = true;
    h.scratchMask = hwStubScratchMask();
    h.entries = {h.begin};
    config.regions.push_back(std::move(h));

    // Every hart enters the kernel at the same vectors; PrId modeling
    // is what differentiates their save-slot addresses.
    config.multihart = num_harts;
    return config;
}

analysis::LintConfig
workerLintConfig(const Program &prog, unsigned num_harts)
{
    checkHarts(num_harts);
    analysis::LintConfig config = userProgramLintConfig(prog, num_harts);
    // The break in the work loop ends its basic block; execution
    // re-enters at EPC+4 when a handler returns, so the resume point
    // is a root in its own right.
    config.regions.front().entries.push_back(
        prog.symbol("mh_resume_point"));

    // Per-hart roots for the shared-page analysis: a hart starts at
    // its own entry, but handlers and the resume point are entered
    // asynchronously on every hart.
    config.multihart = num_harts;
    std::vector<Addr> common = {prog.symbol("mh_resume_point"),
                                prog.symbol("mh_uv_handler")};
    for (unsigned i = 0; i < num_harts; ++i) {
        std::vector<Addr> entries = common;
        entries.push_back(
            prog.symbol("mh_hart" + std::to_string(i) + "_entry"));
        config.perHartEntries.push_back(std::move(entries));
    }
    return config;
}

} // namespace uexc::rt::multihart
