#include "core/migrate.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/faultinject.h"
#include "sim/snapshot.h"

namespace uexc::rt::migrate {

namespace {

/** Frame header: chunk index, total chunks, payload length — all
 *  covered (with the payload) by the frame CRC, so a bit flip
 *  anywhere in the frame is detected at the receiver. */
constexpr std::size_t kFrameHeaderBytes = 12;

std::uint32_t
frameCrc(unsigned index, unsigned total, const Byte *payload,
         std::size_t len)
{
    Byte header[kFrameHeaderBytes];
    for (unsigned i = 0; i < 4; i++) {
        header[i] = Byte(index >> (8 * i));
        header[4 + i] = Byte(total >> (8 * i));
        header[8 + i] = Byte(std::uint32_t(len) >> (8 * i));
    }
    std::uint32_t crc = sim::snapshotCrc32(header, sizeof header);
    // chain the payload CRC into the header CRC (simple concatenation
    // is fine for a simulated wire; this is detection, not security)
    return crc ^ sim::snapshotCrc32(payload, len);
}

} // namespace

const char *
migrateErrorKindName(MigrateErrorKind kind)
{
    switch (kind) {
      case MigrateErrorKind::Partition: return "partition";
      case MigrateErrorKind::ImageRejected: return "image-rejected";
      case MigrateErrorKind::RestoreRefused: return "restore-refused";
    }
    return "?";
}

// -- TransferSession -----------------------------------------------------

TransferSession::TransferSession(std::vector<Byte> image,
                                 const TransportConfig &config)
    : config_(config), source_(std::move(image)), rng_(config.seed)
{
    if (config_.chunkBytes == 0)
        UEXC_FATAL("migrate: zero transport chunk size");
    chunks_ = unsigned((source_.size() + config_.chunkBytes - 1) /
                       config_.chunkBytes);
    if (chunks_ == 0)
        chunks_ = 1; // an empty image still takes one (empty) frame
    delivered_.resize(chunks_);
    have_.assign(chunks_, false);
    stats_.chunksTotal = chunks_;
}

bool
TransferSession::roll(unsigned pct)
{
    return sim::FaultInjector::splitmix64(rng_) % 100 < pct;
}

void
TransferSession::reconfigure(const TransportConfig &config)
{
    std::size_t chunk_bytes = config_.chunkBytes;
    config_ = config;
    // The chunk grid is fixed at session construction; changing it
    // mid-flight would orphan the delivered set.
    config_.chunkBytes = chunk_bytes;
}

void
TransferSession::sendChunk(unsigned index)
{
    std::size_t begin = std::size_t(index) * config_.chunkBytes;
    std::size_t len =
        std::min(config_.chunkBytes,
                 source_.size() - std::min(begin, source_.size()));
    const Byte *payload = source_.data() + begin;
    std::uint32_t good_crc = frameCrc(index, chunks_, payload, len);
    Cycles wire = config_.latencyCycles +
                  config_.perWordCycles * ((len + 3) / 4);

    Cycles timeout = config_.timeoutCycles;
    for (unsigned attempt = 0;; attempt++) {
        stats_.framesSent++;
        bool lost = roll(config_.lossPercent);
        bool corrupt = !lost && roll(config_.corruptPercent);

        std::vector<Byte> frame(payload, payload + len);
        std::uint32_t crc = good_crc;
        if (corrupt) {
            // one seeded bit flip anywhere in the frame — payload or
            // the CRC word itself; either way the receiver's check
            // fails and the chunk is dropped, costing a timeout
            std::size_t bits = 8 * (len + 4);
            std::size_t bit =
                sim::FaultInjector::splitmix64(rng_) % bits;
            if (bit < 8 * len)
                frame[bit / 8] ^= Byte(1u << (bit % 8));
            else
                crc ^= 1u << (bit - 8 * len);
        }

        bool accepted = false;
        if (!lost) {
            Cycles latency = wire;
            if (roll(config_.delayPercent))
                latency += config_.delayCycles;
            stats_.cyclesCharged += latency;
            // receive-side per-chunk CRC check
            if (frameCrc(index, chunks_, frame.data(), frame.size()) ==
                crc) {
                accepted = true;
            } else {
                stats_.corruptDropped++;
            }
        } else {
            stats_.lostInFlight++;
        }

        if (accepted) {
            delivered_[index] = std::move(frame);
            have_[index] = true;
            deliveredCount_++;
            if (roll(config_.dupPercent)) {
                stats_.framesSent++;
                stats_.cyclesCharged += wire;
                stats_.duplicatesSuppressed++;
            }
            std::size_t bucket =
                std::min<std::size_t>(attempt,
                                      stats_.retryHistogram.size() - 1);
            stats_.retryHistogram[bucket]++;
            stats_.chunksDelivered++;
            return;
        }

        // lost or dropped: wait out the retransmit timer
        if (attempt >= config_.maxRetries) {
            throw MigrateError(
                MigrateErrorKind::Partition, index,
                "chunk " + std::to_string(index) + "/" +
                    std::to_string(chunks_) + " undelivered after " +
                    std::to_string(attempt + 1) +
                    " attempts (network partition?)");
        }
        stats_.cyclesCharged += timeout;
        if (timeout > stats_.maxTimeoutCharged)
            stats_.maxTimeoutCharged = timeout;
        stats_.timeouts++;
        stats_.retries++;
        timeout = std::min<Cycles>(timeout * 2,
                                   config_.timeoutCapCycles);
    }
}

void
TransferSession::run()
{
    for (unsigned i = 0; i < chunks_; i++) {
        if (have_[i])
            continue;
        sendChunk(i);
    }
}

std::vector<Byte>
TransferSession::receivedImage() const
{
    if (!complete()) {
        throw MigrateError(
            MigrateErrorKind::ImageRejected, ~0u,
            "image incomplete: " + std::to_string(deliveredCount_) +
                "/" + std::to_string(chunks_) + " chunks delivered");
    }
    std::vector<Byte> image;
    image.reserve(source_.size());
    for (const std::vector<Byte> &c : delivered_)
        image.insert(image.end(), c.begin(), c.end());
    // Receive-side verification — exactly what `uexc-snap verify`
    // runs: header, version, every section CRC, total CRC, footer.
    try {
        sim::SnapshotImage check(image);
        (void)check;
    } catch (const sim::SnapshotError &e) {
        throw MigrateError(MigrateErrorKind::ImageRejected, ~0u,
                           std::string("reassembled image rejected: ") +
                               e.what());
    }
    return image;
}

std::vector<Byte>
transferImage(const std::vector<Byte> &image,
              const TransportConfig &config, TransportStats *stats)
{
    TransferSession session(image, config);
    try {
        session.run();
        std::vector<Byte> out = session.receivedImage();
        if (stats != nullptr)
            *stats = session.stats();
        return out;
    } catch (...) {
        if (stats != nullptr)
            *stats = session.stats();
        throw;
    }
}

// -- migrations ----------------------------------------------------------

MigrationResult
migrateImage(const std::vector<Byte> &image,
             const std::function<void(const std::vector<Byte> &)>
                 &restore_fn,
             const MigrationConfig &config)
{
    MigrationResult result;
    Cycles words = (image.size() + 3) / 4;
    result.downtimeCycles = config.checkpointPerWordCycles * words;
    TransferSession session(image, config.transport);
    try {
        session.run();
        std::vector<Byte> received = session.receivedImage();
        try {
            restore_fn(received);
        } catch (const sim::SnapshotError &e) {
            throw MigrateError(MigrateErrorKind::RestoreRefused, ~0u,
                               e.what());
        }
        result.succeeded = true;
        result.downtimeCycles += config.restorePerWordCycles * words;
    } catch (const MigrateError &e) {
        result.succeeded = false;
        result.errorKind = e.kind();
        result.error = e.what();
    }
    result.transport = session.stats();
    result.downtimeCycles += result.transport.cyclesCharged;
    return result;
}

MigrationResult
migrateRig(chaos::Rig &src, chaos::Rig &dst,
           const MigrationConfig &config)
{
    return migrateImage(
        src.checkpoint(),
        [&dst](const std::vector<Byte> &image) { dst.restore(image); },
        config);
}

MigrationResult
migrateMachine(sim::Machine &src, sim::Machine &dst,
               const MigrationConfig &config)
{
    return migrateImage(
        src.checkpoint(),
        [&dst](const std::vector<Byte> &image) { dst.restore(image); },
        config);
}

} // namespace uexc::rt::migrate
