#include "core/migrate.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "sim/faultinject.h"
#include "sim/snapshot.h"

namespace uexc::rt::migrate {

namespace {

/** Frame header: chunk index, total chunks, payload length — all
 *  covered (with the payload) by the frame CRC, so a bit flip
 *  anywhere in the frame is detected at the receiver. */
constexpr std::size_t kFrameHeaderBytes = 12;

std::uint32_t
frameCrc(unsigned index, unsigned total, const Byte *payload,
         std::size_t len)
{
    Byte header[kFrameHeaderBytes];
    for (unsigned i = 0; i < 4; i++) {
        header[i] = Byte(index >> (8 * i));
        header[4 + i] = Byte(total >> (8 * i));
        header[8 + i] = Byte(std::uint32_t(len) >> (8 * i));
    }
    std::uint32_t crc = sim::snapshotCrc32(header, sizeof header);
    // chain the payload CRC into the header CRC (simple concatenation
    // is fine for a simulated wire; this is detection, not security)
    return crc ^ sim::snapshotCrc32(payload, len);
}

} // namespace

const char *
migrateErrorKindName(MigrateErrorKind kind)
{
    switch (kind) {
      case MigrateErrorKind::Partition: return "partition";
      case MigrateErrorKind::ImageRejected: return "image-rejected";
      case MigrateErrorKind::RestoreRefused: return "restore-refused";
    }
    return "?";
}

// -- TransferSession -----------------------------------------------------

TransferSession::TransferSession(std::vector<Byte> image,
                                 const TransportConfig &config)
    : config_(config), source_(std::move(image)), rng_(config.seed)
{
    if (config_.chunkBytes == 0)
        UEXC_FATAL("migrate: zero transport chunk size");
    chunks_ = unsigned((source_.size() + config_.chunkBytes - 1) /
                       config_.chunkBytes);
    if (chunks_ == 0)
        chunks_ = 1; // an empty image still takes one (empty) frame
    delivered_.resize(chunks_);
    have_.assign(chunks_, false);
    stats_.chunksTotal = chunks_;
}

bool
TransferSession::roll(unsigned pct)
{
    return sim::FaultInjector::splitmix64(rng_) % 100 < pct;
}

void
TransferSession::reconfigure(const TransportConfig &config)
{
    std::size_t chunk_bytes = config_.chunkBytes;
    config_ = config;
    // The chunk grid is fixed at session construction; changing it
    // mid-flight would orphan the delivered set.
    config_.chunkBytes = chunk_bytes;
}

void
TransferSession::sendChunk(unsigned index)
{
    std::size_t begin = std::size_t(index) * config_.chunkBytes;
    std::size_t len =
        std::min(config_.chunkBytes,
                 source_.size() - std::min(begin, source_.size()));
    const Byte *payload = source_.data() + begin;
    std::uint32_t good_crc = frameCrc(index, chunks_, payload, len);
    Cycles wire = config_.latencyCycles +
                  config_.perWordCycles * ((len + 3) / 4);

    Cycles timeout = config_.timeoutCycles;
    Cycles last_charged = 0;
    for (unsigned attempt = 0;; attempt++) {
        stats_.framesSent++;
        bool lost = roll(config_.lossPercent);
        bool corrupt = !lost && roll(config_.corruptPercent);

        std::vector<Byte> frame(payload, payload + len);
        std::uint32_t crc = good_crc;
        if (corrupt) {
            // one seeded bit flip anywhere in the frame — payload or
            // the CRC word itself; either way the receiver's check
            // fails and the chunk is dropped, costing a timeout
            std::size_t bits = 8 * (len + 4);
            std::size_t bit =
                sim::FaultInjector::splitmix64(rng_) % bits;
            if (bit < 8 * len)
                frame[bit / 8] ^= Byte(1u << (bit % 8));
            else
                crc ^= 1u << (bit - 8 * len);
        }

        bool accepted = false;
        if (!lost) {
            Cycles latency = wire;
            if (roll(config_.delayPercent))
                latency += config_.delayCycles;
            stats_.cyclesCharged += latency;
            // receive-side per-chunk CRC check
            if (frameCrc(index, chunks_, frame.data(), frame.size()) ==
                crc) {
                accepted = true;
            } else {
                stats_.corruptDropped++;
            }
        } else {
            stats_.lostInFlight++;
        }

        if (accepted) {
            delivered_[index] = std::move(frame);
            have_[index] = true;
            deliveredCount_++;
            if (roll(config_.dupPercent)) {
                stats_.framesSent++;
                stats_.cyclesCharged += wire;
                stats_.duplicatesSuppressed++;
            }
            std::size_t bucket =
                std::min<std::size_t>(attempt,
                                      stats_.retryHistogram.size() - 1);
            stats_.retryHistogram[bucket]++;
            stats_.chunksDelivered++;
            return;
        }

        // lost or dropped: wait out the retransmit timer
        if (attempt >= config_.maxRetries) {
            throw MigrateError(
                MigrateErrorKind::Partition, index, attempt,
                last_charged,
                "chunk " + std::to_string(index) + "/" +
                    std::to_string(chunks_) + " undelivered after " +
                    std::to_string(attempt + 1) +
                    " attempts (network partition?)");
        }
        stats_.cyclesCharged += timeout;
        last_charged = timeout;
        if (timeout > stats_.maxTimeoutCharged)
            stats_.maxTimeoutCharged = timeout;
        stats_.timeouts++;
        stats_.retries++;
        timeout = std::min<Cycles>(timeout * 2,
                                   config_.timeoutCapCycles);
    }
}

void
TransferSession::run()
{
    for (unsigned i = 0; i < chunks_; i++) {
        if (have_[i])
            continue;
        sendChunk(i);
    }
}

unsigned
TransferSession::runSome(unsigned max_chunks)
{
    unsigned sent = 0;
    for (unsigned i = 0; i < chunks_ && sent < max_chunks; i++) {
        if (have_[i])
            continue;
        sendChunk(i);
        sent++;
    }
    return sent;
}

std::vector<Byte>
TransferSession::receivedImage() const
{
    if (!complete()) {
        throw MigrateError(
            MigrateErrorKind::ImageRejected, ~0u,
            "image incomplete: " + std::to_string(deliveredCount_) +
                "/" + std::to_string(chunks_) + " chunks delivered");
    }
    std::vector<Byte> image;
    image.reserve(source_.size());
    for (const std::vector<Byte> &c : delivered_)
        image.insert(image.end(), c.begin(), c.end());
    // Receive-side verification — exactly what `uexc-snap verify`
    // runs: header, version, every section CRC, total CRC, footer.
    try {
        sim::SnapshotImage check(image);
        (void)check;
    } catch (const sim::SnapshotError &e) {
        throw MigrateError(MigrateErrorKind::ImageRejected, ~0u,
                           std::string("reassembled image rejected: ") +
                               e.what());
    }
    return image;
}

std::vector<Byte>
transferImage(const std::vector<Byte> &image,
              const TransportConfig &config, TransportStats *stats)
{
    TransferSession session(image, config);
    try {
        session.run();
        std::vector<Byte> out = session.receivedImage();
        if (stats != nullptr)
            *stats = session.stats();
        return out;
    } catch (...) {
        if (stats != nullptr)
            *stats = session.stats();
        throw;
    }
}

// -- migrations ----------------------------------------------------------

MigrationResult
migrateImage(const std::vector<Byte> &image,
             const std::function<void(const std::vector<Byte> &)>
                 &restore_fn,
             const MigrationConfig &config)
{
    MigrationResult result;
    Cycles words = (image.size() + 3) / 4;
    result.downtimeCycles = config.checkpointPerWordCycles * words;
    TransferSession session(image, config.transport);
    try {
        session.run();
        std::vector<Byte> received = session.receivedImage();
        try {
            restore_fn(received);
        } catch (const sim::SnapshotError &e) {
            throw MigrateError(MigrateErrorKind::RestoreRefused, ~0u,
                               e.what());
        }
        result.succeeded = true;
        result.downtimeCycles += config.restorePerWordCycles * words;
    } catch (const MigrateError &e) {
        result.succeeded = false;
        result.errorKind = e.kind();
        result.error = e.what();
        result.errorChunk = e.chunk();
        result.errorRetries = e.retries();
        result.errorTimeoutCharged = e.chargedTimeout();
    }
    result.transport = session.stats();
    result.downtimeCycles += result.transport.cyclesCharged;
    result.bytesMoved =
        result.succeeded
            ? image.size()
            : std::min<std::uint64_t>(
                  image.size(), std::uint64_t(config.transport.chunkBytes) *
                                    session.chunksDelivered());
    return result;
}

// -- iterative pre-copy --------------------------------------------------

namespace {

/** A pre-copy round batch: one section holding explicit pages (a
 *  page that became all-zero still travels, to overwrite the
 *  receiver's stale copy). Serialized as a complete snapshot image so
 *  TransferSession::receivedImage() validates it like any other. */
constexpr Word kTagPreCopyPages = sim::snapshotTag('P', 'C', 'P', 'G');

/** Control-image stand-in for the MEM section: the receiver splices
 *  its reassembled memory payload where this marker sits, and both
 *  CRCs recorded here must match before anything is restored. */
constexpr Word kTagMemoryRef = sim::snapshotTag('P', 'M', 'R', 'F');

std::size_t
pageLen(std::uint64_t mem_bytes, std::uint32_t page)
{
    std::size_t base = std::size_t(page) * sim::kSnapshotPageBytes;
    return std::min(sim::kSnapshotPageBytes,
                    std::size_t(mem_bytes) - base);
}

std::vector<Byte>
buildPageBatch(const PreCopySource &source,
               const std::vector<std::uint32_t> &pages)
{
    sim::SnapshotWriter w;
    w.beginSection(kTagPreCopyPages);
    w.u64(source.memBytes);
    w.u32(std::uint32_t(pages.size()));
    std::vector<Byte> page(sim::kSnapshotPageBytes);
    for (std::uint32_t p : pages) {
        std::size_t len = pageLen(source.memBytes, p);
        source.readPage(p, page.data(), len);
        w.u32(p);
        w.bytes(page.data(), len);
    }
    w.endSection();
    return w.finish();
}

void
applyPageBatch(const std::vector<Byte> &batch, std::vector<Byte> &store)
{
    sim::SnapshotImage img(batch);
    sim::SnapshotReader r = img.section(kTagPreCopyPages);
    std::uint64_t mem_bytes = r.u64();
    if (mem_bytes != store.size())
        r.fail("pre-copy batch memory size mismatch");
    std::uint32_t count = r.u32();
    std::size_t total_pages =
        (store.size() + sim::kSnapshotPageBytes - 1) /
        sim::kSnapshotPageBytes;
    for (std::uint32_t i = 0; i < count; i++) {
        std::uint32_t p = r.u32();
        if (p >= total_pages)
            r.fail("pre-copy page index out of range");
        std::size_t len = pageLen(mem_bytes, p);
        r.bytes(store.data() +
                    std::size_t(p) * sim::kSnapshotPageBytes,
                len);
    }
    r.expectEnd();
}

/** Re-serialize @p full with the MEM section replaced by a PMRF
 *  marker carrying the MEM payload CRC and the whole-image CRC. */
std::vector<Byte>
buildControlImage(const std::vector<Byte> &full)
{
    sim::SnapshotImage img(full);
    sim::SnapshotWriter w;
    for (const sim::SnapshotSection &s : img.sections()) {
        if (s.tag == sim::kSnapshotMemoryTag) {
            w.beginSection(kTagMemoryRef);
            w.u64(s.length);
            w.u32(sim::snapshotCrc32(img.sectionData(s), s.length));
            w.u32(sim::snapshotCrc32(full.data(), full.size()));
            w.endSection();
        } else {
            w.beginSection(s.tag);
            w.bytes(img.sectionData(s), s.length);
            w.endSection();
        }
    }
    return w.finish();
}

/** Reassemble the final image: the control image's sections in
 *  order, with the receiver's page store serialized through the
 *  shared snapshot serializer where the PMRF marker sits. Throws
 *  MigrateError(ImageRejected) unless the reconstructed memory
 *  payload and the whole image match the CRCs the source recorded —
 *  the bit-identity guarantee of the pre-copy path. */
std::vector<Byte>
spliceControlImage(const std::vector<Byte> &control,
                   const std::vector<Byte> &store)
{
    sim::SnapshotImage img(control);
    sim::SnapshotReader ref = img.section(kTagMemoryRef);
    std::uint64_t mem_payload_len = ref.u64();
    std::uint32_t mem_payload_crc = ref.u32();
    std::uint32_t full_crc = ref.u32();
    ref.expectEnd();

    sim::SnapshotWriter w;
    for (const sim::SnapshotSection &s : img.sections()) {
        if (s.tag == kTagMemoryRef) {
            sim::writeMemorySection(
                w, sim::kSnapshotMemoryTag, store.size(),
                [&store](std::uint32_t p, Byte *dst, std::size_t len) {
                    std::memcpy(dst,
                                store.data() +
                                    std::size_t(p) *
                                        sim::kSnapshotPageBytes,
                                len);
                });
        } else {
            w.beginSection(s.tag);
            w.bytes(img.sectionData(s), s.length);
            w.endSection();
        }
    }
    std::vector<Byte> out = w.finish();

    sim::SnapshotImage out_img(out);
    for (const sim::SnapshotSection &s : out_img.sections()) {
        if (s.tag != sim::kSnapshotMemoryTag)
            continue;
        if (s.length != mem_payload_len ||
            sim::snapshotCrc32(out_img.sectionData(s), s.length) !=
                mem_payload_crc) {
            throw MigrateError(
                MigrateErrorKind::ImageRejected, ~0u,
                "pre-copy memory reconstruction diverged from the "
                "source (payload CRC mismatch)");
        }
    }
    if (sim::snapshotCrc32(out.data(), out.size()) != full_crc) {
        throw MigrateError(MigrateErrorKind::ImageRejected, ~0u,
                           "pre-copy reconstructed image CRC does not "
                           "match the source checkpoint");
    }
    return out;
}

void
accumulateStats(TransportStats &into, const TransportStats &s)
{
    into.chunksTotal += s.chunksTotal;
    into.chunksDelivered += s.chunksDelivered;
    into.framesSent += s.framesSent;
    into.retries += s.retries;
    into.timeouts += s.timeouts;
    into.lostInFlight += s.lostInFlight;
    into.corruptDropped += s.corruptDropped;
    into.duplicatesSuppressed += s.duplicatesSuppressed;
    into.maxTimeoutCharged =
        std::max(into.maxTimeoutCharged, s.maxTimeoutCharged);
    into.cyclesCharged += s.cyclesCharged;
    for (std::size_t i = 0; i < into.retryHistogram.size() &&
                            i < s.retryHistogram.size();
         i++)
        into.retryHistogram[i] += s.retryHistogram[i];
}

} // namespace

MigrationResult
migrateImagePreCopy(const PreCopySource &source,
                    const std::function<void(const std::vector<Byte> &)>
                        &restore_fn,
                    const MigrationConfig &config,
                    const PreCopyConfig &precopy)
{
    MigrationResult result;
    result.usedPreCopy = true;

    std::size_t total_pages =
        (std::size_t(source.memBytes) + sim::kSnapshotPageBytes - 1) /
        sim::kSnapshotPageBytes;
    std::vector<std::uint32_t> sent_version(total_pages, 0);
    std::vector<Byte> store(std::size_t(source.memBytes), 0);

    // Each transfer (round batches, residual, control image) is its
    // own session over a seed derived from the configured stream, so
    // the weather across rounds is deterministic but decorrelated.
    std::uint64_t seed_chain = config.transport.seed;
    auto ship = [&](const std::vector<Byte> &image,
                    bool downtime) -> std::vector<Byte> {
        TransportConfig t = config.transport;
        t.seed = sim::FaultInjector::splitmix64(seed_chain);
        TransferSession session(image, t);
        Cycles serialize =
            config.checkpointPerWordCycles * ((image.size() + 3) / 4);
        try {
            session.run();
            std::vector<Byte> got = session.receivedImage();
            accumulateStats(result.transport, session.stats());
            Cycles cost = serialize + session.stats().cyclesCharged;
            if (downtime) {
                result.downtimeCycles += cost;
                result.precopy.bytesMovedStopCopy += image.size();
            } else {
                result.precopy.precopyCycles += cost;
                result.precopy.bytesMovedPreCopy += image.size();
            }
            return got;
        } catch (const MigrateError &) {
            accumulateStats(result.transport, session.stats());
            if (downtime)
                result.downtimeCycles +=
                    serialize + session.stats().cyclesCharged;
            else
                result.precopy.precopyCycles +=
                    serialize + session.stats().cyclesCharged;
            throw;
        }
    };

    auto dirtyPages = [&]() {
        std::vector<std::uint32_t> dirty;
        for (std::size_t p = 0; p < total_pages; p++)
            if (source.pageVersion(std::uint32_t(p)) !=
                sent_version[p])
                dirty.push_back(std::uint32_t(p));
        return dirty;
    };

    try {
        // Initial live pass: every nonzero page, with the write
        // version of *every* page recorded so a zero page that gets
        // dirtied later (even back to zero) is caught.
        std::vector<std::uint32_t> live;
        for (std::size_t p = 0; p < total_pages; p++) {
            sent_version[p] = source.pageVersion(std::uint32_t(p));
            std::size_t len = pageLen(source.memBytes,
                                      std::uint32_t(p));
            bool zero = source.pageIsZero
                            ? source.pageIsZero(std::uint32_t(p), len)
                            : false;
            if (!zero)
                live.push_back(std::uint32_t(p));
        }
        applyPageBatch(ship(buildPageBatch(source, live), false),
                       store);
        result.precopy.pagesSentPreCopy += live.size();

        // Dirty rounds: run the guest one slice per round, re-ship
        // what it touched, stop early once the set is small enough to
        // move inside the downtime window.
        std::vector<std::uint32_t> dirty;
        while (result.precopy.roundsRun < precopy.maxRounds) {
            source.runSlice();
            result.precopy.roundsRun++;
            dirty = dirtyPages();
            if (dirty.size() <= precopy.convergePages) {
                result.precopy.converged = true;
                break;
            }
            for (std::uint32_t p : dirty)
                sent_version[p] = source.pageVersion(p);
            applyPageBatch(ship(buildPageBatch(source, dirty), false),
                           store);
            result.precopy.pagesSentPreCopy += dirty.size();
        }

        // Stop-and-copy: the guest pauses here. Residual pages plus
        // the memory-less control image are all that moves while it
        // is down.
        std::vector<std::uint32_t> residual = dirtyPages();
        result.precopy.residualPages = residual.size();
        if (!residual.empty())
            applyPageBatch(
                ship(buildPageBatch(source, residual), true), store);

        std::vector<Byte> full = source.checkpoint();
        std::vector<Byte> final_image =
            spliceControlImage(ship(buildControlImage(full), true),
                               store);

        try {
            restore_fn(final_image);
        } catch (const sim::SnapshotError &e) {
            throw MigrateError(MigrateErrorKind::RestoreRefused, ~0u,
                               e.what());
        }
        // Apply cost of the state the receiver could not have staged
        // while the guest ran: the non-memory sections and the
        // residual pages.
        result.downtimeCycles +=
            config.restorePerWordCycles *
            ((result.precopy.bytesMovedStopCopy + 3) / 4);
        result.succeeded = true;
    } catch (const MigrateError &e) {
        result.succeeded = false;
        result.errorKind = e.kind();
        result.error = e.what();
        result.errorChunk = e.chunk();
        result.errorRetries = e.retries();
        result.errorTimeoutCharged = e.chargedTimeout();
    }
    result.bytesMoved = result.precopy.bytesMovedPreCopy +
                        result.precopy.bytesMovedStopCopy;
    return result;
}

MigrationResult
migrateMachinePreCopy(sim::Machine &src, sim::Machine &dst,
                      const MigrationConfig &config,
                      const PreCopyConfig &precopy,
                      const std::function<void()> &run_slice)
{
    sim::PhysMemory &mem = src.mem();
    PreCopySource source;
    source.memBytes = mem.size();
    source.readPage = [&mem](std::uint32_t p, Byte *dst_buf,
                             std::size_t len) {
        mem.readBlock(Addr(std::size_t(p) * sim::kSnapshotPageBytes),
                      dst_buf, len);
    };
    source.pageVersion = [&mem](std::uint32_t p) {
        return mem.pageVersion(Addr(std::size_t(p) *
                                    sim::kSnapshotPageBytes));
    };
    source.pageIsZero = [&mem](std::uint32_t p, std::size_t len) {
        return mem.blockIsZero(
            Addr(std::size_t(p) * sim::kSnapshotPageBytes), len);
    };
    source.runSlice = run_slice;
    source.checkpoint = [&src] { return src.checkpoint(); };
    return migrateImagePreCopy(
        source,
        [&dst](const std::vector<Byte> &image) { dst.restore(image); },
        config, precopy);
}

MigrationResult
migrateRigPreCopy(chaos::Rig &src, chaos::Rig &dst,
                  const MigrationConfig &config,
                  const PreCopyConfig &precopy,
                  unsigned ops_per_slice)
{
    sim::Machine &machine = src.machine();
    sim::PhysMemory &mem = machine.mem();
    PreCopySource source;
    source.memBytes = mem.size();
    source.readPage = [&mem](std::uint32_t p, Byte *dst_buf,
                             std::size_t len) {
        mem.readBlock(Addr(std::size_t(p) * sim::kSnapshotPageBytes),
                      dst_buf, len);
    };
    source.pageVersion = [&mem](std::uint32_t p) {
        return mem.pageVersion(Addr(std::size_t(p) *
                                    sim::kSnapshotPageBytes));
    };
    source.pageIsZero = [&mem](std::uint32_t p, std::size_t len) {
        return mem.blockIsZero(
            Addr(std::size_t(p) * sim::kSnapshotPageBytes), len);
    };
    source.runSlice = [&src, ops_per_slice] {
        src.runTo(std::min(chaos::kTotalOps,
                           src.cursor() + ops_per_slice));
    };
    source.checkpoint = [&src] { return src.checkpoint(); };
    return migrateImagePreCopy(
        source,
        [&dst](const std::vector<Byte> &image) { dst.restore(image); },
        config, precopy);
}

MigrationResult
migrateRig(chaos::Rig &src, chaos::Rig &dst,
           const MigrationConfig &config)
{
    return migrateImage(
        src.checkpoint(),
        [&dst](const std::vector<Byte> &image) { dst.restore(image); },
        config);
}

MigrationResult
migrateMachine(sim::Machine &src, sim::Machine &dst,
               const MigrationConfig &config)
{
    return migrateImage(
        src.checkpoint(),
        [&dst](const std::vector<Byte> &image) { dst.restore(image); },
        config);
}

} // namespace uexc::rt::migrate
