/**
 * @file
 * uexc-lint analyzer configurations for user-side guest programs
 * (the UserEnv shim, the microbenchmark scenarios, example apps).
 *
 * A user program is linted as one whole-text user-mode region rooted
 * at every exported symbol, plus one handler sub-region per stub: the
 * stub emitters (core/stubs.cc) export a `<name>__end` marker label,
 * and any symbol pair `X` / `X__end` is analyzed as an exception
 * handler under the paper's register discipline. The scratch set is
 * inferred from the stub kind: a stub beginning with mtux is the
 * hardware-vectored flavor (only k0/k1 are architecturally free);
 * anything else is the software fast stub, entered with at/t0-t5
 * already saved in the frame by the kernel.
 */

#ifndef UEXC_CORE_LINTSPEC_H
#define UEXC_CORE_LINTSPEC_H

#include "analysis/lint.h"
#include "sim/assembler.h"

namespace uexc::rt {

/** Registers the software fast stub may clobber freely: the
 *  kernel-saved at/t0-t5 plus the kernel-reserved k0/k1. */
Word fastStubScratchMask();

/** Registers the hardware-vectored stub may clobber freely: k0/k1. */
Word hwStubScratchMask();

/**
 * Build the analyzer configuration for a user guest program: the
 * whole-text user-mode region plus a handler region per `X`/`X__end`
 * symbol pair. A `uvtable` symbol, if present, is declared as data
 * (the process-local hardware vector table) and its targets are mined
 * as entry points.
 */
analysis::LintConfig userProgramLintConfig(const sim::Program &prog);

/**
 * Per-hart entry points of a multi-hart guest program: the exported
 * `mh_hart<i>_entry` symbols for i < @p num_harts, in hart order.
 * Fatal if any is missing — a worker assembled for fewer harts than
 * the machine runs must not pass silently.
 */
std::vector<Addr> perHartEntryPoints(const sim::Program &prog,
                                     unsigned num_harts);

/**
 * Per-hart variant of userProgramLintConfig: the whole-text region is
 * rooted at exactly the per-hart entries (plus the handler-region
 * starts), modeling that on an N-hart machine execution begins only
 * at a hart's own entry, never at an arbitrary exported label.
 */
analysis::LintConfig userProgramLintConfig(const sim::Program &prog,
                                           unsigned num_harts);

/**
 * Turn on the worst-case handler-latency analysis in @p config and
 * give every handler region that has no budget of its own @p budget
 * cycles. A budget of 0 still runs the analysis (flagging unbounded
 * loops) without gating on a bound.
 */
void applyHandlerWcetBudget(analysis::LintConfig &config, Cycles budget);

} // namespace uexc::rt

#endif // UEXC_CORE_LINTSPEC_H
