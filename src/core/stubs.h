/**
 * @file
 * User-level guest code emitters for the exception runtime: the
 * low-level fast-exception stub (section 3.2 of the paper), the
 * Tera-style user-vectored stub (section 2), the Unix signal
 * trampoline, and syscall wrappers. Shared by the host-facing
 * UserEnv facade, the guest microbenchmarks, and the examples.
 *
 * Fast-stub ABI (software scheme):
 *  - the kernel enters the stub with t3 = frame address (user va)
 *    for the exception type; at,t0-t5 and EPC/Cause/BadVAddr/Status/
 *    HI/LO are stored in the frame;
 *  - the stub may spill more registers into the frame's 19-word
 *    spill area, according to its SavePolicy;
 *  - resumption restores the kernel-saved registers and jumps to the
 *    frame's EPC through k0, which is architecturally dead in user
 *    code (the MIPS ABI reserves k0/k1 for the kernel).
 */

#ifndef UEXC_CORE_STUBS_H
#define UEXC_CORE_STUBS_H

#include <functional>
#include <string>

#include "os/layout.h"
#include "sim/assembler.h"

namespace uexc::rt {

/** How much state the user-level stub saves before its body runs. */
enum class SavePolicy
{
    /**
     * Save the full Ultrix-equivalent register state (19 additional
     * registers into the spill area). This is what the paper's
     * measurements use "to make the comparison fair" (section 3.3).
     */
    UltrixEquivalent,
    /**
     * Save nothing beyond the kernel-saved scratch set. Legal when
     * the handler body clobbers only at/t0-t5/k0/k1 (e.g. a body
     * that is a single host upcall). This is the paper's
     * "specialized handler" configuration (section 4.2.2: 6 us
     * round trip instead of 8).
     */
    Minimal,
};

/**
 * Emit the fast-exception user stub.
 *
 * The body is whatever the caller emits via @p emit_body (e.g. an
 * hcall to a host handler, or a jal to a guest C-style handler). The
 * body runs after the policy spill with t3 = frame address; it must
 * preserve t3 and the s-registers, and may rely on the spill policy
 * for everything else.
 *
 * @param a         assembler positioned in user text
 * @param name      label for the stub entry (exported)
 * @param policy    spill policy
 * @param emit_body emits the handler body
 */
void emitFastStub(sim::Assembler &a, const std::string &name,
                  SavePolicy policy,
                  const std::function<void(sim::Assembler &)> &emit_body);

/**
 * Emit the Tera-style stub for hardware user vectoring: the CPU
 * transfers directly here (no kernel); exception state is in the
 * user exception registers; xret resumes.
 */
void emitUserVectorStub(
    sim::Assembler &a, const std::string &name,
    const std::function<void(sim::Assembler &)> &emit_body);

/**
 * Emit the Unix signal trampoline (the "user runtime" code the
 * kernel's sendsig() returns through). Expects the kernel ABI:
 * a0 = signal, a1 = code, a2 = &sigcontext, t9 = handler.
 */
void emitTrampoline(sim::Assembler &a, const std::string &name);

/** Emit "li v0, num; syscall" with up to 3 args already in a0-a2. */
void emitSyscall(sim::Assembler &a, Word num);

/**
 * Spill-area slot index of @p reg under SavePolicy::UltrixEquivalent,
 * or -1 if that policy does not spill the register. Used by the
 * host-side Fault accessor to find interrupted register values.
 */
int spillSlot(unsigned reg);

} // namespace uexc::rt

#endif // UEXC_CORE_STUBS_H
