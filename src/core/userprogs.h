/**
 * @file
 * The checked-in userland: complete guest programs, built as
 * two-section (text + data) GuestImages and shipped as static MIPS-I
 * ELF executables under user/fixtures/.
 *
 * Each program is a real process image: it enters at _start, parses
 * argv (execve's a0/a1), talks to the kernel only through the
 * Ultrix-flavored syscall table, and exits with a status code. The
 * three scenario programs (gcbar, swizzle, futures) re-express the
 * paper's application studies — the generational-GC write barrier
 * (section 4.1), pointer swizzling / object faulting, and
 * unaligned-pointer futures (section 4.2.1) — as compiled binaries
 * that select their delivery mechanism from argv[1]:
 *
 *   'u'  fast user-level delivery (uexc_enable + fast stub)
 *   's'  stock Unix signal delivery (sigaction + trampoline)
 *
 * Both paths do the same number of iterations and faults, so cycle
 * totals of the two runs compare the mechanisms directly, like the
 * synthetic microbenchmarks but through a loaded ELF binary.
 *
 * The C sources in user/progs/ mirror these programs for an actual
 * cross-compiler; the assembler-backed builders here are the
 * reference implementation the fixtures are generated from (the
 * container has no MIPS cross toolchain).
 */

#ifndef UEXC_CORE_USERPROGS_H
#define UEXC_CORE_USERPROGS_H

#include <string>
#include <vector>

#include "os/guestimage.h"

namespace uexc::rt::userprog {

/** Names of all checked-in user programs, fixture order. */
const std::vector<std::string> &programNames();

/**
 * Build program @p name ("hello", "sbrktest", "forktest", "gcbar",
 * "swizzle", "futures") as a validated two-section GuestImage with
 * its uexc-lint configuration attached. Fatal on unknown names.
 */
os::GuestImage buildUserProgram(const std::string &name);

/** Exit status a successful run of any of the programs reports. */
constexpr Word kExitOk = 0;

/** Iterations the scenario programs run (== faults taken). */
constexpr unsigned kScenarioIters = 32;

} // namespace uexc::rt::userprog

#endif // UEXC_CORE_USERPROGS_H
