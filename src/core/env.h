/**
 * @file
 * UserEnv: the host-facing facade of the exception runtime, and the
 * primary public API of this library.
 *
 * A UserEnv stands for a user program whose *logic* runs host-side
 * (the garbage collector, the persistent store, ...) but whose every
 * memory access goes through the simulated MMU and whose every
 * exception runs the *real* guest dispatch path: hardware vectoring,
 * the kernel fast path or the stock Ultrix signal machinery, the
 * user-level stub, and the resume sequence — all as executed machine
 * code with cycle accounting. Host handler logic is reached through
 * the hcall upcall bridge from within the user-level stub, exactly
 * where a C handler would run.
 *
 * Three delivery modes reproduce the paper's comparisons:
 *  - UltrixSignal:       stock Unix signals (Table 1/2 baseline)
 *  - FastSoftware:       the paper's software scheme (section 3)
 *  - FastHardwareVector: the paper's architectural proposal
 *                        (section 2, Tera-style direct vectoring)
 */

#ifndef UEXC_CORE_ENV_H
#define UEXC_CORE_ENV_H

#include <array>
#include <functional>

#include "core/stubs.h"
#include "os/kernel.h"

namespace uexc::rt {

/** Exception delivery mechanism under test. */
enum class DeliveryMode
{
    UltrixSignal,
    FastSoftware,
    FastHardwareVector,
};

class UserEnv;

/**
 * A delivered fault, as seen by a host-side handler. Register and
 * resume-PC accesses are routed to wherever the active delivery
 * mechanism put the interrupted context (sigcontext on the user
 * stack, the exception frame page, or the user exception registers).
 */
class Fault
{
  public:
    sim::ExcCode code() const { return code_; }
    /** PC of the faulting instruction (branch PC if in delay slot). */
    Addr pc() const { return pc_; }
    Addr badVaddr() const { return badVaddr_; }
    bool branchDelay() const { return branchDelay_; }

    /** Interrupted context's register file. */
    Word reg(unsigned r) const;
    void setReg(unsigned r, Word value);

    /** Resume somewhere other than the faulting instruction. */
    void resumeAt(Addr pc);

  private:
    friend class UserEnv;
    Fault(UserEnv &env, sim::ExcCode code, Addr pc, Addr bad_vaddr,
          bool bd)
        : env_(env), code_(code), pc_(pc), badVaddr_(bad_vaddr),
          branchDelay_(bd) {}

    UserEnv &env_;
    sim::ExcCode code_;
    Addr pc_;
    Addr badVaddr_;
    bool branchDelay_;
};

/** Host-side fault handler. */
using FaultHandler = std::function<void(Fault &)>;

/** Per-environment statistics. */
struct EnvStats
{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t faultsDelivered = 0;
    std::uint64_t guestSyscalls = 0;
    std::uint64_t inHandlerServiceCalls = 0;
    /** Times this env was demoted to kernel-mediated delivery. */
    std::uint64_t deliveryDemoted = 0;
    /** Save-page canary mismatches detected (each one demotes). */
    std::uint64_t savePageCorruptions = 0;
};

/**
 * The facade. See file comment.
 */
class UserEnv
{
  public:
    /**
     * @param kernel   a booted kernel
     * @param mode     delivery mechanism
     * @param policy   user-stub save policy (fast modes)
     * @param hart     the hart this environment lives on. On a
     *                 multi-hart machine each hart can host its own
     *                 UserEnv over the shared kernel: every host-
     *                 driven operation binds the hart first, the
     *                 COP3 frame/handler state installs into that
     *                 hart's CP0, and upcalls route per hart.
     */
    UserEnv(os::Kernel &kernel, DeliveryMode mode,
            SavePolicy policy = SavePolicy::UltrixEquivalent,
            unsigned hart = 0);

    /**
     * Build and load the shim, enable the mechanism, park in user
     * mode. Must be called once before any other operation. At most
     * one UserEnv may be installed per *hart* (the upcall bridge and
     * the parked CPU context are per-hart); on a single-hart machine
     * that is the classic one-environment-per-machine rule.
     */
    void install(Word exc_mask);

    DeliveryMode mode() const { return mode_; }

    /**
     * The mechanism future faults will actually use: the configured
     * mode until the watchdog or the save-page canary demotes this
     * environment, kernel-mediated (UltrixSignal) afterwards.
     */
    DeliveryMode deliveryMode() const
    {
        return demoted_ ? DeliveryMode::UltrixSignal : mode_;
    }

    /** Whether this env was demoted to kernel-mediated delivery. */
    bool demoted() const { return demoted_; }

    os::Process &process() { return *proc_; }
    os::Kernel &kernel() { return kernel_; }
    sim::Cpu &cpu() const { return kernel_.machine().cpu(); }

    /** The hart this environment lives on. */
    unsigned hartId() const { return hart_; }

    /**
     * Bind the machine's execute engine to this env's hart and
     * reactivate its process (curproc / ASID / PTEBase). A no-op
     * when the hart is already bound with this process current, so
     * single-hart machines are untouched; on shared machines every
     * public operation calls it first.
     */
    void bind();

    // -- application memory ------------------------------------------------

    /** Map fresh zeroed pages (uncosted setup, like program load). */
    void allocate(Addr va, Word len,
                  Word prot = os::kProtRead | os::kProtWrite);

    /**
     * Word load/store at a user virtual address, through the MMU.
     * Faults take the full simulated delivery path.
     */
    Word load(Addr va);
    void store(Addr va, Word value);

    // -- protection control ---------------------------------------------------
    //
    // Outside a handler these execute the real guest syscall
    // (mprotect / uexc_protect / subpage_protect) and cost what the
    // syscall costs. Inside a handler they invoke the kernel service
    // directly plus a configurable syscall-overhead charge (see
    // setSyscallOverhead), because the simulated CPU is mid-dispatch.

    void protect(Addr va, Word len, Word prot);
    void subpageProtect(Addr va, Word len, Word prot);
    void setEagerAmplify(bool enable);

    /**
     * User-level TLB protection modification (section 3.2.3): execute
     * a TLBMP instruction against @p va. With TLBMP hardware and the
     * U bit granted (uexc-protected pages), this costs a couple of
     * cycles; without hardware, it traps RI and the kernel emulates.
     * @p writable / @p valid become the entry's D / V bits.
     */
    void userTlbModify(Addr va, bool writable, bool valid);

    /** Charge applied to in-handler service calls (default 250
     *  cycles, the measured null-syscall cost; see bench_table2). */
    void setSyscallOverhead(Cycles cycles) { syscallOverhead_ = cycles; }

    /**
     * Watchdog budget: the maximum guest instructions one delivery
     * (or guest syscall) may run. A fast-mode delivery that exhausts
     * it — a runaway user handler — is demoted to kernel-mediated
     * delivery and retried once; a second exhaustion is a GuestError.
     * Debug builds re-run the static worst-case-latency analysis on
     * the shim against the new budget and panic if a handler's bound
     * cannot fit it (the dynamic watchdog would then always fire).
     */
    void setHandlerBudget(InstCount budget);

    /** User-va entry of the fast-mode exception stub (0 in Ultrix
     *  mode); exposed so fault-injection campaigns can target it. */
    Addr stubAddr() const { return stub_; }

    /**
     * The fast stub's register-restore window [restore, end): from
     * the `lw k0, Epc(frame)` to the `jr k0` delay slot retiring, k0
     * holds the resume target and a spurious refill would clobber it
     * (the PR 4 K0 resume-window hazard). install() registers this
     * window with the machine's fault injector as a no-injection
     * window; exposed so tests can verify deferral around it.
     */
    Addr stubRestoreAddr() const { return stubRestore_; }
    Addr stubEndAddr() const { return stubEnd_; }

    // -- handlers -----------------------------------------------------------------

    /** Install the default handler for every delivered fault. */
    void setHandler(FaultHandler handler) { handler_ = std::move(handler); }

    /**
     * Install a handler for one exception type. The kernel's frame
     * page keeps a separate frame per ExcCode (paper section 3.2),
     * so typed dispatch needs no decoding in the common handler.
     * Falls back to the default handler for types without one.
     */
    void setHandler(sim::ExcCode code, FaultHandler handler);

    // -- measurement -----------------------------------------------------------------

    /** Total simulated cycles so far (whole machine). */
    Cycles cycles() const { return cpu().cycles(); }
    const EnvStats &stats() const { return stats_; }

    /** Execute a raw guest syscall (v0=num, a0-a2 args); returns v0. */
    Word guestSyscall(Word num, Word a0 = 0, Word a1 = 0, Word a2 = 0);

    /**
     * Assemble the user-side shim program (parking loop, fault sites,
     * stubs, trampoline) without needing a machine. This is what
     * install() loads — exposed so the static analyzer (uexc-lint)
     * and tests can inspect the exact code that would run.
     */
    static sim::Program buildShimProgram(SavePolicy policy,
                                         bool user_vector_hw);

    /**
     * The shim as a GuestImage: the assembled program with the
     * user-program lint configuration attached and the parking loop
     * as entry. install() loads this; uexc-lint's shim target
     * consumes the same image.
     */
    static os::GuestImage buildShimImage(SavePolicy policy,
                                         bool user_vector_hw);

    /**
     * Serialize/restore this environment's host-side delivery state
     * (demotion flag, watchdog budget, statistics). install()
     * registers these with the machine as the per-hart "UEN"+hart
     * snapshot section. Checkpoints are only meaningful between
     * operations — snapshotSave refuses to run mid-handler.
     */
    void snapshotSave(sim::SnapshotWriter &w) const;
    void snapshotLoad(sim::SnapshotReader &r);

  private:
    friend class Fault;

    void buildShim();
    /** Analyzer config for the installed shim: the user-program spec
     *  with handler WCET bounds gated on handlerBudget_. */
    analysis::LintConfig shimLintConfig() const;
    void onUpcall();
    void runGuest(Addr entry, Addr stop, InstCount limit);
    bool hostRefill(Addr va, sim::AccessType type);
    Word contextReg(unsigned r) const;
    void setContextReg(unsigned r, Word value);
    Addr frameKva() const;
    Addr sigctxKva() const;
    void demote();
    void writeCanary();
    bool checkCanary();
    static Word canaryWord(Word index);

    os::Kernel &kernel_;
    DeliveryMode mode_;
    SavePolicy policy_;
    unsigned hart_ = 0;
    os::Process *proc_ = nullptr;
    bool installed_ = false;
    bool inHandler_ = false;
    bool demoted_ = false;
    InstCount handlerBudget_ = 1'000'000;
    FaultHandler handler_;
    std::array<FaultHandler, sim::NumExcCodes> typedHandlers_{};
    Cycles syscallOverhead_ = 250;
    EnvStats stats_;

    // shim addresses
    Addr shimIdle_ = 0;
    Addr faultLw_ = 0, faultLwDone_ = 0;
    Addr faultSw_ = 0, faultSwDone_ = 0;
    Addr doSyscall_ = 0, doSyscallRet_ = 0;
    Addr tlbmpSite_ = 0, tlbmpDone_ = 0;
    Addr stub_ = 0;
    Addr stubRestore_ = 0;
    Addr stubEnd_ = 0;
    Addr trampoline_ = 0;
    Addr unixHandler_ = 0;

    // live upcall context (valid while inHandler_)
    sim::ExcCode curCode_ = sim::ExcCode::Int;
    Addr curFrameU_ = 0;   // fast software: frame user va
    Addr curSigctxU_ = 0;  // ultrix: sigcontext user va
    /** Mechanism the *current* delivery used: a mid-handler demotion
     *  (canary corruption) must not reroute reg/resume accesses of
     *  the fault already in flight. */
    DeliveryMode curDelivery_ = DeliveryMode::UltrixSignal;
};

} // namespace uexc::rt

#endif // UEXC_CORE_ENV_H
