/**
 * @file
 * Transport knobs and statistics of the migration wire.
 *
 * Split out of core/migrate.h so the chaos layer can describe planned
 * migration weather (core/chaos.h's MigrateOp) without pulling in the
 * whole migration engine — migrate.h includes chaos.h for the rig
 * helpers, so the dependency between the two has to stay one-way.
 */

#ifndef UEXC_CORE_TRANSPORT_H
#define UEXC_CORE_TRANSPORT_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace uexc::rt::migrate {

/** Seeded-deterministic lossy transport knobs (the DSM
 *  unreliable-network model, applied to image chunks). */
struct TransportConfig
{
    std::uint64_t seed = 1;
    std::size_t chunkBytes = 4096;
    unsigned lossPercent = 0;    ///< chunk lost in flight
    unsigned corruptPercent = 0; ///< one bit of the frame flipped
    unsigned dupPercent = 0;     ///< chunk delivered twice
    unsigned delayPercent = 0;   ///< extra-delay chance
    Cycles latencyCycles = 25000;  ///< per-frame one-way latency
    Cycles delayCycles = 5000;     ///< extra latency when delayed
    Cycles perWordCycles = 1;      ///< wire time per 32-bit word
    Cycles timeoutCycles = 50000;  ///< initial retransmit timeout
    /** Ceiling for the doubling retransmit timeout (same discipline
     *  as DsmCluster::Config::timeoutCapCycles). */
    Cycles timeoutCapCycles = 8 * 50000;
    unsigned maxRetries = 16;      ///< per chunk, then Partition
};

/** Transfer-side statistics (host measurement + simulated cycles). */
struct TransportStats
{
    std::uint64_t chunksTotal = 0;
    std::uint64_t chunksDelivered = 0;
    std::uint64_t framesSent = 0;     ///< incl. retransmits and dups
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t lostInFlight = 0;
    std::uint64_t corruptDropped = 0; ///< chunk-CRC rejections
    std::uint64_t duplicatesSuppressed = 0;
    /** Largest single timeout charged; never exceeds the cap. */
    Cycles maxTimeoutCharged = 0;
    /** Simulated cycles the transfer cost (latency + wire + waits). */
    Cycles cyclesCharged = 0;
    /** retryHistogram[i] = chunks that needed exactly i retries;
     *  the last bucket saturates. */
    std::vector<std::uint64_t> retryHistogram =
        std::vector<std::uint64_t>(9, 0);
};

} // namespace uexc::rt::migrate

#endif // UEXC_CORE_TRANSPORT_H
