#include "core/stubs.h"

#include "sim/isa.h"
#include "sim/pseudo.h"

namespace uexc::rt {

using namespace sim;
using namespace os;

namespace {

/** The 19 registers the UltrixEquivalent policy spills. */
constexpr unsigned kSpillRegs[] = {
    V0, V1, A0, A1, A2, A3, T6, T7, T8, T9,
    S0, S1, S2, S3, S4, S5, S6, S7, RA,
};
constexpr unsigned kNumSpillRegs =
    sizeof(kSpillRegs) / sizeof(kSpillRegs[0]);
static_assert(kNumSpillRegs == 19, "spill area holds 19 words");

} // namespace

void
emitFastStub(Assembler &a, const std::string &name, SavePolicy policy,
             const std::function<void(Assembler &)> &emit_body)
{
    a.label(name);
    if (policy == SavePolicy::UltrixEquivalent) {
        for (unsigned i = 0; i < kNumSpillRegs; i++) {
            a.sw(kSpillRegs[i],
                 static_cast<SWord>(uframe::Spill + 4 * i), T3);
        }
    }

    emit_body(a);

    if (policy == SavePolicy::UltrixEquivalent) {
        for (unsigned i = 0; i < kNumSpillRegs; i++) {
            a.lw(kSpillRegs[i],
                 static_cast<SWord>(uframe::Spill + 4 * i), T3);
        }
    }

    // restore the kernel-saved scratch set and resume. k0 carries the
    // resume address: it is dead in user code by ABI, which is what
    // makes a sigreturn-free resume possible (file comment). From the
    // k0 load to the jr retiring, k0 is live across user
    // instructions — an asynchronous exception here would let the
    // k0/k1-only refill handler clobber the resume target, so the
    // [__restore, __end) window is registered with the fault injector
    // as a no-injection window (a real machine gets the same effect
    // from exception-return atomicity).
    a.label(name + "__restore");
    a.lw(K0, static_cast<SWord>(uframe::Epc), T3);
    a.lw(AT, static_cast<SWord>(uframe::At), T3);
    a.lw(T0, static_cast<SWord>(uframe::T0), T3);
    a.lw(T1, static_cast<SWord>(uframe::T1), T3);
    a.lw(T2, static_cast<SWord>(uframe::T2), T3);
    a.lw(T4, static_cast<SWord>(uframe::T4), T3);
    a.lw(T5, static_cast<SWord>(uframe::T5), T3);
    a.lw(T3, static_cast<SWord>(uframe::T3), T3);   // last: frees base
    a.jr(K0);
    a.nop();
    a.label(name + "__end");
}

void
emitUserVectorStub(Assembler &a, const std::string &name,
                   const std::function<void(Assembler &)> &emit_body)
{
    a.label(name);
    // The hardware scheme needs no memory spill for scratch: the six
    // user exception scratch registers hold whatever the handler
    // needs saved (Tera's design, section 2.1). Stash the registers
    // the body may clobber.
    a.mtux(AT, UxReg::Scratch0);
    a.mtux(T0, UxReg::Scratch1);
    a.mtux(T1, UxReg::Scratch2);
    a.mtux(T2, UxReg::Scratch3);
    a.mtux(T3, UxReg::Scratch4);
    a.mtux(RA, UxReg::Scratch5);

    emit_body(a);

    a.mfux(AT, UxReg::Scratch0);
    a.mfux(T0, UxReg::Scratch1);
    a.mfux(T1, UxReg::Scratch2);
    a.mfux(T2, UxReg::Scratch3);
    a.mfux(T3, UxReg::Scratch4);
    a.mfux(RA, UxReg::Scratch5);
    a.xret();
    a.label(name + "__end");
}

void
emitTrampoline(Assembler &a, const std::string &name)
{
    a.label(name);
    a.addiu(SP, SP, -24);
    a.sw(A2, 16, SP);           // keep &sigcontext across the call
    a.jalr(RA, T9);
    a.nop();
    a.lw(A0, 16, SP);
    a.addiu(SP, SP, 24);
    emitSyscall(a, os::sys::Sigreturn);
    // sigreturn does not return; trap hard if it ever does
    a.break_(0x5a);
    a.nop();
}

void
emitSyscall(Assembler &a, Word num)
{
    pseudo::emitSyscall(a, num);
}

int
spillSlot(unsigned reg)
{
    for (unsigned i = 0; i < kNumSpillRegs; i++) {
        if (kSpillRegs[i] == reg)
            return static_cast<int>(i);
    }
    return -1;
}

} // namespace uexc::rt
