/**
 * @file
 * Guest programs for the multi-hart exception-delivery scaling study
 * (bench_multihart, tests/test_multihart.cc).
 *
 * The experiment reproduces the paper's Tera scalability argument in
 * miniature: N harts each sit in a tight user-mode loop taking one
 * breakpoint exception per iteration. Under *kernel-mediated*
 * delivery every exception funnels through the shared general vector
 * — whose handler spills into a per-hart save area but still
 * serializes on the shared kernel-stack lock — so aggregate
 * throughput flattens as harts are added. Under *user-vectored*
 * delivery (COP3) each exception is handled entirely in per-hart
 * state and throughput scales linearly.
 *
 * Both modes run the same user worker loop; only the delivery
 * mechanism (Status.UV plus the hart's UxReg Target) differs, so the
 * comparison is apples to apples.
 */

#ifndef UEXC_CORE_MULTIHART_H
#define UEXC_CORE_MULTIHART_H

#include "analysis/lint.h"
#include "os/guestimage.h"
#include "sim/assembler.h"

namespace uexc::rt::multihart {

/** Largest hart count the study sweeps (and the worker exports). */
constexpr unsigned kMaxHarts = 8;

/**
 * Build the mini-kernel image: the refill vector slot (a dead spin —
 * the study runs on wired mappings, so a refill firing is a bug the
 * hang makes obvious), the general-vector exception counter, and one
 * 64-byte save/counter slot per hart ("mh_save"). The handler finds
 * its hart's slot via PrId[31:24] — no shared writable state — and
 * returns with EPC+4 (skipping the faulting break).
 */
sim::Program buildKernelImage(unsigned num_harts);

/**
 * Build the user worker: one entry label per hart
 * ("mh_hart<i>_entry"), all converging on a break/count loop that
 * takes one Bp exception per iteration (the iteration count
 * accumulates in s0), plus the minimal COP3 handler "mh_uv_handler"
 * (k0-only: bump UxReg Epc past the break, xret).
 */
sim::Program buildWorkerProgram(unsigned num_harts);

/** The mini-kernel as a GuestImage (lint config attached). */
os::GuestImage buildKernelGuestImage(unsigned num_harts);

/** The worker as a GuestImage: entry at hart 0's entry label, lint
 *  config attached. Per-hart entries stay symbol lookups. */
os::GuestImage buildWorkerImage(unsigned num_harts);

/** Analyzer config for the mini-kernel image above. */
analysis::LintConfig kernelLintConfig(const sim::Program &prog,
                                      unsigned num_harts);

/** Analyzer config for the worker, rooted at every per-hart entry. */
analysis::LintConfig workerLintConfig(const sim::Program &prog,
                                      unsigned num_harts);

} // namespace uexc::rt::multihart

#endif // UEXC_CORE_MULTIHART_H
