/**
 * @file
 * Umbrella header for the uexc library: everything a downstream user
 * needs to build on fast user-level exception handling.
 *
 * The layering, bottom to top:
 *
 *   sim::Machine        the R3000-like machine (CPU, TLB, caches)
 *   os::Kernel          the simulated operating system (boot() it)
 *   rt::UserEnv         the exception runtime facade: delivery modes,
 *                       fault handlers, protection and subpage
 *                       control, user-level TLB modification
 *   apps::*             exception-driven runtime systems built on the
 *                       facade: garbage collectors, a persistent
 *                       object store, lazy structures, watchpoints,
 *                       distributed shared memory
 *
 * Minimal program:
 * @code
 *   sim::Machine machine(rt::micro::paperMachineConfig());
 *   os::Kernel kernel(machine);
 *   kernel.boot();
 *   rt::UserEnv env(kernel, rt::DeliveryMode::FastSoftware);
 *   env.install(0xffff);
 *   env.setHandler([](rt::Fault &f) { ... });
 * @endcode
 */

#ifndef UEXC_UEXC_H
#define UEXC_UEXC_H

#include "common/bits.h"
#include "common/logging.h"
#include "common/types.h"

#include "sim/assembler.h"
#include "sim/machine.h"
#include "sim/profile.h"

#include "os/kernel.h"
#include "os/pathmodel.h"

#include "core/env.h"
#include "core/microbench.h"
#include "core/stubs.h"

#include "apps/analysis/breakeven.h"
#include "apps/dsm/dsm.h"
#include "apps/gc/gc.h"
#include "apps/gc/incremental.h"
#include "apps/gc/workloads.h"
#include "apps/lazy/lazy.h"
#include "apps/swizzle/swizzler.h"
#include "apps/txn/txn.h"
#include "apps/watch/watch.h"

#endif // UEXC_UEXC_H
