/**
 * @file
 * uexc-snap: save, inspect, and replay machine snapshots.
 *
 *   $ uexc-snap save out.uxsn [--seed S] [--op N]
 *       boot the chaos rig, optionally plan a seeded injection
 *       campaign, run to op N (default: end of the chaos phase) and
 *       write the rig's snapshot.
 *   $ uexc-snap verify file.uxsn
 *       validate header, version, section CRCs, total CRC; print the
 *       section table. Exit 1 on any rejection.
 *   $ uexc-snap diff a.uxsn b.uxsn
 *       section-by-section comparison of two validated images.
 *   $ uexc-snap restore file.uxsn
 *       restore into a freshly built rig and run the campaign to the
 *       end; report convergence against the fault-free reference
 *       (the snapshot itself carries any not-yet-fired injection
 *       events — no seed needed to resume a campaign).
 *   $ uexc-snap replay repro.uxsn
 *       replay a minimal repro window emitted by the divergence
 *       finder (tests/CI artifacts); exits 0 when the recorded
 *       failure reproduces.
 *
 * Exit status taxonomy (stable; scripts branch on it):
 *   0  success / images identical / converged
 *   1  content difference (diff) or divergence (restore/replay)
 *   2  format error: the file failed snapshot validation (bad magic,
 *      version skew, section or total CRC mismatch, truncation)
 *   3  other runtime error (I/O, unexpected exception)
 *   64 usage error
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/guesterror.h"
#include "common/logging.h"
#include "core/chaos.h"
#include "sim/snapshot.h"

using namespace uexc;
using rt::chaos::Rig;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: uexc-snap save <path> [--seed S] [--op N]\n"
                 "       uexc-snap verify <path>\n"
                 "       uexc-snap diff <a> <b>\n"
                 "       uexc-snap restore <path>\n"
                 "       uexc-snap replay <repro-path>\n");
    return 64;
}

/** FNV-1a over the collected words, as a compact convergence stamp. */
std::uint64_t
wordsHash(const std::vector<Word> &words)
{
    std::uint64_t h = 1469598103934665603ull;
    for (Word w : words) {
        h ^= w;
        h *= 1099511628211ull;
    }
    return h;
}

int
cmdSave(const std::string &path, std::uint64_t seed, unsigned op)
{
    rt::chaos::Reference ref = rt::chaos::makeReference();
    sim::FaultInjector inj;
    Rig rig(&inj);
    if (seed != 0) {
        bool may = false;
        for (const sim::FaultEvent &e :
             rt::chaos::planEvents(seed, ref.window, rig, &may))
            inj.addEvent(e);
        std::printf("seed 0x%llx: %zu events planned%s\n",
                    static_cast<unsigned long long>(seed),
                    inj.pendingCount(),
                    may ? " (may diagnose)" : "");
    }
    try {
        rig.runTo(op);
    } catch (const GuestError &e) {
        std::fprintf(stderr,
                     "uexc-snap: campaign failed at op %u before the "
                     "requested snapshot op: %s\n",
                     rig.cursor(), e.what());
        return 1;
    }
    sim::writeSnapshotFile(path, rig.checkpoint());
    std::printf("saved %s at op %u/%u (instret %llu, %zu events "
                "pending)\n",
                path.c_str(), rig.cursor(), rt::chaos::kTotalOps,
                static_cast<unsigned long long>(
                    rig.env().cpu().instret()),
                inj.pendingCount());
    return 0;
}

int
cmdVerify(const std::string &path)
{
    std::vector<Byte> bytes = sim::readSnapshotFile(path);
    sim::SnapshotImage image(bytes);
    std::printf("%s: %zu bytes, %zu sections, format v%u — OK\n",
                path.c_str(), bytes.size(), image.sections().size(),
                sim::kSnapshotVersion);
    std::printf("  %-8s %12s\n", "tag", "bytes");
    for (const sim::SnapshotSection &s : image.sections())
        std::printf("  %-8s %12zu\n",
                    sim::snapshotTagName(s.tag).c_str(), s.length);
    return 0;
}

int
cmdDiff(const std::string &path_a, const std::string &path_b)
{
    std::vector<Byte> bytes_a = sim::readSnapshotFile(path_a);
    std::vector<Byte> bytes_b = sim::readSnapshotFile(path_b);
    sim::SnapshotImage a(bytes_a);
    sim::SnapshotImage b(bytes_b);

    std::vector<sim::SnapshotSectionDiff> diffs =
        sim::diffSnapshotImages(a, b);
    for (const sim::SnapshotSectionDiff &d : diffs) {
        if (!d.inA || !d.inB) {
            std::printf("  %-8s only in %s\n",
                        sim::snapshotTagName(d.tag).c_str(),
                        (d.inA ? path_a : path_b).c_str());
        } else {
            std::printf("  %s\n", sim::snapshotDiffLine(d).c_str());
        }
    }
    if (diffs.empty()) {
        std::printf("  images are identical (%zu sections)\n",
                    a.sections().size());
        return 0;
    }
    std::printf("  %zu section%s differ\n", diffs.size(),
                diffs.size() == 1 ? "" : "s");
    return 1;
}

int
cmdRestore(const std::string &path)
{
    rt::chaos::Reference ref = rt::chaos::makeReference();
    // `save` always attaches an injector, so the image always carries
    // a FINJ section; the twin must register its consumer.
    sim::FaultInjector inj;
    Rig rig(&inj);
    rig.restore(sim::readSnapshotFile(path));
    std::printf("restored %s at op %u/%u\n", path.c_str(),
                rig.cursor(), rt::chaos::kTotalOps);
    try {
        rig.run();
    } catch (const GuestError &e) {
        std::printf("campaign diagnosed at op %u: %s\n", rig.cursor(),
                    e.what());
        return 0;
    }
    bool converged = rig.words() == ref.words;
    std::printf("campaign finished: words hash %016llx, %s\n",
                static_cast<unsigned long long>(wordsHash(rig.words())),
                converged ? "converged to the fault-free reference"
                          : "DIVERGED from the fault-free reference");
    return converged ? 0 : 1;
}

int
cmdReplay(const std::string &path)
{
    rt::chaos::ReproWindow repro = rt::chaos::readReproFile(path);
    std::printf("repro: seed 0x%llx, ops [%u, %u) of %u, recorded "
                "failure:\n  %s\n",
                static_cast<unsigned long long>(repro.seed),
                repro.startOp, repro.endOp, repro.campaignOps,
                repro.failure.c_str());
    rt::chaos::Reference ref = rt::chaos::makeReference(repro.config);
    rt::chaos::CampaignOutcome out =
        rt::chaos::replayRepro(repro, ref.words);
    if (rt::chaos::outcomeFailed(out)) {
        bool same = out.what == repro.failure;
        std::printf("replayed failure at op %u:\n  %s\n", out.failOp,
                    out.what.c_str());
        std::printf(same ? "matches the recorded failure\n"
                         : "DOES NOT match the recorded failure\n");
        return same ? 0 : 1;
    }
    std::printf("window replayed clean — failure did not reproduce\n");
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    setLoggingEnabled(false);

    std::vector<std::string> args;
    std::uint64_t seed = 0;
    unsigned op = rt::chaos::kChaosOps;
    for (int i = 2; i < argc; i++) {
        if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--op") == 0 && i + 1 < argc) {
            op = static_cast<unsigned>(std::atoi(argv[++i]));
        } else {
            args.push_back(argv[i]);
        }
    }

    try {
        if (cmd == "save" && args.size() == 1)
            return cmdSave(args[0], seed, op);
        if (cmd == "verify" && args.size() == 1)
            return cmdVerify(args[0]);
        if (cmd == "diff" && args.size() == 2)
            return cmdDiff(args[0], args[1]);
        if (cmd == "restore" && args.size() == 1)
            return cmdRestore(args[0]);
        if (cmd == "replay" && args.size() == 1)
            return cmdReplay(args[0]);
    } catch (const sim::SnapshotError &e) {
        // format error: rejected before any state was touched
        std::fprintf(stderr, "uexc-snap: rejected: %s\n", e.what());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "uexc-snap: %s\n", e.what());
        return 3;
    }
    return usage();
}
