#include <cstdio>
#include "core/microbench.h"
using namespace uexc;
using namespace uexc::rt::micro;
int main() {
    auto cfg = paperMachineConfig();
    struct { const char* name; Scenario s; } cases[] = {
        {"FastSimple", Scenario::FastSimple},
        {"FastSpecialized", Scenario::FastSpecialized},
        {"FastWriteProt", Scenario::FastWriteProt},
        {"FastSubpage", Scenario::FastSubpage},
        {"UltrixSimple", Scenario::UltrixSimple},
        {"UltrixWriteProt", Scenario::UltrixWriteProt},
        {"HwVectorSimple", Scenario::HwVectorSimple},
        {"NullSyscall", Scenario::NullSyscall},
    };
    for (auto& c : cases) {
        auto t = measure(c.s, cfg);
        std::printf("%-18s deliver %6.1f us (%5llu cyc)  return %5.1f us  rt %6.1f us  kinsts %llu\n",
            c.name, t.deliverUs, (unsigned long long)t.deliverCycles,
            t.returnUs, t.roundTripUs, (unsigned long long)t.kernelInsts);
    }
    auto phases = profileFastPath(cfg);
    for (auto& p : phases)
        std::printf("phase %-22s %llu insts\n", p.name.c_str(), (unsigned long long)p.instructions);
    return 0;
}
