/**
 * @file
 * uexc-fleet: the fleet soak harness CLI.
 *
 *   uexc-fleet [--hosts N] [--guests N] [--dsm N] [--migrations N]
 *              [--ops N] [--seed S] [--cooldown N] [--barrier]
 *              [--repro-dir DIR] [--json]
 *
 * Runs N simulated hosts x M guests (chaos rigs under fault
 * injection, plus DSM pairs on an unreliable network) with seeded
 * live migrations, then prints the ledger. Environment overrides for
 * CI time-bounding:
 *
 *   UEXC_SOAK_OPS    ops per guest per tick (same as --ops)
 *   UEXC_REPRO_DIR   where contract violations dump .uxsn repros
 *
 * Exit status: 0 healthy soak (zero host failures, every failed
 * migration diagnosed into the MigrateError taxonomy), 1 soak
 * contract violated, 2 usage error. --json additionally writes
 * BENCH_fleet.json with migration downtime p50/p99.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/fleet/fleet.h"
#include "bench/bench_util.h"

using namespace uexc;
using apps::fleet::Fleet;
using apps::fleet::FleetConfig;
using apps::fleet::FleetStats;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: uexc-fleet [--hosts N] [--guests N] [--dsm N]\n"
        "                  [--migrations N] [--ops N] [--seed S]\n"
        "                  [--cooldown N] [--barrier]\n"
        "                  [--repro-dir DIR] [--json]\n");
    return 2;
}

bool
parseUnsigned(const char *s, unsigned *out)
{
    char *end = nullptr;
    unsigned long v = std::strtoul(s, &end, 0);
    if (end == s || *end != '\0')
        return false;
    *out = static_cast<unsigned>(v);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    FleetConfig config;

    if (const char *env = std::getenv("UEXC_SOAK_OPS")) {
        if (!parseUnsigned(env, &config.opsPerTick)) {
            std::fprintf(stderr, "uexc-fleet: bad UEXC_SOAK_OPS\n");
            return 2;
        }
    }
    if (const char *env = std::getenv("UEXC_REPRO_DIR"))
        config.reproDir = env;

    bool json = false;
    for (int i = 1; i < argc; i++) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v = nullptr;
        unsigned seed32 = 0;
        if (std::strcmp(arg, "--hosts") == 0) {
            if (!(v = value()) || !parseUnsigned(v, &config.hosts))
                return usage();
        } else if (std::strcmp(arg, "--guests") == 0) {
            if (!(v = value()) || !parseUnsigned(v, &config.guests))
                return usage();
        } else if (std::strcmp(arg, "--dsm") == 0) {
            if (!(v = value()) ||
                !parseUnsigned(v, &config.dsmGuests)) {
                return usage();
            }
        } else if (std::strcmp(arg, "--migrations") == 0) {
            if (!(v = value()) ||
                !parseUnsigned(v, &config.targetMigrations)) {
                return usage();
            }
        } else if (std::strcmp(arg, "--ops") == 0) {
            if (!(v = value()) ||
                !parseUnsigned(v, &config.opsPerTick)) {
                return usage();
            }
        } else if (std::strcmp(arg, "--cooldown") == 0) {
            if (!(v = value()) ||
                !parseUnsigned(v, &config.cooldownTicks)) {
                return usage();
            }
        } else if (std::strcmp(arg, "--seed") == 0) {
            if (!(v = value()) || !parseUnsigned(v, &seed32))
                return usage();
            config.seed = seed32;
        } else if (std::strcmp(arg, "--barrier") == 0) {
            config.scheduler = sim::SchedulerMode::Barrier;
        } else if (std::strcmp(arg, "--repro-dir") == 0) {
            if (!(v = value()))
                return usage();
            config.reproDir = v;
        } else if (std::strcmp(arg, "--json") == 0) {
            json = true;
        } else {
            return usage();
        }
    }
    if (config.hosts == 0 || config.guests == 0)
        return usage();

    std::printf("uexc-fleet: %u hosts, %u guests (%u dsm pairs), "
                "%u migrations, %u ops/tick, seed %llu\n",
                config.hosts, config.guests,
                std::min(config.dsmGuests, config.guests),
                config.targetMigrations, config.opsPerTick,
                static_cast<unsigned long long>(config.seed));

    Fleet fleet(config);
    const FleetStats &s = fleet.run();

    std::printf("\nsoak ledger\n-----------\n");
    std::printf("  ticks                 %llu\n",
                (unsigned long long)s.ticks);
    std::printf("  chaos ops / dsm ops   %llu / %llu\n",
                (unsigned long long)s.chaosOpsRun,
                (unsigned long long)s.dsmOpsRun);
    std::printf("  campaigns             %llu started, %llu "
                "converged, %llu diagnosed\n",
                (unsigned long long)s.campaignsStarted,
                (unsigned long long)s.campaignsConverged,
                (unsigned long long)s.campaignsDiagnosed);
    std::printf("  dsm reads verified    %llu\n",
                (unsigned long long)s.dsmReadsVerified);
    std::printf("  migrations            %llu attempted, %llu "
                "succeeded\n",
                (unsigned long long)s.migrationsAttempted,
                (unsigned long long)s.migrationsSucceeded);
    std::printf("    failed: partition=%llu image-rejected=%llu "
                "restore-refused=%llu (%llu deliberate "
                "partitions)\n",
                (unsigned long long)s.migrationsFailedByKind[0],
                (unsigned long long)s.migrationsFailedByKind[1],
                (unsigned long long)s.migrationsFailedByKind[2],
                (unsigned long long)s.partitionsInjected);
    std::printf("  downtime cycles       p50=%llu p99=%llu\n",
                (unsigned long long)s.downtimeP50(),
                (unsigned long long)s.downtimeP99());
    std::printf("  transport             %llu frames, %llu retries, "
                "%llu corrupt-dropped, %llu dups, max timeout "
                "%llu\n",
                (unsigned long long)s.framesSent,
                (unsigned long long)s.transportRetries,
                (unsigned long long)s.corruptDropped,
                (unsigned long long)s.duplicatesSuppressed,
                (unsigned long long)s.maxTimeoutCharged);
    std::printf("  host failures         %llu\n",
                (unsigned long long)s.hostFailures);
    for (const std::string &note : s.failureNotes)
        std::printf("    FAIL %s\n", note.c_str());
    for (const std::string &path : s.reprosWritten)
        std::printf("    repro %s\n", path.c_str());

    // Every failed migration must be diagnosed into exactly one
    // taxonomy bucket; an unaccounted failure is a harness bug.
    bool accounted = s.migrationsFailed() ==
                     s.migrationsAttempted - s.migrationsSucceeded;
    bool healthy = s.hostFailures == 0 && accounted;

    if (json) {
        bench::JsonResults results("fleet");
        results.config("hosts", double(config.hosts));
        results.config("guests", double(config.guests));
        results.config("dsm_guests",
                       double(std::min(config.dsmGuests,
                                       config.guests)));
        results.config("seed", double(config.seed));
        results.config("ops_per_tick", double(config.opsPerTick));
        results.metric("migrations attempted",
                       double(s.migrationsAttempted), "count");
        results.metric("migrations succeeded",
                       double(s.migrationsSucceeded), "count");
        results.metric("migrations failed (partition)",
                       double(s.migrationsFailedByKind[0]), "count");
        results.metric("migrations failed (image-rejected)",
                       double(s.migrationsFailedByKind[1]), "count");
        results.metric("migrations failed (restore-refused)",
                       double(s.migrationsFailedByKind[2]), "count");
        results.metric("migration downtime p50",
                       double(s.downtimeP50()), "cycles");
        results.metric("migration downtime p99",
                       double(s.downtimeP99()), "cycles");
        results.metric("campaigns converged",
                       double(s.campaignsConverged), "count");
        results.metric("campaigns diagnosed",
                       double(s.campaignsDiagnosed), "count");
        results.metric("dsm reads verified",
                       double(s.dsmReadsVerified), "count");
        results.metric("transport retries",
                       double(s.transportRetries), "count");
        results.metric("host failures", double(s.hostFailures),
                       "count");
    }

    if (!healthy) {
        std::fprintf(stderr,
                     "uexc-fleet: SOAK CONTRACT VIOLATED (%llu host "
                     "failures%s)\n",
                     (unsigned long long)s.hostFailures,
                     accounted ? "" : ", unaccounted migration "
                                      "failures");
        return 1;
    }
    std::printf("\nsoak healthy: zero host failures, every failed "
                "migration diagnosed\n");
    return 0;
}
