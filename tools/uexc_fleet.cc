/**
 * @file
 * uexc-fleet: the fleet soak harness CLI.
 *
 *   uexc-fleet [--hosts N] [--guests N] [--dsm N] [--migrations N]
 *              [--ops N] [--seed S] [--cooldown N] [--barrier]
 *              [--supervise] [--fail-every N] [--precopy N]
 *              [--seconds N] [--decision-log FILE]
 *              [--repro-dir DIR] [--json]
 *
 * Runs N simulated hosts x M guests (chaos rigs under fault
 * injection, plus DSM pairs on an unreliable network) with seeded
 * live migrations, then prints the ledger. --supervise turns on the
 * self-healing supervisor: seeded failure drills (host crashes,
 * wedges, guest crashes, torn checkpoints, mid-transfer source
 * crashes) with checkpoint-rollback / re-migration recovery, capped
 * exponential backoff, and quarantine. --precopy N migrates chaos
 * guests with N iterative pre-copy rounds instead of stop-and-copy.
 * Environment overrides for CI time-bounding:
 *
 *   UEXC_SOAK_OPS      ops per guest per tick (same as --ops)
 *   UEXC_SOAK_SECONDS  wall-clock bound on the soak (same as
 *                      --seconds): ticks keep running until the
 *                      budget is spent, then the soak drains and the
 *                      convergence sweep runs as usual
 *   UEXC_REPRO_DIR     where contract violations dump .uxsn repros
 *
 * Exit status: 0 healthy soak (zero host failures, every failed
 * migration diagnosed into the MigrateError taxonomy), 1 soak
 * contract violated, 2 usage error. --json additionally writes
 * BENCH_fleet.json with migration downtime and MTTR percentiles.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/fleet/fleet.h"
#include "bench/bench_util.h"

using namespace uexc;
using apps::fleet::Fleet;
using apps::fleet::FleetConfig;
using apps::fleet::FleetStats;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: uexc-fleet [--hosts N] [--guests N] [--dsm N]\n"
        "                  [--migrations N] [--ops N] [--seed S]\n"
        "                  [--cooldown N] [--barrier] [--supervise]\n"
        "                  [--fail-every N] [--precopy N]\n"
        "                  [--seconds N] [--decision-log FILE]\n"
        "                  [--repro-dir DIR] [--json]\n");
    return 2;
}

bool
parseUnsigned(const char *s, unsigned *out)
{
    char *end = nullptr;
    unsigned long v = std::strtoul(s, &end, 0);
    if (end == s || *end != '\0')
        return false;
    *out = static_cast<unsigned>(v);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    FleetConfig config;
    unsigned seconds = 0;
    std::string decisionLogPath;

    if (const char *env = std::getenv("UEXC_SOAK_OPS")) {
        if (!parseUnsigned(env, &config.opsPerTick)) {
            std::fprintf(stderr, "uexc-fleet: bad UEXC_SOAK_OPS\n");
            return 2;
        }
    }
    if (const char *env = std::getenv("UEXC_SOAK_SECONDS")) {
        if (!parseUnsigned(env, &seconds)) {
            std::fprintf(stderr,
                         "uexc-fleet: bad UEXC_SOAK_SECONDS\n");
            return 2;
        }
    }
    if (const char *env = std::getenv("UEXC_REPRO_DIR"))
        config.reproDir = env;

    bool json = false;
    for (int i = 1; i < argc; i++) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v = nullptr;
        unsigned seed32 = 0;
        if (std::strcmp(arg, "--hosts") == 0) {
            if (!(v = value()) || !parseUnsigned(v, &config.hosts))
                return usage();
        } else if (std::strcmp(arg, "--guests") == 0) {
            if (!(v = value()) || !parseUnsigned(v, &config.guests))
                return usage();
        } else if (std::strcmp(arg, "--dsm") == 0) {
            if (!(v = value()) ||
                !parseUnsigned(v, &config.dsmGuests)) {
                return usage();
            }
        } else if (std::strcmp(arg, "--migrations") == 0) {
            if (!(v = value()) ||
                !parseUnsigned(v, &config.targetMigrations)) {
                return usage();
            }
        } else if (std::strcmp(arg, "--ops") == 0) {
            if (!(v = value()) ||
                !parseUnsigned(v, &config.opsPerTick)) {
                return usage();
            }
        } else if (std::strcmp(arg, "--cooldown") == 0) {
            if (!(v = value()) ||
                !parseUnsigned(v, &config.cooldownTicks)) {
                return usage();
            }
        } else if (std::strcmp(arg, "--seed") == 0) {
            if (!(v = value()) || !parseUnsigned(v, &seed32))
                return usage();
            config.seed = seed32;
        } else if (std::strcmp(arg, "--barrier") == 0) {
            config.scheduler = sim::SchedulerMode::Barrier;
        } else if (std::strcmp(arg, "--supervise") == 0) {
            config.supervise = true;
        } else if (std::strcmp(arg, "--fail-every") == 0) {
            if (!(v = value()) ||
                !parseUnsigned(v, &config.failEvery)) {
                return usage();
            }
        } else if (std::strcmp(arg, "--precopy") == 0) {
            if (!(v = value()) ||
                !parseUnsigned(v, &config.precopyRounds)) {
                return usage();
            }
        } else if (std::strcmp(arg, "--seconds") == 0) {
            if (!(v = value()) || !parseUnsigned(v, &seconds))
                return usage();
        } else if (std::strcmp(arg, "--decision-log") == 0) {
            if (!(v = value()))
                return usage();
            decisionLogPath = v;
        } else if (std::strcmp(arg, "--repro-dir") == 0) {
            if (!(v = value()))
                return usage();
            config.reproDir = v;
        } else if (std::strcmp(arg, "--json") == 0) {
            json = true;
        } else {
            return usage();
        }
    }
    if (config.hosts == 0 || config.guests == 0)
        return usage();

    // Wall-clock scheduling: the bound lives entirely in this hook;
    // guest semantics never see the host clock, so the ledger depends
    // on it only through how many ticks fit in the budget.
    auto start = std::chrono::steady_clock::now();
    if (seconds != 0) {
        config.maxTicks = ~std::uint64_t(0) >> 1;
        auto deadline = start + std::chrono::seconds(seconds);
        config.stopRequested = [deadline]() {
            return std::chrono::steady_clock::now() >= deadline;
        };
    }

    std::printf("uexc-fleet: %u hosts, %u guests (%u dsm pairs), "
                "%u migrations, %u ops/tick, seed %llu%s%s\n",
                config.hosts, config.guests,
                std::min(config.dsmGuests, config.guests),
                config.targetMigrations, config.opsPerTick,
                static_cast<unsigned long long>(config.seed),
                config.supervise ? ", supervised" : "",
                config.precopyRounds != 0 ? ", pre-copy" : "");
    if (seconds != 0)
        std::printf("uexc-fleet: wall-clock bound %u s\n", seconds);

    Fleet fleet(config);
    const FleetStats &s = fleet.run();
    double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    double opsPerSecond =
        elapsed > 0.0 ? double(s.chaosOpsRun + s.dsmOpsRun) / elapsed
                      : 0.0;

    std::printf("\nsoak ledger\n-----------\n");
    std::printf("  ticks                 %llu%s\n",
                (unsigned long long)s.ticks,
                s.stoppedEarly ? " (wall-clock bound reached)" : "");
    std::printf("  elapsed               %.2f s (%.0f ops/s)\n",
                elapsed, opsPerSecond);
    std::printf("  chaos ops / dsm ops   %llu / %llu\n",
                (unsigned long long)s.chaosOpsRun,
                (unsigned long long)s.dsmOpsRun);
    std::printf("  campaigns             %llu started, %llu "
                "converged, %llu diagnosed\n",
                (unsigned long long)s.campaignsStarted,
                (unsigned long long)s.campaignsConverged,
                (unsigned long long)s.campaignsDiagnosed);
    std::printf("  dsm reads verified    %llu\n",
                (unsigned long long)s.dsmReadsVerified);
    std::printf("  migrations            %llu attempted, %llu "
                "succeeded\n",
                (unsigned long long)s.migrationsAttempted,
                (unsigned long long)s.migrationsSucceeded);
    std::printf("    failed: partition=%llu image-rejected=%llu "
                "restore-refused=%llu (%llu deliberate "
                "partitions)\n",
                (unsigned long long)s.migrationsFailedByKind[0],
                (unsigned long long)s.migrationsFailedByKind[1],
                (unsigned long long)s.migrationsFailedByKind[2],
                (unsigned long long)s.partitionsInjected);
    for (unsigned k = 0; k < 3; k++) {
        if (!s.lastMigrateErrorDetail[k].empty()) {
            std::printf("    last %s: %s\n",
                        rt::migrate::migrateErrorKindName(
                            rt::migrate::MigrateErrorKind(k)),
                        s.lastMigrateErrorDetail[k].c_str());
        }
    }
    std::printf("  downtime cycles       p50=%llu p99=%llu\n",
                (unsigned long long)s.downtimeP50(),
                (unsigned long long)s.downtimeP99());
    if (config.precopyRounds != 0) {
        std::printf("  pre-copy              %llu migrations, %llu "
                    "converged, %llu pages shipped live, %llu "
                    "residual\n",
                    (unsigned long long)s.precopyMigrations,
                    (unsigned long long)s.precopyConverged,
                    (unsigned long long)s.precopyPagesSent,
                    (unsigned long long)s.precopyResidualPages);
        std::printf("    bytes: %llu live, %llu while paused\n",
                    (unsigned long long)s.precopyBytesMoved,
                    (unsigned long long)s.precopyStopCopyBytes);
    }
    std::printf("  transport             %llu frames, %llu retries, "
                "%llu corrupt-dropped, %llu dups, max timeout "
                "%llu\n",
                (unsigned long long)s.framesSent,
                (unsigned long long)s.transportRetries,
                (unsigned long long)s.corruptDropped,
                (unsigned long long)s.duplicatesSuppressed,
                (unsigned long long)s.maxTimeoutCharged);
    if (const rt::supervise::Supervisor *sup = fleet.supervisor()) {
        const rt::supervise::SupervisorStats &ss = sup->stats();
        std::printf("  supervision           %llu heartbeats, drills: "
                    "%llu host-crash, %llu wedge, %llu guest-crash, "
                    "%llu torn-image, %llu source-crash\n",
                    (unsigned long long)ss.heartbeats,
                    (unsigned long long)s.drillsHostCrash,
                    (unsigned long long)s.drillsWedge,
                    (unsigned long long)s.drillsGuestCrash,
                    (unsigned long long)s.drillsCorruptImage,
                    (unsigned long long)s.drillsSourceCrash);
        std::printf("    recoveries: %llu restart, %llu remigrate; "
                    "%llu torn images rejected, %llu quarantined, "
                    "%llu drain ticks\n",
                    (unsigned long long)s.recoveriesRestart,
                    (unsigned long long)s.recoveriesRemigrate,
                    (unsigned long long)s.corruptImagesRejected,
                    (unsigned long long)s.guestsQuarantined,
                    (unsigned long long)s.drainTicks);
        std::printf("    MTTR: p50=%llu p99=%llu ticks "
                    "(p50=%llu p99=%llu cycles), %llu recoveries\n",
                    (unsigned long long)ss.mttrTicksPercentile(50),
                    (unsigned long long)ss.mttrTicksPercentile(99),
                    (unsigned long long)ss.mttrCyclesPercentile(50),
                    (unsigned long long)ss.mttrCyclesPercentile(99),
                    (unsigned long long)ss.recoveries);
        if (!decisionLogPath.empty()) {
            if (std::FILE *f =
                    std::fopen(decisionLogPath.c_str(), "w")) {
                std::string text = sup->decisionLogText();
                std::fwrite(text.data(), 1, text.size(), f);
                std::fclose(f);
                std::printf("    decision log: %s (%zu decisions)\n",
                            decisionLogPath.c_str(),
                            sup->decisionLog().size());
            } else {
                std::fprintf(stderr,
                             "uexc-fleet: cannot write %s\n",
                             decisionLogPath.c_str());
            }
        }
    }
    std::printf("  host failures         %llu\n",
                (unsigned long long)s.hostFailures);
    for (const std::string &note : s.failureNotes)
        std::printf("    FAIL %s\n", note.c_str());
    for (const std::string &path : s.reprosWritten)
        std::printf("    repro %s\n", path.c_str());

    // Every failed migration must be diagnosed into exactly one
    // taxonomy bucket; an unaccounted failure is a harness bug.
    bool accounted = s.migrationsFailed() ==
                     s.migrationsAttempted - s.migrationsSucceeded;
    bool healthy = s.hostFailures == 0 && accounted;

    if (json) {
        bench::JsonResults results("fleet");
        results.config("hosts", double(config.hosts));
        results.config("guests", double(config.guests));
        results.config("dsm_guests",
                       double(std::min(config.dsmGuests,
                                       config.guests)));
        results.config("seed", double(config.seed));
        results.config("ops_per_tick", double(config.opsPerTick));
        results.config("supervise", config.supervise ? 1.0 : 0.0);
        results.config("precopy_rounds",
                       double(config.precopyRounds));
        results.metric("migrations attempted",
                       double(s.migrationsAttempted), "count");
        results.metric("migrations succeeded",
                       double(s.migrationsSucceeded), "count");
        results.metric("migrations failed (partition)",
                       double(s.migrationsFailedByKind[0]), "count");
        results.metric("migrations failed (image-rejected)",
                       double(s.migrationsFailedByKind[1]), "count");
        results.metric("migrations failed (restore-refused)",
                       double(s.migrationsFailedByKind[2]), "count");
        results.metric("migration downtime p50",
                       double(s.downtimeP50()), "cycles");
        results.metric("migration downtime p99",
                       double(s.downtimeP99()), "cycles");
        results.metric("campaigns converged",
                       double(s.campaignsConverged), "count");
        results.metric("campaigns diagnosed",
                       double(s.campaignsDiagnosed), "count");
        results.metric("dsm reads verified",
                       double(s.dsmReadsVerified), "count");
        results.metric("transport retries",
                       double(s.transportRetries), "count");
        results.metric("host failures", double(s.hostFailures),
                       "count");
        results.metric("soak elapsed", elapsed, "seconds");
        results.metric("soak throughput", opsPerSecond, "ops/s");
        if (const rt::supervise::Supervisor *sup =
                fleet.supervisor()) {
            const rt::supervise::SupervisorStats &ss = sup->stats();
            results.metric("mttr p50",
                           double(ss.mttrTicksPercentile(50)),
                           "ticks");
            results.metric("mttr p99",
                           double(ss.mttrTicksPercentile(99)),
                           "ticks");
            results.metric("mttr p50 (sim)",
                           double(ss.mttrCyclesPercentile(50)),
                           "cycles");
            results.metric("mttr p99 (sim)",
                           double(ss.mttrCyclesPercentile(99)),
                           "cycles");
            results.metric("recoveries", double(ss.recoveries),
                           "count");
            results.metric("restarts", double(s.recoveriesRestart),
                           "count");
            results.metric("remigrations",
                           double(s.recoveriesRemigrate), "count");
            results.metric("torn images rejected",
                           double(s.corruptImagesRejected), "count");
            results.metric("guests quarantined",
                           double(s.guestsQuarantined), "count");
        }
        if (config.precopyRounds != 0) {
            results.metric("precopy migrations",
                           double(s.precopyMigrations), "count");
            results.metric("precopy converged",
                           double(s.precopyConverged), "count");
            results.metric("precopy bytes live",
                           double(s.precopyBytesMoved), "bytes");
            results.metric("precopy bytes paused",
                           double(s.precopyStopCopyBytes), "bytes");
        }
    }

    if (!healthy) {
        std::fprintf(stderr,
                     "uexc-fleet: SOAK CONTRACT VIOLATED (%llu host "
                     "failures%s)\n",
                     (unsigned long long)s.hostFailures,
                     accounted ? "" : ", unaccounted migration "
                                      "failures");
        return 1;
    }
    std::printf("\nsoak healthy: zero host failures, every failed "
                "migration diagnosed\n");
    return 0;
}
