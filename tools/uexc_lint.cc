/**
 * @file
 * uexc-lint: the guest-code static analyzer, as a command-line tool.
 *
 * Builds the requested guest programs exactly as the runtime would
 * (same emitters, no machine needed) and runs the CFG/dataflow check
 * engine over them. Used interactively and as the CI guest-lint gate.
 *
 *   $ ./tools/uexc_lint kernel          # kernel image + fast path
 *   $ ./tools/uexc_lint shim            # every UserEnv shim variant
 *   $ ./tools/uexc_lint micro           # every microbench scenario
 *   $ ./tools/uexc_lint micro fast-simple
 *   $ ./tools/uexc_lint multihart       # multi-hart study programs
 *   $ ./tools/uexc_lint user            # checked-in userland programs
 *   $ ./tools/uexc_lint user gcbar
 *   $ ./tools/uexc_lint elf user/fixtures/gcbar.elf
 *                                       # lint a compiled binary
 *   $ ./tools/uexc_lint --all           # everything
 *   $ ./tools/uexc_lint --strict --all  # warnings also fail
 *   $ ./tools/uexc_lint --wcet --budget 200 --all
 *                                       # bound handler latencies
 *   $ ./tools/uexc_lint --multihart 4 micro
 *                                       # shared-page analysis, 4 harts
 *   $ ./tools/uexc_lint --json --all    # machine-readable findings
 *
 * --wcet runs the worst-case-latency analyzer over every handler
 * region; --budget N additionally fails any handler whose bound
 * exceeds N cycles (the kernel fast path always checks against its
 * built-in budget). --multihart N runs the shared-page conflict
 * analysis over user programs as if N harts executed them. --json
 * replaces the human-readable report with a JSON array of findings
 * (check, severity, pc, region, message, plus payload keys such as
 * page numbers and cycle bounds), one object per target.
 *
 * The elf target loads a compiled static MIPS-I binary, infers the
 * analyzer configuration from its exported symbols (the same
 * inference the runtime applies to assembled user programs), and
 * lints its text; its report additionally carries the image shape —
 * sections (address, file/memory size, permissions) and the symbol
 * table — as "sections"/"symbols" keys in JSON mode.
 *
 * Exit status: 0 if no Error findings (no Warning either under
 * --strict), 1 otherwise, 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/env.h"
#include "core/lintspec.h"
#include "core/microbench.h"
#include "core/multihart.h"
#include "core/userprogs.h"
#include "os/elf.h"
#include "os/kernelimage.h"

using namespace uexc;
using namespace uexc::rt;

namespace {

struct Options
{
    bool strict = false;
    bool wcet = false;
    bool json = false;
    Cycles budget = 0;
    unsigned multihart = 0;
};

struct Totals
{
    unsigned errors = 0;
    unsigned warnings = 0;
    unsigned targets = 0;
    std::string json; ///< accumulated per-target JSON objects
};

/** Apply the CLI-wide analysis options to a user-program config. */
void
applyOptions(analysis::LintConfig &config, const Options &opts)
{
    if (opts.wcet) {
        config.analyzeWcet = true;
        for (analysis::RegionSpec &r : config.regions) {
            if (r.handler && !r.wcetBudget)
                r.wcetBudget = opts.budget;
        }
    }
    if (opts.multihart && !config.multihart)
        config.multihart = opts.multihart;
}

void
report(const char *target, const std::vector<analysis::Finding> &fs,
       const Options &opts, Totals &totals,
       const std::string &extra_json = "",
       const std::string &extra_text = "")
{
    totals.targets++;
    unsigned errors = 0, warnings = 0;
    for (const analysis::Finding &f : fs) {
        if (f.severity == analysis::Severity::Error)
            errors++;
        else if (f.severity == analysis::Severity::Warning)
            warnings++;
    }
    totals.errors += errors;
    totals.warnings += warnings;
    if (opts.json) {
        if (!totals.json.empty())
            totals.json += ",\n";
        totals.json += "{\"target\": \"";
        totals.json += target;
        totals.json += "\", \"findings\": ";
        std::string findings = analysis::formatFindingsJson(fs);
        while (!findings.empty() && findings.back() == '\n')
            findings.pop_back();
        totals.json += findings;
        if (!extra_json.empty()) {
            totals.json += ", ";
            totals.json += extra_json;
        }
        totals.json += "}";
        return;
    }
    std::printf("== %s: %u error%s, %u warning%s\n", target, errors,
                errors == 1 ? "" : "s", warnings,
                warnings == 1 ? "" : "s");
    if (!extra_text.empty())
        std::fputs(extra_text.c_str(), stdout);
    std::fputs(analysis::formatFindings(fs).c_str(), stdout);
}

/** Escape a name for embedding in a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

/** The image-shape halves of an elf-target report: JSON "sections"/
 *  "symbols" keys and the human-readable equivalent. */
void
describeImage(const os::GuestImage &img, std::string &extra_json,
              std::string &extra_text)
{
    char buf[160];
    extra_json = "\"entry\": ";
    extra_json += std::to_string(img.entry);
    extra_json += ", \"sections\": [";
    bool first = true;
    for (const os::GuestSection &s : img.sections) {
        std::snprintf(buf, sizeof buf,
                      "%s{\"name\": \"%s\", \"vaddr\": %u, "
                      "\"fileBytes\": %u, \"memBytes\": %u, "
                      "\"writable\": %s, \"executable\": %s}",
                      first ? "" : ", ", jsonEscape(s.name).c_str(),
                      s.vaddr, s.fileBytes(), s.memBytes,
                      s.writable ? "true" : "false",
                      s.executable ? "true" : "false");
        extra_json += buf;
        first = false;

        std::snprintf(buf, sizeof buf,
                      "   section %-8s va 0x%08x  %6u file / %6u mem"
                      "  %c%c%c\n",
                      s.name.c_str(), s.vaddr, s.fileBytes(),
                      s.memBytes, 'r', s.writable ? 'w' : '-',
                      s.executable ? 'x' : '-');
        extra_text += buf;
    }
    extra_json += "], \"symbols\": [";
    first = true;
    for (const auto &[name, addr] : img.symbols) {
        std::snprintf(buf, sizeof buf,
                      "%s{\"name\": \"%s\", \"addr\": %u}",
                      first ? "" : ", ", jsonEscape(name).c_str(),
                      addr);
        extra_json += buf;
        first = false;
    }
    extra_json += "]";
    std::snprintf(buf, sizeof buf,
                  "   entry 0x%08x, %zu symbol%s\n", img.entry,
                  img.symbols.size(),
                  img.symbols.size() == 1 ? "" : "s");
    extra_text += buf;
}

void
lintKernel(const Options &opts, Totals &totals)
{
    sim::Program image = os::buildKernelImage();
    // The kernel config carries its own WCET gate and budget; CLI
    // options only add to it.
    analysis::LintConfig config = os::kernelLintConfig(image);
    applyOptions(config, opts);
    std::vector<analysis::Finding> findings =
        analysis::lint(image, config);
    std::vector<analysis::Finding> structural = analysis::verifyFastPath(
        image, os::kernelFastPathSpec(image));
    findings.insert(findings.end(), structural.begin(),
                    structural.end());
    report("kernel", findings, opts, totals);
}

void
lintShims(const Options &opts, Totals &totals)
{
    struct Variant
    {
        const char *name;
        SavePolicy policy;
        bool hw;
    };
    constexpr Variant kVariants[] = {
        {"shim(ultrix-equivalent)", SavePolicy::UltrixEquivalent, false},
        {"shim(minimal)", SavePolicy::Minimal, false},
        {"shim(ultrix-equivalent,hw)", SavePolicy::UltrixEquivalent,
         true},
        {"shim(minimal,hw)", SavePolicy::Minimal, true},
    };
    for (const Variant &v : kVariants) {
        sim::Program p = UserEnv::buildShimProgram(v.policy, v.hw);
        analysis::LintConfig config = userProgramLintConfig(p);
        applyOptions(config, opts);
        report(v.name, analysis::lint(p, config), opts, totals);
    }
}

void
lintMultihart(const Options &opts, Totals &totals)
{
    constexpr unsigned n = multihart::kMaxHarts;
    sim::Program k = multihart::buildKernelImage(n);
    analysis::LintConfig kc = multihart::kernelLintConfig(k, n);
    applyOptions(kc, opts);
    report("multihart(kernel)", analysis::lint(k, kc), opts, totals);
    sim::Program w = multihart::buildWorkerProgram(n);
    analysis::LintConfig wc = multihart::workerLintConfig(w, n);
    applyOptions(wc, opts);
    report("multihart(worker)", analysis::lint(w, wc), opts, totals);
}

bool
lintUser(const Options &opts, Totals &totals, const char *which)
{
    bool matched = false;
    for (const std::string &name : rt::userprog::programNames()) {
        if (which && name != which)
            continue;
        matched = true;
        os::GuestImage img = rt::userprog::buildUserProgram(name);
        analysis::LintConfig config = img.lintConfig();
        applyOptions(config, opts);
        std::string target = "user(" + name + ")";
        report(target.c_str(),
               analysis::lint(img.textProgram(), config), opts,
               totals);
    }
    return matched;
}

bool
lintElf(const Options &opts, Totals &totals, const char *path)
{
    os::GuestImage img;
    try {
        img = os::loadElfFile(path);
    } catch (const os::ElfError &e) {
        std::fprintf(stderr, "uexc-lint: %s: %s\n", path, e.what());
        return false;
    }
    sim::Program text = img.textProgram();
    // A compiled binary carries no analyzer spec; infer one from its
    // exported symbols exactly as the runtime does for assembled
    // user programs (handler regions from X/X__end pairs, scratch
    // masks from the handler's first instruction).
    analysis::LintConfig config = img.hasLintConfig()
                                      ? img.lintConfig()
                                      : userProgramLintConfig(text);
    applyOptions(config, opts);
    std::string extra_json, extra_text;
    describeImage(img, extra_json, extra_text);
    std::string target = std::string("elf(") + path + ")";
    report(target.c_str(), analysis::lint(text, config), opts, totals,
           extra_json, extra_text);
    return true;
}

bool
lintMicro(const Options &opts, Totals &totals, const char *which)
{
    bool matched = false;
    for (micro::Scenario s : micro::kAllScenarios) {
        if (which && std::strcmp(micro::scenarioName(s), which) != 0)
            continue;
        matched = true;
        sim::Program p = micro::buildScenarioProgram(s);
        std::string target =
            std::string("micro(") + micro::scenarioName(s) + ")";
        analysis::LintConfig config = userProgramLintConfig(p);
        applyOptions(config, opts);
        report(target.c_str(), analysis::lint(p, config), opts,
               totals);
    }
    return matched;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: uexc_lint [--strict] [--wcet] [--budget N] "
                 "[--multihart N] [--json] "
                 "{--all | kernel | shim | micro [scenario] | "
                 "multihart | user [program] | elf <path>}...\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    Totals totals;
    bool did_anything = false;

    // Options first, then targets, so one pass can honor options
    // that precede targets on the command line.
    std::vector<const char *> targets;
    for (int i = 1; i < argc; i++) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--strict") == 0) {
            opts.strict = true;
        } else if (std::strcmp(arg, "--wcet") == 0) {
            opts.wcet = true;
        } else if (std::strcmp(arg, "--json") == 0) {
            opts.json = true;
        } else if (std::strcmp(arg, "--budget") == 0) {
            if (i + 1 >= argc)
                return usage();
            opts.budget = std::strtoull(argv[++i], nullptr, 0);
            opts.wcet = true;
        } else if (std::strcmp(arg, "--multihart") == 0) {
            if (i + 1 >= argc)
                return usage();
            opts.multihart =
                unsigned(std::strtoul(argv[++i], nullptr, 0));
            if (!opts.multihart)
                return usage();
        } else {
            targets.push_back(arg);
        }
    }

    for (std::size_t i = 0; i < targets.size(); i++) {
        const char *arg = targets[i];
        if (std::strcmp(arg, "--all") == 0) {
            lintKernel(opts, totals);
            lintShims(opts, totals);
            lintMicro(opts, totals, nullptr);
            lintMultihart(opts, totals);
            lintUser(opts, totals, nullptr);
            did_anything = true;
        } else if (std::strcmp(arg, "kernel") == 0) {
            lintKernel(opts, totals);
            did_anything = true;
        } else if (std::strcmp(arg, "shim") == 0) {
            lintShims(opts, totals);
            did_anything = true;
        } else if (std::strcmp(arg, "multihart") == 0) {
            lintMultihart(opts, totals);
            did_anything = true;
        } else if (std::strcmp(arg, "micro") == 0) {
            const char *which = nullptr;
            if (i + 1 < targets.size() && targets[i + 1][0] != '-')
                which = targets[++i];
            if (!lintMicro(opts, totals, which)) {
                std::fprintf(stderr, "unknown scenario \"%s\"\n",
                             which);
                return usage();
            }
            did_anything = true;
        } else if (std::strcmp(arg, "user") == 0) {
            const char *which = nullptr;
            if (i + 1 < targets.size() && targets[i + 1][0] != '-')
                which = targets[++i];
            if (!lintUser(opts, totals, which)) {
                std::fprintf(stderr, "unknown program \"%s\"\n",
                             which);
                return usage();
            }
            did_anything = true;
        } else if (std::strcmp(arg, "elf") == 0) {
            if (i + 1 >= targets.size())
                return usage();
            if (!lintElf(opts, totals, targets[++i]))
                return 1;
            did_anything = true;
        } else {
            std::fprintf(stderr, "unknown argument \"%s\"\n", arg);
            return usage();
        }
    }
    if (!did_anything)
        return usage();

    bool fail =
        totals.errors > 0 || (opts.strict && totals.warnings > 0);
    if (opts.json) {
        std::printf("[\n%s\n]\n", totals.json.c_str());
    } else {
        std::printf(
            "uexc-lint: %u target%s, %u error%s, %u warning%s: %s\n",
            totals.targets, totals.targets == 1 ? "" : "s",
            totals.errors, totals.errors == 1 ? "" : "s",
            totals.warnings, totals.warnings == 1 ? "" : "s",
            fail ? "FAIL" : "ok");
    }
    return fail ? 1 : 0;
}
