/**
 * @file
 * uexc-lint: the guest-code static analyzer, as a command-line tool.
 *
 * Builds the requested guest programs exactly as the runtime would
 * (same emitters, no machine needed) and runs the CFG/dataflow check
 * engine over them. Used interactively and as the CI guest-lint gate.
 *
 *   $ ./tools/uexc_lint kernel          # kernel image + fast path
 *   $ ./tools/uexc_lint shim            # every UserEnv shim variant
 *   $ ./tools/uexc_lint micro           # every microbench scenario
 *   $ ./tools/uexc_lint micro fast-simple
 *   $ ./tools/uexc_lint multihart       # multi-hart study programs
 *   $ ./tools/uexc_lint --all           # everything
 *   $ ./tools/uexc_lint --strict --all  # warnings also fail
 *
 * Exit status: 0 if no Error findings (no Warning either under
 * --strict), 1 otherwise, 2 on usage errors.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/env.h"
#include "core/lintspec.h"
#include "core/microbench.h"
#include "core/multihart.h"
#include "os/kernelimage.h"

using namespace uexc;
using namespace uexc::rt;

namespace {

struct Totals
{
    unsigned errors = 0;
    unsigned warnings = 0;
    unsigned targets = 0;
};

void
report(const char *target, const std::vector<analysis::Finding> &fs,
       Totals &totals)
{
    totals.targets++;
    unsigned errors = 0, warnings = 0;
    for (const analysis::Finding &f : fs) {
        if (f.severity == analysis::Severity::Error)
            errors++;
        else if (f.severity == analysis::Severity::Warning)
            warnings++;
    }
    totals.errors += errors;
    totals.warnings += warnings;
    std::printf("== %s: %u error%s, %u warning%s\n", target, errors,
                errors == 1 ? "" : "s", warnings,
                warnings == 1 ? "" : "s");
    std::fputs(analysis::formatFindings(fs).c_str(), stdout);
}

void
lintKernel(Totals &totals)
{
    sim::Program image = os::buildKernelImage();
    report("kernel", os::lintKernelImage(image), totals);
}

void
lintShims(Totals &totals)
{
    struct Variant
    {
        const char *name;
        SavePolicy policy;
        bool hw;
    };
    constexpr Variant kVariants[] = {
        {"shim(ultrix-equivalent)", SavePolicy::UltrixEquivalent, false},
        {"shim(minimal)", SavePolicy::Minimal, false},
        {"shim(ultrix-equivalent,hw)", SavePolicy::UltrixEquivalent,
         true},
        {"shim(minimal,hw)", SavePolicy::Minimal, true},
    };
    for (const Variant &v : kVariants) {
        sim::Program p = UserEnv::buildShimProgram(v.policy, v.hw);
        report(v.name, analysis::lint(p, userProgramLintConfig(p)),
               totals);
    }
}

void
lintMultihart(Totals &totals)
{
    constexpr unsigned n = multihart::kMaxHarts;
    sim::Program k = multihart::buildKernelImage(n);
    report("multihart(kernel)",
           analysis::lint(k, multihart::kernelLintConfig(k, n)), totals);
    sim::Program w = multihart::buildWorkerProgram(n);
    report("multihart(worker)",
           analysis::lint(w, multihart::workerLintConfig(w, n)), totals);
}

bool
lintMicro(Totals &totals, const char *which)
{
    bool matched = false;
    for (micro::Scenario s : micro::kAllScenarios) {
        if (which && std::strcmp(micro::scenarioName(s), which) != 0)
            continue;
        matched = true;
        sim::Program p = micro::buildScenarioProgram(s);
        std::string target =
            std::string("micro(") + micro::scenarioName(s) + ")";
        report(target.c_str(),
               analysis::lint(p, userProgramLintConfig(p)), totals);
    }
    return matched;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: uexc_lint [--strict] "
                 "{--all | kernel | shim | micro [scenario] | "
                 "multihart}...\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    bool strict = false;
    Totals totals;
    bool did_anything = false;

    for (int i = 1; i < argc; i++) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--strict") == 0) {
            strict = true;
        } else if (std::strcmp(arg, "--all") == 0) {
            lintKernel(totals);
            lintShims(totals);
            lintMicro(totals, nullptr);
            lintMultihart(totals);
            did_anything = true;
        } else if (std::strcmp(arg, "kernel") == 0) {
            lintKernel(totals);
            did_anything = true;
        } else if (std::strcmp(arg, "shim") == 0) {
            lintShims(totals);
            did_anything = true;
        } else if (std::strcmp(arg, "multihart") == 0) {
            lintMultihart(totals);
            did_anything = true;
        } else if (std::strcmp(arg, "micro") == 0) {
            const char *which = nullptr;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                which = argv[++i];
            if (!lintMicro(totals, which)) {
                std::fprintf(stderr, "unknown scenario \"%s\"\n",
                             which);
                return usage();
            }
            did_anything = true;
        } else {
            std::fprintf(stderr, "unknown argument \"%s\"\n", arg);
            return usage();
        }
    }
    if (!did_anything)
        return usage();

    bool fail = totals.errors > 0 || (strict && totals.warnings > 0);
    std::printf("uexc-lint: %u target%s, %u error%s, %u warning%s: %s\n",
                totals.targets, totals.targets == 1 ? "" : "s",
                totals.errors, totals.errors == 1 ? "" : "s",
                totals.warnings, totals.warnings == 1 ? "" : "s",
                fail ? "FAIL" : "ok");
    return fail ? 1 : 0;
}
