/**
 * @file
 * kdump: disassemble the generated kernel image with symbol and
 * phase annotations. The printed listing is the authoritative
 * reference for what actually executes on each dispatch path (the
 * paper's Figure 1/Figure 2 flows, as real code).
 *
 *   $ ./tools/kdump            # whole kernel text
 *   $ ./tools/kdump fast       # only the fast path (Table 3 region)
 *   $ ./tools/kdump --lint     # run uexc-lint over the image instead
 *   $ ./tools/kdump --lint --harts N
 *                              # also lint the N-hart study images,
 *                              # including the static shared-page
 *                              # conflict analysis
 *   $ ./tools/kdump --harts N  # the multihart study images for N harts
 *   $ ./tools/kdump --harts N --parallel
 *                              # boot the user-vectored study on the
 *                              # Barrier (host-thread) scheduler and
 *                              # print per-hart delivery counts plus
 *                              # the speculative-round ledger
 *   $ ./tools/kdump --snapshot # section table of a booted machine's
 *                              # checkpoint (raw vs zero-elided size)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "core/multihart.h"
#include "os/kernel.h"
#include "os/kernelimage.h"
#include "os/layout.h"
#include "sim/isa.h"
#include "sim/machine.h"
#include "sim/snapshot.h"

using namespace uexc;
using namespace uexc::sim;
using namespace uexc::os;

namespace {

/** Disassemble @p image from @p begin to @p end with symbol labels. */
void
dumpRange(const Program &image, Addr begin, Addr end)
{
    std::map<Addr, std::string> by_addr;
    for (const auto &[name, addr] : image.symbols)
        by_addr[addr] = name;
    for (Addr addr = begin; addr < end; addr += 4) {
        auto sym = by_addr.find(addr);
        if (sym != by_addr.end())
            std::printf("\n%s:\n", sym->second.c_str());
        Word raw = image.words[(addr - image.origin) / 4];
        DecodedInst inst = decode(raw);
        std::printf("  %08x:  %08x  %s\n", addr, raw,
                    disassemble(inst, addr).c_str());
    }
}

/** Dump the per-hart mini-kernel and worker of the scaling study. */
int
dumpMultihart(unsigned harts)
{
    if (harts < 1 || harts > rt::multihart::kMaxHarts) {
        std::fprintf(stderr, "kdump: --harts wants 1..%u\n",
                     rt::multihart::kMaxHarts);
        return 1;
    }
    Program kernel = rt::multihart::buildKernelImage(harts);
    // Text stops where the per-hart save/counter slots begin.
    Addr ktext_end = kernel.symbol("mh_save");
    std::printf("multihart kernel (%u hart%s): %zu words, text "
                "0x%08x..0x%08x, %u x %u-byte save areas\n",
                harts, harts == 1 ? "" : "s", kernel.words.size(),
                kernel.origin, ktext_end, harts,
                unsigned(os::hartsave::Bytes));
    dumpRange(kernel, kernel.origin, ktext_end);

    Program worker = rt::multihart::buildWorkerProgram(harts);
    std::printf("\nmultihart worker: %zu words at 0x%08x (one entry "
                "per hart)\n",
                worker.words.size(), worker.origin);
    dumpRange(worker, worker.origin,
              worker.origin + 4 * Addr(worker.words.size()));
    return 0;
}

/**
 * Boot the user-vectored delivery study on a Barrier-scheduled
 * machine — every quantum on its own host thread — and print what
 * each hart delivered, plus the speculative-round ledger. A quick
 * eyeball check that real threads reproduce the serial schedule:
 * the per-hart counts must match a serial run of the same study
 * (tests/test_parallel.cc asserts this; here it is just visible).
 */
int
runParallelStudy(unsigned harts)
{
    if (harts < 1 || harts > rt::multihart::kMaxHarts) {
        std::fprintf(stderr, "kdump: --harts wants 1..%u\n",
                     rt::multihart::kMaxHarts);
        return 1;
    }
    constexpr Addr worker_phys = 0x00210000;
    constexpr unsigned asid = 1;
    constexpr InstCount insts_per_hart = 40000;

    MachineConfig cfg;
    cfg.harts = harts;
    cfg.quantum = 500;
    cfg.cpu.userVectorHw = true;
    cfg.scheduler = SchedulerMode::Barrier;
    Machine m(cfg);

    m.load(rt::multihart::buildKernelImage(harts));
    Program worker = rt::multihart::buildWorkerProgram(harts);
    m.mem().writeBlock(worker_phys, worker.words.data(),
                       4 * worker.words.size());
    for (unsigned i = 0; i < harts; i++) {
        Hart &h = m.hart(i);
        h.tlb().setEntry(0,
                         (os::kUserTextBase & entryhi::VpnMask) |
                             (asid << entryhi::AsidShift),
                         (worker_phys & entrylo::PfnMask) |
                             entrylo::V);
        h.cp0().setStatusReg(h.cp0().statusReg() | status::KUc |
                             status::UV);
        h.cp0().setUxReg(UxReg::Target,
                         worker.symbol("mh_uv_handler"));
        h.cp0().write(cp0reg::EntryHi, asid << entryhi::AsidShift);
        h.setPc(worker.symbol("mh_hart" + std::to_string(i) +
                              "_entry"));
    }

    MachineRunResult r =
        m.run(static_cast<InstCount>(harts) * insts_per_hart);

    std::printf("user-vectored study, %u hart%s on the %s scheduler: "
                "%llu instructions\n\n",
                harts, harts == 1 ? "" : "s",
                m.schedulerMode() == SchedulerMode::Barrier
                    ? "barrier" : "serial",
                static_cast<unsigned long long>(r.instsExecuted));
    std::printf("  %4s %12s %12s %12s\n", "hart", "instret",
                "cycles", "uv-delivered");
    for (unsigned i = 0; i < harts; i++) {
        const Hart &h = m.hart(i);
        std::printf("  %4u %12llu %12llu %12llu\n", i,
                    static_cast<unsigned long long>(h.instret()),
                    static_cast<unsigned long long>(h.cycles()),
                    static_cast<unsigned long long>(
                        h.stats().userVectoredExceptions));
    }
    const BarrierSchedStats &bs = m.barrierStats();
    std::printf("\n  rounds: %llu speculative (%llu committed, %llu "
                "aborted), %llu serial quanta\n",
                static_cast<unsigned long long>(bs.parallelRounds),
                static_cast<unsigned long long>(bs.committedRounds),
                static_cast<unsigned long long>(bs.abortedRounds),
                static_cast<unsigned long long>(bs.serialQuanta));
    return 0;
}

/** Checkpoint a freshly booted kernel machine and print what the
 *  snapshot holds: one row per section, and the zero-elision win. */
int
dumpSnapshot()
{
    Machine machine;
    Kernel kernel(machine);
    kernel.boot();
    std::vector<Byte> image = machine.checkpoint();
    SnapshotImage parsed(image);

    std::printf("booted kernel snapshot: %zu bytes, %zu sections, "
                "format v%u\n\n",
                image.size(), parsed.sections().size(),
                kSnapshotVersion);
    std::printf("  %-8s %12s\n", "tag", "bytes");
    for (const SnapshotSection &s : parsed.sections())
        std::printf("  %-8s %12zu\n", snapshotTagName(s.tag).c_str(),
                    s.length);
    std::printf("\n  physical memory: %zu bytes; raw (unelided) image "
                "would be ~%zu KiB, elided image is %zu KiB\n",
                machine.mem().size(),
                (machine.mem().size() + image.size()) / 1024,
                image.size() / 1024);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool fast_only = argc > 1 && std::strcmp(argv[1], "fast") == 0;
    bool lint_only = argc > 1 && std::strcmp(argv[1], "--lint") == 0;

    if (argc > 1 && std::strcmp(argv[1], "--snapshot") == 0)
        return dumpSnapshot();

    if (argc > 1 && std::strcmp(argv[1], "--harts") == 0) {
        if (argc < 3) {
            std::fprintf(stderr, "kdump: --harts needs a count\n");
            return 1;
        }
        unsigned harts = unsigned(std::atoi(argv[2]));
        if (argc > 3 && std::strcmp(argv[3], "--parallel") == 0)
            return runParallelStudy(harts);
        return dumpMultihart(harts);
    }

    if (lint_only) {
        unsigned harts = 0;
        if (argc > 3 && std::strcmp(argv[2], "--harts") == 0)
            harts = unsigned(std::atoi(argv[3]));
        Program image = buildKernelImage();
        std::vector<analysis::Finding> findings =
            lintKernelImage(image);
        if (harts) {
            // The N-hart study images, with the shared-page conflict
            // analysis the per-hart configs enable.
            Program k = rt::multihart::buildKernelImage(harts);
            for (analysis::Finding &f : analysis::lint(
                     k, rt::multihart::kernelLintConfig(k, harts)))
                findings.push_back(std::move(f));
            Program w = rt::multihart::buildWorkerProgram(harts);
            for (analysis::Finding &f : analysis::lint(
                     w, rt::multihart::workerLintConfig(w, harts)))
                findings.push_back(std::move(f));
        }
        std::fputs(analysis::formatFindings(findings).c_str(), stdout);
        std::printf("%s: %zu finding%s, %s\n",
                    harts ? "kernel + multihart images"
                          : "kernel image",
                    findings.size(), findings.size() == 1 ? "" : "s",
                    analysis::hasErrors(findings) ? "FAIL" : "ok");
        return analysis::hasErrors(findings) ? 1 : 0;
    }

    Program image = buildKernelImage();
    // invert the symbol table for annotation
    std::map<Addr, std::string> by_addr;
    for (const auto &[name, addr] : image.symbols)
        by_addr[addr] = name;

    Addr begin = fast_only ? image.symbol(ksym::FastDecode)
                           : image.origin;
    Addr end = fast_only ? image.symbol(ksym::FastEnd)
                         : image.symbol(ksym::Curproc);

    std::printf("kernel image: %zu words, text 0x%08x..0x%08x\n\n",
                image.words.size(), image.origin, end);

    for (Addr addr = begin; addr < end; addr += 4) {
        auto sym = by_addr.find(addr);
        if (sym != by_addr.end())
            std::printf("\n%s:\n", sym->second.c_str());
        Word raw = image.words[(addr - image.origin) / 4];
        DecodedInst inst = decode(raw);
        std::printf("  %08x:  %08x  %s\n", addr, raw,
                    disassemble(inst, addr).c_str());
    }
    return 0;
}
