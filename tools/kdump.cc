/**
 * @file
 * kdump: disassemble the generated kernel image with symbol and
 * phase annotations. The printed listing is the authoritative
 * reference for what actually executes on each dispatch path (the
 * paper's Figure 1/Figure 2 flows, as real code).
 *
 *   $ ./tools/kdump            # whole kernel text
 *   $ ./tools/kdump fast       # only the fast path (Table 3 region)
 *   $ ./tools/kdump --lint     # run uexc-lint over the image instead
 */

#include <cstdio>
#include <cstring>
#include <map>

#include "os/kernelimage.h"
#include "sim/isa.h"

using namespace uexc;
using namespace uexc::sim;
using namespace uexc::os;

int
main(int argc, char **argv)
{
    bool fast_only = argc > 1 && std::strcmp(argv[1], "fast") == 0;
    bool lint_only = argc > 1 && std::strcmp(argv[1], "--lint") == 0;

    if (lint_only) {
        Program image = buildKernelImage();
        std::vector<analysis::Finding> findings =
            lintKernelImage(image);
        std::fputs(analysis::formatFindings(findings).c_str(), stdout);
        std::printf("kernel image: %zu finding%s, %s\n",
                    findings.size(), findings.size() == 1 ? "" : "s",
                    analysis::hasErrors(findings) ? "FAIL" : "ok");
        return analysis::hasErrors(findings) ? 1 : 0;
    }

    Program image = buildKernelImage();
    // invert the symbol table for annotation
    std::map<Addr, std::string> by_addr;
    for (const auto &[name, addr] : image.symbols)
        by_addr[addr] = name;

    Addr begin = fast_only ? image.symbol(ksym::FastDecode)
                           : image.origin;
    Addr end = fast_only ? image.symbol(ksym::FastEnd)
                         : image.symbol(ksym::Curproc);

    std::printf("kernel image: %zu words, text 0x%08x..0x%08x\n\n",
                image.words.size(), image.origin, end);

    for (Addr addr = begin; addr < end; addr += 4) {
        auto sym = by_addr.find(addr);
        if (sym != by_addr.end())
            std::printf("\n%s:\n", sym->second.c_str());
        Word raw = image.words[(addr - image.origin) / 4];
        DecodedInst inst = decode(raw);
        std::printf("  %08x:  %08x  %s\n", addr, raw,
                    disassemble(inst, addr).c_str());
    }
    return 0;
}
