/* hello: write to the console, sanity-check getpid. */

#include "../lib/uexc.h"

int
main(void)
{
    static const char msg[] = "hello, userland\n";

    if (write(1, msg, sizeof msg - 1) != sizeof msg - 1)
        return 1;
    if (getpid() <= 0)
        return 1;
    return 0;
}
