/* futures: unaligned-pointer futures (paper section 4.2.1). An
 * unresolved future is a pointer with its low bits set; dereferencing
 * it raises an address-error exception. The handler resolves the
 * future (writes the value into the box), then restarts the loads
 * by rewriting the resume PC.
 *
 *   argv[1] = 'u'  fast user-level delivery: the handler patches
 *                  frame->epc to the retry label
 *   argv[1] = 's'  stock signals (SIGBUS): the handler patches the
 *                  sigcontext PC
 */

#include "../lib/uexc.h"

#define ITERS 32
#define VALUE 42

struct uframe
{
    unsigned epc, cause, badva, status, lo, hi;
    unsigned at_, t0, t1, t2, t3, t4, t5;
    unsigned spill[19];
};

extern void uexc_fast_stub(void);

static volatile unsigned hits;
static volatile unsigned box;       /* the future's value cell */
static volatile unsigned cell;      /* holds the tagged pointer */
static void *retry_pc;              /* where to resume after resolve */

/* resolve the future: untag the cell, fill the box, restart the
 * consume sequence from the retry label */
void
uexc_c_handler(struct uframe *f)
{
    cell &= ~3u;
    box = VALUE;
    hits++;
    f->epc = (unsigned)retry_pc;
}

static void
on_sigbus(int sig, int code, void *ctx)
{
    unsigned *sc = (unsigned *)ctx;
    (void)sig;
    (void)code;
    cell &= ~3u;
    box = VALUE;
    hits++;
    sc[0] = (unsigned)retry_pc; /* sigcontext.pc */
}

int
main(int argc, char **argv)
{
    static char frame_page[2 * PAGE_SIZE];
    int fast_mode, i;

    if (argc < 2)
        return 2;
    fast_mode = argv[1][0] == 'u';
    if (!fast_mode && argv[1][0] != 's')
        return 2;

    if (fast_mode) {
        char *fp = (char *)(((unsigned)frame_page + PAGE_SIZE - 1) &
                            ~(PAGE_SIZE - 1));
        uexc_enable(EXC_MOD | EXC_TLBL | EXC_TLBS | EXC_ADEL |
                        EXC_ADES,
                    uexc_fast_stub, fp);
    } else {
        sigaction(SIGBUS, on_sigbus);
    }

    for (i = 0; i < ITERS; i++) {
        unsigned v;

        box = 0;
        cell = (unsigned)&box | 2; /* tag: unresolved future */
        retry_pc = &&retry;
    retry:
        v = *(volatile unsigned *)cell; /* AdEL until resolved */
        if (v != VALUE)
            return 1;
    }

    return hits == ITERS ? 0 : 1;
}
