/* forktest: fork a child that writes a file through the VFS, wait
 * for it, then read the file back in the parent. */

#include "../lib/uexc.h"

static const char cmsg[] = "hi!";
static const char ok[] = "forktest ok\n";

int
main(void)
{
    char *buf = sbrk(PAGE_SIZE);
    int pid, status, fd;

    pid = fork();
    if (pid == 0) {
        /* child */
        fd = open("out.txt", O_CREAT | O_WRONLY);
        if (fd < 0)
            exit(9);
        if (write(fd, cmsg, sizeof cmsg) != sizeof cmsg)
            exit(9);
        close(fd);
        exit(7);
    }

    if (wait(&status) != pid)
        return 1;
    if (status != 7)
        return 1;

    fd = open("out.txt", O_RDONLY);
    if (fd < 0)
        return 1;
    if (read(fd, buf, sizeof cmsg) != sizeof cmsg)
        return 1;
    if (*(const unsigned *)buf != *(const unsigned *)cmsg)
        return 1;

    write(1, ok, sizeof ok - 1);
    return 0;
}
