/* gcbar: the generational-GC write barrier (paper section 4.1) as a
 * compiled program. A heap page is kept write-protected; every store
 * into it faults, the handler records the "dirty card", and the page
 * is re-protected for the next round.
 *
 *   argv[1] = 'u'  fast user-level delivery (uexc_enable + stub,
 *                  eager amplification upgrades the page in the TLB
 *                  before the handler runs, so the handler only
 *                  counts)
 *   argv[1] = 's'  stock signal delivery (SIGSEGV handler counts and
 *                  mprotects the page writable itself)
 */

#include "../lib/uexc.h"

#define ITERS 32

struct uframe
{
    unsigned epc, cause, badva, status, lo, hi;
    unsigned at_, t0, t1, t2, t3, t4, t5;
    unsigned spill[19];
};

extern void uexc_fast_stub(void);

static volatile unsigned hits;
static char *heap;
static int fast_mode;

/* fast path: eager amplification already made the page writable */
void
uexc_c_handler(struct uframe *f)
{
    (void)f;
    hits++;
}

/* signal path: count, then amplify the page ourselves */
static void
on_segv(int sig, int code, void *ctx)
{
    unsigned badva = ((unsigned *)ctx)[35]; /* sigcontext.badva */
    (void)sig;
    (void)code;
    hits++;
    mprotect((void *)(badva & ~(PAGE_SIZE - 1)), PAGE_SIZE,
             PROT_READ | PROT_WRITE);
}

static void
protect_heap(void)
{
    if (fast_mode)
        uexc_protect(heap, PAGE_SIZE, PROT_READ);
    else
        mprotect(heap, PAGE_SIZE, PROT_READ);
}

int
main(int argc, char **argv)
{
    static char frame_page[2 * PAGE_SIZE];
    int i;

    if (argc < 2)
        return 2;
    fast_mode = argv[1][0] == 'u';
    if (!fast_mode && argv[1][0] != 's')
        return 2;

    heap = sbrk(PAGE_SIZE);

    if (fast_mode) {
        char *fp = (char *)(((unsigned)frame_page + PAGE_SIZE - 1) &
                            ~(PAGE_SIZE - 1));
        uexc_enable(EXC_MOD | EXC_TLBL | EXC_TLBS | EXC_ADEL |
                        EXC_ADES,
                    uexc_fast_stub, fp);
        uexc_setflags(PF_EAGER_AMPLIFY);
    } else {
        sigaction(SIGSEGV, on_segv);
    }

    protect_heap();
    for (i = 0; i < ITERS; i++) {
        *(volatile unsigned *)heap = i; /* faults, handler fires */
        protect_heap();                 /* re-arm the barrier */
    }

    return hits == ITERS ? 0 : 1;
}
