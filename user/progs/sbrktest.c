/* sbrktest: heap growth and shrink through sbrk(), fresh pages
 * arriving zeroed, and BSS zero-fill by the ELF loader. */

#include "../lib/uexc.h"

#define NPAGES 8

unsigned marker = 0x12345678;  /* .data: survives the load */
unsigned bss_word;             /* .bss: must arrive zeroed */

int
main(void)
{
    char *base, *p;
    int i;

    if (marker != 0x12345678)
        return 1;
    if (bss_word != 0)
        return 1;

    base = sbrk(0);
    if (sbrk(NPAGES * PAGE_SIZE) != base)
        return 1;

    /* fresh pages read as zero; stamp each one */
    for (i = 0; i < NPAGES; i++) {
        p = base + i * PAGE_SIZE;
        if (*(unsigned *)p != 0)
            return 1;
        *(unsigned *)p = 0xbeef0000u + i;
    }
    for (i = 0; i < NPAGES; i++) {
        p = base + i * PAGE_SIZE;
        if (*(unsigned *)p != 0xbeef0000u + i)
            return 1;
    }

    /* shrink by one page; the break moves back */
    sbrk(-PAGE_SIZE);
    if (sbrk(0) != base + (NPAGES - 1) * PAGE_SIZE)
        return 1;
    return 0;
}
