/* swizzle: pointer swizzling / object faulting. A heap page holding
 * an unswizzled object reference is kept inaccessible; the first
 * load faults and the handler installs the real ("swizzled") pointer
 * into the faulting cell before the load retries.
 *
 *   argv[1] = 'u'  fast user-level delivery: eager amplification has
 *                  already upgraded the page, the handler just
 *                  writes the pointer through the faulting address
 *                  (frame->badva)
 *   argv[1] = 's'  stock signals: the handler mprotects the page
 *                  accessible, then installs the pointer
 */

#include "../lib/uexc.h"

#define ITERS 32
#define PAYLOAD 0x5157495a

struct uframe
{
    unsigned epc, cause, badva, status, lo, hi;
    unsigned at_, t0, t1, t2, t3, t4, t5;
    unsigned spill[19];
};

extern void uexc_fast_stub(void);

static volatile unsigned hits;
static unsigned target = PAYLOAD; /* the swizzled-in object */
static unsigned *heap;
static int fast_mode;

void
uexc_c_handler(struct uframe *f)
{
    *(unsigned **)f->badva = &target; /* page already amplified */
    hits++;
}

static void
on_segv(int sig, int code, void *ctx)
{
    unsigned badva = ((unsigned *)ctx)[35];
    (void)sig;
    (void)code;
    mprotect((void *)(badva & ~(PAGE_SIZE - 1)), PAGE_SIZE,
             PROT_READ | PROT_WRITE);
    *(unsigned **)badva = &target;
    hits++;
}

static void
protect_heap(void)
{
    if (fast_mode)
        uexc_protect(heap, PAGE_SIZE, PROT_NONE);
    else
        mprotect(heap, PAGE_SIZE, PROT_NONE);
}

int
main(int argc, char **argv)
{
    static char frame_page[2 * PAGE_SIZE];
    int i;

    if (argc < 2)
        return 2;
    fast_mode = argv[1][0] == 'u';
    if (!fast_mode && argv[1][0] != 's')
        return 2;

    heap = sbrk(PAGE_SIZE);

    if (fast_mode) {
        char *fp = (char *)(((unsigned)frame_page + PAGE_SIZE - 1) &
                            ~(PAGE_SIZE - 1));
        uexc_enable(EXC_MOD | EXC_TLBL | EXC_TLBS | EXC_ADEL |
                        EXC_ADES,
                    uexc_fast_stub, fp);
        uexc_setflags(PF_EAGER_AMPLIFY);
    } else {
        sigaction(SIGSEGV, on_segv);
    }

    protect_heap();
    for (i = 0; i < ITERS; i++) {
        unsigned *p = *(unsigned **)heap; /* faults, gets swizzled */

        if (p != &target)
            return 1;
        if (*p != PAYLOAD)
            return 1;
        protect_heap(); /* back to unswizzled state */
    }

    return hits == ITERS ? 0 : 1;
}
