# _start: the kernel's execve leaves a0 = argc, a1 = argv, sp at the
# initial stack. Call main and hand its return value to exit().

	.set	noreorder
	.text
	.globl	_start
	.ent	_start
_start:
	jal	main
	nop
	move	$a0, $v0
	li	$v0, 8			# SYS_exit
	syscall
crt0_park:
	j	crt0_park		# exit does not return
	nop
	.end	_start
