/*
 * The userland view of the simulator's Ultrix-flavored syscall ABI.
 * Numbers and flag values mirror src/os/syscalls.h; keep them in
 * sync by hand (this header is compiled by a MIPS cross toolchain,
 * not by the simulator build).
 */

#ifndef UEXC_USER_UEXC_H
#define UEXC_USER_UEXC_H

/* syscall numbers (v0) */
#define SYS_getpid          1
#define SYS_sigaction       2
#define SYS_sigreturn       3
#define SYS_mprotect        4
#define SYS_uexc_enable     5
#define SYS_uexc_protect    6
#define SYS_subpage_protect 7
#define SYS_exit            8
#define SYS_uexc_setflags   9
#define SYS_set_trampoline  10
#define SYS_open            11
#define SYS_close           12
#define SYS_read            13
#define SYS_write           14
#define SYS_sbrk            15
#define SYS_fork            16
#define SYS_wait            17

/* open() flags */
#define O_RDONLY 0x000
#define O_WRONLY 0x001
#define O_RDWR   0x002
#define O_APPEND 0x008
#define O_CREAT  0x200
#define O_TRUNC  0x400

/* mprotect / uexc_protect */
#define PROT_NONE  0
#define PROT_READ  1
#define PROT_WRITE 2

/* signals (kernel-mediated delivery) */
#define SIGBUS  10
#define SIGSEGV 11

/* proc flags for uexc_setflags */
#define PF_EAGER_AMPLIFY 1

/* MIPS-I ExcCode bits for the uexc_enable mask */
#define EXC_MOD  (1 << 1)
#define EXC_TLBL (1 << 2)
#define EXC_TLBS (1 << 3)
#define EXC_ADEL (1 << 4)
#define EXC_ADES (1 << 5)

#define PAGE_SIZE 4096

/* usys.s stubs */
int getpid(void);
int sigaction(int sig, void (*handler)(int, int, void *));
int set_trampoline(void *tramp);
int mprotect(void *addr, unsigned len, int prot);
int uexc_enable(unsigned mask, void (*stub)(void), void *frame_page);
int uexc_protect(void *addr, unsigned len, int prot);
int uexc_setflags(unsigned flags);
void exit(int code);
int open(const char *path, int flags);
int close(int fd);
int read(int fd, void *buf, unsigned len);
int write(int fd, const void *buf, unsigned len);
void *sbrk(int delta);
int fork(void);
int wait(int *status);

#endif /* UEXC_USER_UEXC_H */
