/**
 * @file
 * End-to-end tests of the compiled userland: every checked-in ELF
 * fixture boots through Kernel::execve and runs to exit on a stock
 * machine, the three paper scenarios (GC write barrier, pointer
 * swizzling, futures) preserve the user-vectored < kernel-mediated
 * cost ordering as loaded binaries, the programs pass the static
 * analyzer, and an ELF-loaded process snapshots/restores mid-syscall
 * bit-identically.
 */

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/lint.h"
#include "core/userprogs.h"
#include "os/elf.h"
#include "os/kernel.h"
#include "os/layout.h"
#include "sim/machine.h"

namespace uexc::os {
namespace {

using rt::userprog::buildUserProgram;
using rt::userprog::kExitOk;
using rt::userprog::programNames;

constexpr InstCount kMaxInsts = 4'000'000;

/** UEXC_FIXTURE_DIR points the suite at an alternate fixture tree
 *  (CI boots cross-compiled binaries from user/build this way). */
std::string
fixturePath(const std::string &name)
{
    if (const char *dir = std::getenv("UEXC_FIXTURE_DIR"))
        return std::string(dir) + "/" + name + ".elf";
    return std::string(UEXC_REPO_ROOT) + "/user/fixtures/" + name +
           ".elf";
}

/** One booted machine + kernel with an ELF fixture execve'd into a
 *  fresh process. Kept alive so tests can inspect kernel state (VFS,
 *  console, process table) after the run. */
struct GuestRun
{
    sim::Machine machine;
    Kernel kernel;
    Process *proc = nullptr;

    explicit GuestRun(const std::string &name,
                      const std::vector<std::string> &argv)
        : machine(sim::MachineConfig{}), kernel(machine)
    {
        kernel.boot();
        proc = &kernel.createProcess();
        kernel.execve(*proc, loadElfFile(fixturePath(name)), argv);
    }

    /** Run to halt; returns the exit status. */
    Word runToExit()
    {
        sim::MachineRunResult r = machine.run(kMaxInsts);
        EXPECT_EQ(r.reason, sim::StopReason::Halted);
        EXPECT_TRUE(kernel.exited());
        return kernel.exitCode();
    }

    Cycles cycles() { return machine.cpu().cycles(); }
};

/** Run scenario @p name under delivery mode @p mode ('u' or 's') and
 *  return total simulated cycles; the program must exit clean. */
Cycles
scenarioCycles(const std::string &name, const std::string &mode)
{
    GuestRun run(name, {name, mode});
    EXPECT_EQ(run.runToExit(), kExitOk)
        << name << " mode " << mode << " failed";
    return run.cycles();
}

TEST(Userland, HelloWritesConsoleAndExitsClean)
{
    GuestRun run("hello", {"hello"});
    EXPECT_EQ(run.runToExit(), kExitOk);
    EXPECT_EQ(run.kernel.consoleOutput(), "hello, userland\n");
}

TEST(Userland, SbrkGrowsAndShrinksTheHeap)
{
    GuestRun run("sbrktest", {"sbrktest"});
    Word brk_before = run.proc->field(proc::Brk);
    EXPECT_EQ(run.runToExit(), kExitOk);
    // grew 8 pages, shrank 1: the break ends 7 pages past the start
    EXPECT_EQ(run.proc->field(proc::Brk),
              brk_before + 7 * kPageBytes);
}

TEST(Userland, ForkWaitAndVfsRoundTrip)
{
    GuestRun run("forktest", {"forktest"});
    EXPECT_EQ(run.runToExit(), kExitOk);
    EXPECT_EQ(run.kernel.consoleOutput(), "forktest ok\n");

    // the child's file survives in the VFS with the bytes it wrote
    int idx = run.kernel.vfs().lookup("out.txt");
    ASSERT_GE(idx, 0);
    const Vfs::File &f = run.kernel.vfs().file(unsigned(idx));
    ASSERT_EQ(f.data.size(), 4u);
    EXPECT_EQ(std::string(f.data.begin(), f.data.end() - 1), "hi!");

    // parent + child both exist; the child was reaped
    EXPECT_EQ(run.kernel.numProcesses(), 2u);
    Process *child = run.kernel.findProcess(2);
    ASSERT_NE(child, nullptr);
    EXPECT_EQ(child->state(), ProcState::Reaped);
    EXPECT_EQ(child->exitStatus(), 7u);
    EXPECT_EQ(child->parentPid(), 1u);
}

TEST(Userland, MissingModeArgumentFailsUsage)
{
    GuestRun run("gcbar", {"gcbar"});
    EXPECT_EQ(run.runToExit(), 2u);
}

// The paper's core claim, through compiled binaries: the same
// workload costs less under user-vectored delivery than under
// kernel-mediated signal delivery.

TEST(Userland, GcBarrierFasterUserVectored)
{
    Cycles u = scenarioCycles("gcbar", "u");
    Cycles s = scenarioCycles("gcbar", "s");
    EXPECT_LT(u, s) << "user-vectored " << u << " vs signals " << s;
}

TEST(Userland, SwizzleFasterUserVectored)
{
    Cycles u = scenarioCycles("swizzle", "u");
    Cycles s = scenarioCycles("swizzle", "s");
    EXPECT_LT(u, s) << "user-vectored " << u << " vs signals " << s;
}

TEST(Userland, FuturesFasterUserVectored)
{
    Cycles u = scenarioCycles("futures", "u");
    Cycles s = scenarioCycles("futures", "s");
    EXPECT_LT(u, s) << "user-vectored " << u << " vs signals " << s;
}

TEST(Userland, AllProgramsPassLint)
{
    for (const std::string &name : programNames()) {
        SCOPED_TRACE(name);
        GuestImage img = buildUserProgram(name);
        ASSERT_TRUE(img.hasLintConfig());
        std::vector<analysis::Finding> findings =
            analysis::lint(img.textProgram(), img.lintConfig());
        for (const analysis::Finding &f : findings) {
            EXPECT_NE(f.severity, analysis::Severity::Error)
                << analysis::checkName(f.check) << " @0x" << std::hex
                << f.addr << ": " << f.message;
        }
    }
}

TEST(Userland, SnapshotRoundTripsMidSyscall)
{
    // Stop the machine inside the guest kernel's syscall path (at the
    // sys_complex row, trapframe built, v0 not yet written), snapshot,
    // restore into a deterministically rebuilt twin, and require the
    // two machines to be indistinguishable from then on.
    GuestRun t("forktest", {"forktest"});
    GuestRun u("forktest", {"forktest"});

    Addr bp = t.kernel.sym("sys_complex");
    t.machine.cpu().addBreakpoint(bp);
    // Skip a few complex syscalls so the snapshot carries real state:
    // by the 4th stop the child exists and holds an open descriptor.
    for (int i = 0; i < 4; i++) {
        sim::MachineRunResult r = t.machine.run(kMaxInsts);
        ASSERT_EQ(r.reason, sim::StopReason::Breakpoint) << "stop " << i;
    }
    // drop the breakpoint before checkpointing: the breakpoint set is
    // machine state and would otherwise travel into the twin
    t.machine.cpu().removeBreakpoint(bp);
    std::vector<Byte> img = t.machine.checkpoint();

    // The snapshot carries the forked child, so the twin must be
    // rebuilt by the same deterministic construction: one more
    // createProcess() yields the identical identity tuple (pid, asid,
    // page table slot, proc/u-area addresses) that restore validates.
    // Everything else the child owns lives in guest memory and the
    // serialized KERN state, which restore replaces wholesale.
    u.kernel.createProcess();

    // restore into the twin; re-serializing must reproduce the image
    // exactly (mappings, program break, fd tables, VFS, console)
    u.machine.restore(img);
    EXPECT_EQ(u.machine.checkpoint(), img);

    // the restored twin agrees on kernel-level state...
    ASSERT_EQ(u.kernel.numProcesses(), t.kernel.numProcesses());
    for (unsigned pid = 1; pid <= t.kernel.numProcesses(); pid++) {
        Process *pt = t.kernel.findProcess(pid);
        Process *pu = u.kernel.findProcess(pid);
        ASSERT_NE(pt, nullptr);
        ASSERT_NE(pu, nullptr);
        EXPECT_EQ(pu->field(proc::Brk), pt->field(proc::Brk));
        EXPECT_EQ(pu->state(), pt->state());
        EXPECT_EQ(pu->parentPid(), pt->parentPid());
        for (unsigned fd = 0; fd < kMaxFds; fd++) {
            EXPECT_EQ(pu->fd(fd).used, pt->fd(fd).used);
            EXPECT_EQ(pu->fd(fd).console, pt->fd(fd).console);
            EXPECT_EQ(pu->fd(fd).fileIndex, pt->fd(fd).fileIndex);
            EXPECT_EQ(pu->fd(fd).offset, pt->fd(fd).offset);
            EXPECT_EQ(pu->fd(fd).flags, pt->fd(fd).flags);
        }
    }

    // ...and both runs complete identically from the snapshot point.
    EXPECT_EQ(t.runToExit(), kExitOk);
    EXPECT_EQ(u.runToExit(), kExitOk);
    EXPECT_EQ(u.kernel.consoleOutput(), t.kernel.consoleOutput());
    EXPECT_EQ(t.machine.checkpoint(), u.machine.checkpoint());
}

} // namespace
} // namespace uexc::os
