/**
 * @file
 * Shared lockstep-fuzz machinery: the seeded random guest-program
 * generator, the skip-everything exception handlers, and the
 * bit-for-bit architectural comparison. Used by the cross-interpreter
 * differential fuzz (test_cpu_random) and by the snapshot round-trip
 * property test (test_snapshot), which replays the same corpus with a
 * checkpoint/restore in the middle.
 */

#ifndef UEXC_TESTS_FUZZ_UTIL_H
#define UEXC_TESTS_FUZZ_UTIL_H

#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim_test_util.h"

namespace uexc::sim::fuzzutil {

constexpr Addr kMapVa = 0x2000;      // kuseg page accessed via the TLB
constexpr Addr kMapFrame = 0x30000;  // physical frame it maps to
constexpr InstCount kFuzzInstLimit = 30'000;

const unsigned kDataRegs[] = {T0, T1, T2, T3, T4, T5, T6, T7,
                              S0, S1, S2, S3, V0, V1, A0, A1, A2, A3};

/** Emits one random program; block labels keep all branches forward
 *  except the explicitly bounded backward loops. */
struct FuzzGen
{
    Assembler &as;
    std::mt19937 &rng;
    unsigned patches = 0;
    unsigned loops = 0;
    std::vector<std::string> pendingPatches; // placed at next block start

    unsigned reg() { return kDataRegs[rng() % std::size(kDataRegs)]; }

    /** Exception-free non-control filler, safe in a delay slot. */
    void safeOp()
    {
        unsigned r = reg(), a = reg(), b = reg();
        switch (rng() % 8) {
          case 0: as.addu(r, a, b); break;
          case 1: as.subu(r, a, b); break;
          case 2: as.xor_(r, a, b); break;
          case 3: as.and_(r, a, b); break;
          case 4: as.or_(r, a, b); break;
          case 5: as.sll(r, a, rng() % 32); break;
          case 6: as.addiu(r, a, SWord(rng() % 4096) - 2048); break;
          default: as.sltu(r, a, b); break;
        }
    }

    /** Mostly safe; sometimes a misaligned load so exceptions are
     *  raised from branch delay slots. */
    void delaySlot()
    {
        if (rng() % 5 == 0)
            as.lw(reg(), SWord(1 + 2 * (rng() % 2)), T9);
        else
            safeOp();
    }

    void memOp()
    {
        unsigned r = reg();
        SWord off = SWord(4 * (rng() % 60));
        if (rng() % 8 == 0)
            off += 1 + SWord(rng() % 3); // misaligned word/half access
        switch (rng() % 8) {
          case 0: as.lw(r, off, T9); break;
          case 1: as.sw(r, off, T9); break;
          case 2: as.lh(r, off & ~1, T9); break;
          case 3: as.lhu(r, off, T9); break;
          case 4: as.lb(r, off, T9); break;
          case 5: as.lbu(r, off, T9); break;
          case 6: as.sh(r, off, T9); break;
          default: as.sb(r, off, T9); break;
        }
    }

    void multDiv()
    {
        unsigned a = reg(), b = reg();
        switch (rng() % 8) {
          case 0: as.mult(a, b); break;
          case 1: as.multu(a, b); break;
          case 2: as.div(a, b); break;
          case 3: as.divu(a, b); break;
          case 4: as.mfhi(reg()); break;
          case 5: as.mflo(reg()); break;
          case 6: as.mthi(a); break;
          default: as.mtlo(a); break;
        }
    }

    void branchTo(const std::string &target)
    {
        unsigned a = reg(), b = reg();
        switch (rng() % 6) {
          case 0: as.beq(a, b, target); break;
          case 1: as.bne(a, b, target); break;
          case 2: as.blez(a, target); break;
          case 3: as.bgtz(a, target); break;
          case 4: as.bltz(a, target); break;
          default: as.bgez(a, target); break;
        }
        delaySlot();
    }

    /** A bounded counted loop: the only backward control flow. */
    void boundedLoop()
    {
        std::string head = "loop" + std::to_string(loops++);
        as.li(S7, 2 + rng() % 5);
        as.label(head);
        unsigned n = 1 + rng() % 3;
        for (unsigned i = 0; i < n; i++)
            safeOp();
        as.addiu(S7, S7, -1);
        as.bne(S7, Zero, head);
        delaySlot();
    }

    /** Rewrite a random TLB entry, then access kuseg through it. The
     *  entry is sometimes read-only (store -> Mod fault) and
     *  sometimes invalid (access faults); the skip handlers step
     *  over the faulting access either way. */
    void tlbSequence()
    {
        unsigned t = reg(), u = reg();
        Word lo = (kMapFrame & entrylo::PfnMask) | entrylo::V;
        if (rng() % 2)
            lo |= entrylo::D;
        if (rng() % 4 == 0)
            lo &= ~Word(entrylo::V);
        as.li32(t, kMapVa & entryhi::VpnMask); // asid 0 = current
        as.mtc0(t, cp0reg::EntryHi);
        as.li32(t, lo);
        as.mtc0(t, cp0reg::EntryLo);
        if (rng() % 4 == 0) {
            as.tlbwr();
        } else {
            as.li32(t, (8 + rng() % 56) << 8);
            as.mtc0(t, cp0reg::Index);
            as.tlbwi();
        }
        if (rng() % 4 == 0) {
            as.tlbp();
            as.tlbr();
        }
        as.li32(u, kMapVa);
        if (rng() % 2)
            as.sw(reg(), SWord(4 * (rng() % 16)), u);
        else
            as.lw(reg(), SWord(4 * (rng() % 16)), u);
    }

    /** Store a fresh (harmless) instruction over a nop a few blocks
     *  ahead, inside the page currently being executed: the fast
     *  path must re-decode before reaching it. */
    void patchAhead()
    {
        std::string site = "patch" + std::to_string(patches++);
        unsigned r = reg();
        as.la(T8, site);
        as.li32(r, enc::addiu(reg(), reg(), SWord(rng() % 64)));
        as.sw(r, 0, T8);
        pendingPatches.push_back(site);
    }

    void emitBlock(const std::string &next)
    {
        for (const std::string &site : pendingPatches) {
            as.label(site);
            as.nop(); // overwritten by the earlier store
        }
        pendingPatches.clear();

        unsigned n = 2 + rng() % 5;
        for (unsigned i = 0; i < n; i++) {
            unsigned kind = rng() % 100;
            if (kind < 40) {
                safeOp();
            } else if (kind < 55) {
                memOp();
            } else if (kind < 65) {
                multDiv();
            } else if (kind < 72) {
                // overflow-prone signed arithmetic (Ov is skipped)
                unsigned a = reg(), b = reg();
                as.li32(a, 0x7fffff00u + rng() % 512);
                as.li32(b, rng() % 1024);
                if (rng() % 2)
                    as.add(reg(), a, b);
                else
                    as.addi(reg(), a, SWord(rng() % 2048));
            } else if (kind < 79) {
                boundedLoop();
            } else if (kind < 86) {
                tlbSequence();
            } else if (kind < 93) {
                patchAhead();
            } else if (i > 0) {
                break; // end the block early
            } else {
                safeOp(); // keep every block non-empty
            }
        }
        if (rng() % 3 == 0) {
            as.j(next);
            delaySlot();
        } else {
            branchTo(next);
        }
    }
};

inline Program
buildFuzzProgram(unsigned seed)
{
    std::mt19937 rng(seed);
    Assembler as(testutil::kTestOrigin);
    FuzzGen gen{as, rng, 0, 0, {}};

    as.la(T9, "buf");
    for (unsigned r : kDataRegs)
        as.li32(r, rng());

    unsigned blocks = 6 + rng() % 10;
    for (unsigned b = 0; b < blocks; b++) {
        as.label("B" + std::to_string(b));
        gen.emitBlock("B" + std::to_string(b + 1));
    }
    as.label("B" + std::to_string(blocks));
    for (const std::string &site : gen.pendingPatches) {
        as.label(site);
        as.nop();
    }
    as.hcall(0);
    as.align(8);
    as.label("buf");
    as.space(256);
    return as.finalize();
}

inline void
installFuzzSkipHandlers(Machine &m)
{
    for (Addr vector : {Cpu::RefillVector, Cpu::GeneralVector}) {
        Assembler a(vector);
        a.mfc0(K0, cp0reg::Epc);
        a.addiu(K0, K0, 4);
        a.jr(K0);
        a.rfe(); // delay slot
        m.load(a.finalize());
    }
}

inline void
expectLockstepState(Machine &ref, Machine &fst)
{
    const Cpu &rc = ref.cpu();
    const Cpu &fc = fst.cpu();
    for (unsigned r = 0; r < NumRegs; r++)
        EXPECT_EQ(rc.reg(r), fc.reg(r)) << "GPR " << regName(r);
    EXPECT_EQ(rc.hi(), fc.hi());
    EXPECT_EQ(rc.lo(), fc.lo());
    EXPECT_EQ(rc.pc(), fc.pc());
    EXPECT_EQ(rc.npc(), fc.npc());

    static const unsigned cp0_regs[] = {
        cp0reg::Index, cp0reg::Random, cp0reg::EntryLo, cp0reg::Context,
        cp0reg::BadVAddr, cp0reg::EntryHi, cp0reg::Status, cp0reg::Cause,
        cp0reg::Epc,
    };
    for (unsigned r : cp0_regs)
        EXPECT_EQ(rc.cp0().read(r), fc.cp0().read(r)) << "CP0 reg " << r;

    for (unsigned i = 0; i < Tlb::NumEntries; i++) {
        EXPECT_EQ(rc.tlb().entry(i).hi, fc.tlb().entry(i).hi)
            << "TLB entry " << i;
        EXPECT_EQ(rc.tlb().entry(i).lo, fc.tlb().entry(i).lo)
            << "TLB entry " << i;
    }

    const CpuStats &rs = rc.stats();
    const CpuStats &fs = fc.stats();
    EXPECT_EQ(rs.instructions, fs.instructions);
    EXPECT_EQ(rs.cycles, fs.cycles);
    EXPECT_EQ(rs.branches, fs.branches);
    EXPECT_EQ(rs.exceptionsTaken, fs.exceptionsTaken);
    for (unsigned c = 0; c < NumExcCodes; c++)
        EXPECT_EQ(rs.perExcCode[c], fs.perExcCode[c]) << "exc code " << c;
    EXPECT_EQ(rc.tlb().stats().lookups, fc.tlb().stats().lookups);
    EXPECT_EQ(rc.tlb().stats().misses, fc.tlb().stats().misses);

    ASSERT_EQ(ref.mem().size(), fst.mem().size());
    std::vector<Word> rmem(ref.mem().size() / 4);
    std::vector<Word> fmem(fst.mem().size() / 4);
    ref.mem().readBlock(0, rmem.data(), ref.mem().size());
    fst.mem().readBlock(0, fmem.data(), fst.mem().size());
    unsigned reported = 0;
    for (std::size_t i = 0; i < rmem.size() && reported < 4; i++) {
        if (rmem[i] != fmem[i]) {
            ADD_FAILURE() << "memory differs at paddr 0x" << std::hex
                          << (i * 4) << ": ref 0x" << rmem[i]
                          << " fast 0x" << fmem[i];
            reported++;
        }
    }
}

} // namespace uexc::sim::fuzzutil

#endif // UEXC_TESTS_FUZZ_UTIL_H
