/**
 * @file
 * Tests for the unaligned-pointer runtime techniques: unbounded
 * lists, futures, and full/empty-bit synchronization.
 */

#include <gtest/gtest.h>

#include "apps/lazy/lazy.h"
#include "os_test_util.h"

namespace uexc::apps {
namespace {

using namespace os::testutil;
using rt::DeliveryMode;
using rt::UserEnv;

constexpr Addr kArena = 0x30000000;

struct LazySetup
{
    explicit LazySetup(DeliveryMode mode = DeliveryMode::FastSoftware)
        : booted(osMachineConfig(true)), env(booted.kernel, mode),
          arena((env.install(kAllExcMask), env), kArena, 1 << 20)
    {
    }

    BootedKernel booted;
    UserEnv env;
    LazyArena arena;
};

TEST(UnboundedList, ElementsMaterializeOnDemand)
{
    LazySetup s;
    UnboundedList squares(s.arena,
                          [](unsigned i) { return i * i; });
    EXPECT_EQ(squares.materialized(), 1u);

    Addr cell = squares.head();
    for (unsigned i = 0; i < 20; i++) {
        EXPECT_EQ(squares.datum(cell), i * i);
        cell = squares.next(cell);
    }
    EXPECT_EQ(squares.materialized(), 21u);
    EXPECT_EQ(squares.faults(), 20u);
}

TEST(UnboundedList, RewalkingUsesNoFaults)
{
    LazySetup s;
    UnboundedList list(s.arena, [](unsigned i) { return i; });
    Addr cell = list.head();
    for (int i = 0; i < 10; i++)
        cell = list.next(cell);
    std::uint64_t faults = list.faults();
    // second walk over the materialized prefix: no new faults
    cell = list.head();
    for (int i = 0; i < 10; i++)
        cell = list.next(cell);
    EXPECT_EQ(list.faults(), faults);
}

TEST(UnboundedList, WorksUnderUltrixSignalsToo)
{
    LazySetup s(DeliveryMode::UltrixSignal);
    UnboundedList list(s.arena, [](unsigned i) { return 2 * i; });
    Addr cell = list.head();
    for (unsigned i = 0; i < 5; i++) {
        EXPECT_EQ(list.datum(cell), 2 * i);
        cell = list.next(cell);
    }
    EXPECT_EQ(list.faults(), 5u);
}

TEST(Future, TouchForcesProducer)
{
    LazySetup s;
    int runs = 0;
    FutureCell fut(s.arena, [&]() {
        runs++;
        return Word{4242};
    });
    EXPECT_FALSE(fut.resolved());
    EXPECT_EQ(fut.value(), 4242u);
    EXPECT_TRUE(fut.resolved());
    EXPECT_EQ(runs, 1);
    EXPECT_EQ(fut.faults(), 1u);
    // subsequent reads are plain loads
    EXPECT_EQ(fut.value(), 4242u);
    EXPECT_EQ(fut.faults(), 1u);
    EXPECT_EQ(runs, 1);
}

TEST(Future, ExplicitResolveAvoidsFaults)
{
    LazySetup s;
    FutureCell fut(s.arena, []() { return Word{7}; });
    fut.resolve();
    EXPECT_EQ(fut.value(), 7u);
    EXPECT_EQ(fut.faults(), 0u);
}

TEST(FullEmpty, EmptyReadTriggersFiller)
{
    LazySetup s;
    int fills = 0;
    FullEmptyCell cell(s.arena, [&]() {
        fills++;
        return Word{11};
    });
    EXPECT_FALSE(cell.full());
    EXPECT_EQ(cell.read(), 11u);
    EXPECT_TRUE(cell.full());
    EXPECT_EQ(fills, 1);
    EXPECT_EQ(cell.faults(), 1u);
}

TEST(FullEmpty, WriteThenReadNoFault)
{
    LazySetup s;
    FullEmptyCell cell(s.arena, []() { return Word{0}; });
    cell.write(99);
    EXPECT_EQ(cell.read(), 99u);
    EXPECT_EQ(cell.faults(), 0u);
}

TEST(FullEmpty, TakeEmptiesTheCell)
{
    LazySetup s;
    int fills = 0;
    FullEmptyCell cell(s.arena, [&]() { return Word(++fills); });
    cell.write(5);
    EXPECT_EQ(cell.take(), 5u);
    EXPECT_FALSE(cell.full());
    // next read refills through the fault path
    EXPECT_EQ(cell.read(), 1u);
    EXPECT_EQ(cell.faults(), 1u);
}

TEST(LazyCost, FaultCostDependsOnDeliveryMechanism)
{
    auto walk_cycles = [](DeliveryMode mode) {
        LazySetup s(mode);
        UnboundedList list(s.arena, [](unsigned i) { return i; });
        Cycles before = s.env.cycles();
        Addr cell = list.head();
        for (int i = 0; i < 50; i++)
            cell = list.next(cell);
        return s.env.cycles() - before;
    };
    Cycles fast = walk_cycles(DeliveryMode::FastSoftware);
    Cycles ultrix = walk_cycles(DeliveryMode::UltrixSignal);
    EXPECT_LT(fast, ultrix / 2);
}

} // namespace
} // namespace uexc::apps
