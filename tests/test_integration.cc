/**
 * @file
 * Whole-system integration tests: several exception-driven runtime
 * systems exercised back to back, with machine-level invariants
 * checked afterwards (TLB entries must agree with the page tables,
 * cycle accounting must be monotonic and attributed), plus the
 * umbrella header's compile coverage.
 */

#include <gtest/gtest.h>

#include "uexc.h"

#include "os_test_util.h"

namespace uexc {
namespace {

using namespace os::testutil;
using apps::BarrierKind;
using apps::Collector;
using apps::ObjectStore;
using apps::Oid;
using apps::PField;
using apps::SwizzleMode;
using apps::WatchpointEngine;
using rt::DeliveryMode;
using rt::UserEnv;

/**
 * Invariant: every valid TLB entry for the process maps the same
 * frame with no more rights than its PTE grants. (Eager amplification
 * updates PTE and TLB together; TLBMP can make the TLB *more*
 * restrictive than the PTE, never the opposite direction for V/D
 * amplification without the PTE update — the kernel's design.)
 */
void
expectTlbCoherent(os::Kernel &kernel, os::Process &proc)
{
    const sim::Tlb &tlb = kernel.machine().cpu().tlb();
    for (unsigned i = 0; i < sim::Tlb::NumEntries; i++) {
        const sim::TlbEntry &e = tlb.entry(i);
        if (!e.valid() || e.vpn() >= sim::Cpu::Kseg0Base)
            continue;
        if (e.asid() != proc.asid() && !e.global())
            continue;
        ASSERT_TRUE(proc.as().present(e.vpn()))
            << "TLB maps unbacked page 0x" << std::hex << e.vpn();
        EXPECT_EQ(e.pfn(), proc.as().frameOf(e.vpn()))
            << "TLB/PTE frame mismatch at 0x" << std::hex << e.vpn();
    }
}

TEST(Integration, GcWorkloadLeavesMachineCoherent)
{
    BootedKernel bk(osMachineConfig(true));
    UserEnv env(bk.kernel, DeliveryMode::FastSoftware);
    env.install(kAllExcMask);
    apps::GcWorkloadParams params;
    params.lispIterations = 40;
    params.lispTreeDepth = 8;
    params.youngBudgetBytes = 32 * 1024;
    apps::GcRunResult r =
        apps::runLispOps(env, BarrierKind::PageProtection, params);
    EXPECT_GT(r.gc.collections, 2u);
    EXPECT_GT(r.gc.barrierFaults, 10u);
    expectTlbCoherent(bk.kernel, env.process());
}

TEST(Integration, CycleAccountingIsMonotonicAcrossSubsystems)
{
    BootedKernel bk(osMachineConfig(true));
    UserEnv env(bk.kernel, DeliveryMode::FastSoftware);
    env.install(kAllExcMask);

    Cycles c0 = env.cycles();
    env.allocate(0x10000000, os::kPageBytes);
    env.store(0x10000000, 1);
    Cycles c1 = env.cycles();
    EXPECT_GT(c1, c0);

    env.setHandler([&](rt::Fault &f) { f.resumeAt(f.pc() + 4); });
    env.protect(0x10000000, os::kPageBytes, os::kProtRead);
    Cycles c2 = env.cycles();
    EXPECT_GT(c2, c1);
    env.store(0x10000000, 2);
    Cycles c3 = env.cycles();
    EXPECT_GT(c3, c2);
    // the fault cost far exceeds a plain store
    EXPECT_GT(c3 - c2, 10 * (c1 - c0));
}

TEST(Integration, SequentialRuntimesOnFreshKernels)
{
    // GC, then object store, then watchpoints: each on a fresh
    // machine; all complete and agree on their own invariants
    {
        BootedKernel bk(osMachineConfig(true));
        UserEnv env(bk.kernel, DeliveryMode::FastSoftware);
        env.install(kAllExcMask);
        Collector::Config cfg;
        Collector gc(env, cfg);
        Addr keep = gc.alloc(2);
        gc.setRoot(0, keep);
        for (int i = 0; i < 500; i++)
            gc.alloc(4);
        gc.collect();
        EXPECT_TRUE(gc.isObject(keep));
        expectTlbCoherent(bk.kernel, env.process());
    }
    {
        BootedKernel bk(osMachineConfig(true));
        UserEnv env(bk.kernel, DeliveryMode::FastSoftware);
        env.install(kAllExcMask);
        ObjectStore::Config cfg;
        cfg.mode = SwizzleMode::LazyExceptions;
        ObjectStore store(env, cfg);
        Oid b = store.createObject({{false, 9}});
        Oid a = store.createObject({{true, b}});
        Addr pa = store.pin(a);
        Addr pb = store.deref(pa, 0);
        EXPECT_EQ(store.readData(pb, 0), 9u);
        expectTlbCoherent(bk.kernel, env.process());
    }
    {
        BootedKernel bk(osMachineConfig(true));
        UserEnv env(bk.kernel, DeliveryMode::FastSoftware);
        env.install(kAllExcMask);
        env.allocate(0x10000000, os::kPageBytes);
        WatchpointEngine watch(env);
        unsigned hits = 0;
        watch.watch(0x10000000, [&](Addr, Word, Word) { hits++; });
        for (int i = 0; i < 3; i++)
            watch.store(0x10000000, i);
        EXPECT_EQ(hits, 3u);
        expectTlbCoherent(bk.kernel, env.process());
    }
}

TEST(Integration, HardwareAndSoftwareModesProduceIdenticalResults)
{
    // functional equivalence: the same GC workload produces the same
    // allocation/collection/fault counts regardless of mechanism —
    // only the cycle cost differs
    apps::GcWorkloadParams params;
    params.lispIterations = 25;
    params.lispTreeDepth = 7;
    params.youngBudgetBytes = 16 * 1024;

    auto run = [&](DeliveryMode mode) {
        BootedKernel bk(osMachineConfig(true));
        UserEnv env(bk.kernel, mode);
        env.install(kAllExcMask);
        return apps::runLispOps(env, BarrierKind::PageProtection,
                                params);
    };
    apps::GcRunResult ultrix = run(DeliveryMode::UltrixSignal);
    apps::GcRunResult fast = run(DeliveryMode::FastSoftware);
    apps::GcRunResult hw = run(DeliveryMode::FastHardwareVector);

    EXPECT_EQ(ultrix.gc.allocations, fast.gc.allocations);
    EXPECT_EQ(fast.gc.allocations, hw.gc.allocations);
    EXPECT_EQ(ultrix.gc.collections, fast.gc.collections);
    EXPECT_EQ(ultrix.gc.objectsSwept, fast.gc.objectsSwept);
    EXPECT_EQ(fast.gc.objectsSwept, hw.gc.objectsSwept);
    EXPECT_LT(hw.cycles, fast.cycles);
    EXPECT_LT(fast.cycles, ultrix.cycles);
}

TEST(Integration, Table1ModelsConsumeMeasuredUltrixNumbers)
{
    // the pipeline the bench uses, end to end
    auto cfg = rt::micro::paperMachineConfig();
    auto ultrix = rt::micro::measure(rt::micro::Scenario::UltrixSimple,
                                     cfg);
    auto wp = rt::micro::measure(rt::micro::Scenario::UltrixWriteProt,
                                 cfg);
    auto models = os::table1Models(ultrix.deliverUs, ultrix.returnUs,
                                   wp.deliverUs);
    ASSERT_FALSE(models.empty());
    EXPECT_TRUE(models[0].measured);
    EXPECT_NEAR(models[0].roundTripUs(), ultrix.roundTripUs, 0.01);
}

} // namespace
} // namespace uexc
