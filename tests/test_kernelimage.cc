/**
 * @file
 * Static properties of the generated kernel image: vector placement,
 * exported symbols, and — the reproduction of Table 3's structure —
 * the per-phase instruction counts of the fast exception handler.
 */

#include <gtest/gtest.h>

#include "os/kernelimage.h"
#include "os/layout.h"
#include "sim/cpu.h"
#include "sim/isa.h"

namespace uexc::os {
namespace {

using sim::Program;
using uexc::Addr;
using uexc::Word;

class KernelImage : public ::testing::Test
{
  protected:
    static void SetUpTestSuite() { image_ = new Program(buildKernelImage()); }
    static void TearDownTestSuite()
    {
        delete image_;
        image_ = nullptr;
    }

    static Program *image_;

    unsigned
    phaseInsts(const char *begin, const char *end) const
    {
        return (image_->symbol(end) - image_->symbol(begin)) / 4;
    }
};

Program *KernelImage::image_ = nullptr;

TEST_F(KernelImage, RefillHandlerAtRefillVector)
{
    EXPECT_EQ(image_->origin, sim::Cpu::RefillVector);
    EXPECT_EQ(image_->symbol(ksym::RefillHandler),
              sim::Cpu::RefillVector);
    // it must fit in the 0x80-byte slot before the general vector
    EXPECT_LE(image_->symbol(ksym::RefillEnd),
              sim::Cpu::GeneralVector);
}

TEST_F(KernelImage, FastPathBeginsAtGeneralVector)
{
    EXPECT_EQ(image_->symbol(ksym::FastDecode),
              sim::Cpu::GeneralVector);
}

TEST_F(KernelImage, Table3PhaseInstructionCounts)
{
    // Table 3 of the paper: the kernel fast handler's phase breakdown
    EXPECT_EQ(phaseInsts(ksym::FastDecode, ksym::FastCompat), 6u)
        << "decode exception";
    EXPECT_EQ(phaseInsts(ksym::FastCompat, ksym::FastSave), 11u)
        << "compatibility check";
    EXPECT_EQ(phaseInsts(ksym::FastSave, ksym::FastFp), 31u)
        << "save partial state";
    EXPECT_EQ(phaseInsts(ksym::FastFp, ksym::FastTlbCheck), 6u)
        << "floating point check";
    EXPECT_EQ(phaseInsts(ksym::FastTlbCheck, ksym::FastVector), 8u)
        << "check for TLB fault";
    EXPECT_EQ(phaseInsts(ksym::FastVector, ksym::FastEnd), 3u)
        << "vector to user";
    EXPECT_EQ(phaseInsts(ksym::FastDecode, ksym::FastEnd), 65u)
        << "total (paper: 65 instructions)";
}

TEST_F(KernelImage, ExportedSymbolsPresent)
{
    for (const char *name :
         {ksym::Curproc, ksym::SigXlate, ksym::StockPath,
          ksym::StockEnd, ksym::TlbFault, ksym::SubpagePath}) {
        EXPECT_TRUE(image_->hasSymbol(name)) << name;
    }
}

TEST_F(KernelImage, SignalTranslationTable)
{
    auto xlate_at = [&](unsigned code) {
        Addr addr = image_->symbol(ksym::SigXlate) + 4 * code;
        return image_->words[(addr - image_->origin) / 4];
    };
    EXPECT_EQ(xlate_at(1), kSigsegv);   // Mod
    EXPECT_EQ(xlate_at(4), kSigbus);    // AdEL
    EXPECT_EQ(xlate_at(9), kSigtrap);   // Bp
    EXPECT_EQ(xlate_at(10), kSigill);   // RI
    EXPECT_EQ(xlate_at(12), kSigfpe);   // Ov
    EXPECT_EQ(xlate_at(0), 0u);         // Int: no signal
    EXPECT_EQ(xlate_at(8), 0u);         // Sys: syscall path
}

TEST_F(KernelImage, AllWordsDecodeOrAreData)
{
    // every word in the text region (before kernel data) decodes to a
    // valid instruction
    Addr text_end = image_->symbol(ksym::Curproc);
    unsigned invalid = 0;
    for (Addr a = image_->origin; a < text_end; a += 4) {
        Word w = image_->words[(a - image_->origin) / 4];
        if (sim::decode(w).op == sim::Op::Invalid) {
            // the syscall dispatch table is data inside text
            invalid++;
        }
    }
    // allow only the 16-entry syscall table to look like data
    EXPECT_LE(invalid, 16u);
}

} // namespace
} // namespace uexc::os
