/**
 * @file
 * Shared fixtures for OS-layer and runtime-layer tests: a booted
 * machine+kernel, optionally with the paper's hardware extensions.
 */

#ifndef UEXC_TESTS_OS_TEST_UTIL_H
#define UEXC_TESTS_OS_TEST_UTIL_H

#include "core/env.h"
#include "os/kernel.h"
#include "sim/machine.h"

namespace uexc::os::testutil {

inline sim::MachineConfig
osMachineConfig(bool hw_extensions = false, bool caches = false)
{
    sim::MachineConfig cfg;
    cfg.cpu.userVectorHw = hw_extensions;
    cfg.cpu.tlbmpHw = hw_extensions;
    cfg.cpu.cachesEnabled = caches;
    return cfg;
}

/** A booted machine + kernel. */
struct BootedKernel
{
    explicit BootedKernel(const sim::MachineConfig &cfg =
                              osMachineConfig())
        : machine(cfg), kernel(machine)
    {
        kernel.boot();
    }

    sim::Machine machine;
    Kernel kernel;
};

/** The default fast-exception mask used by tests: everything the
 *  kernel permits (Int and Sys are stripped by uexc_enable). */
constexpr Word kAllExcMask = 0xffff;

} // namespace uexc::os::testutil

#endif // UEXC_TESTS_OS_TEST_UTIL_H
