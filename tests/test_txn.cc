/**
 * @file
 * Tests for the protection-based transaction region: atomicity of
 * abort, cheapness of commit, first-touch-only logging, and
 * behaviour across delivery mechanisms.
 */

#include <gtest/gtest.h>

#include "apps/txn/txn.h"
#include "common/logging.h"
#include "os_test_util.h"

namespace uexc::apps {
namespace {

using namespace os::testutil;
using rt::DeliveryMode;
using rt::UserEnv;

constexpr Addr kBase = 0x10000000;
constexpr Word kBytes = 4 * os::kPageBytes;

struct TxnSetup
{
    explicit TxnSetup(DeliveryMode mode = DeliveryMode::FastSoftware)
        : booted(osMachineConfig(true)), env(booted.kernel, mode),
          region((env.install(kAllExcMask), env), kBase, kBytes)
    {
    }

    BootedKernel booted;
    UserEnv env;
    TxnRegion region;
};

TEST(Txn, CommitKeepsChanges)
{
    TxnSetup s;
    s.region.store(kBase, 1);
    s.region.begin();
    s.region.store(kBase, 42);
    s.region.store(kBase + 8, 43);
    s.region.commit();
    EXPECT_EQ(s.region.load(kBase), 42u);
    EXPECT_EQ(s.region.load(kBase + 8), 43u);
    EXPECT_EQ(s.region.stats().committed, 1u);
}

TEST(Txn, AbortRestoresBeforeImages)
{
    TxnSetup s;
    s.region.store(kBase, 100);
    s.region.store(kBase + os::kPageBytes, 200);
    s.region.begin();
    s.region.store(kBase, 1);
    s.region.store(kBase + 4, 2);
    s.region.store(kBase + os::kPageBytes, 3);
    EXPECT_EQ(s.region.dirtyPages(), 2u);
    s.region.abort();
    EXPECT_EQ(s.region.load(kBase), 100u);
    EXPECT_EQ(s.region.load(kBase + 4), 0u);
    EXPECT_EQ(s.region.load(kBase + os::kPageBytes), 200u);
    EXPECT_EQ(s.region.stats().pagesRestored, 2u);
}

TEST(Txn, OnlyFirstTouchFaults)
{
    TxnSetup s;
    s.region.begin();
    for (int i = 0; i < 100; i++)
        s.region.store(kBase + 4 * i, i);   // one page, many stores
    EXPECT_EQ(s.region.stats().pageFaults, 1u);
    EXPECT_EQ(s.region.dirtyPages(), 1u);
    s.region.commit();
}

TEST(Txn, UntouchedPagesAreNotLogged)
{
    TxnSetup s;
    s.region.begin();
    s.region.store(kBase + 2 * os::kPageBytes, 9);
    s.region.commit();
    EXPECT_EQ(s.region.stats().pagesLogged, 1u);
}

TEST(Txn, ReadsNeverFault)
{
    TxnSetup s;
    s.region.store(kBase + 0x100, 7);
    s.region.begin();
    for (int i = 0; i < 50; i++)
        EXPECT_EQ(s.region.load(kBase + 0x100), 7u);
    EXPECT_EQ(s.region.stats().pageFaults, 0u);
    s.region.commit();
}

TEST(Txn, SequentialTransactionsRearmDetection)
{
    TxnSetup s;
    for (Word t = 0; t < 4; t++) {
        s.region.begin();
        s.region.store(kBase, t);
        s.region.commit();
    }
    EXPECT_EQ(s.region.stats().pageFaults, 4u);   // re-armed each time
    EXPECT_EQ(s.region.load(kBase), 3u);
}

TEST(Txn, AbortAfterCommitSequence)
{
    TxnSetup s;
    s.region.begin();
    s.region.store(kBase, 5);
    s.region.commit();
    s.region.begin();
    s.region.store(kBase, 6);
    s.region.abort();
    EXPECT_EQ(s.region.load(kBase), 5u);
}

TEST(Txn, MisuseIsFatal)
{
    setLoggingEnabled(false);
    TxnSetup s;
    EXPECT_THROW(s.region.commit(), FatalError);
    EXPECT_THROW(s.region.abort(), FatalError);
    s.region.begin();
    EXPECT_THROW(s.region.begin(), FatalError);
    EXPECT_THROW(s.region.store(kBase - 4, 0), FatalError);
    EXPECT_THROW(s.region.store(kBase + kBytes, 0), FatalError);
    s.region.commit();
    setLoggingEnabled(true);
}

class TxnModes : public ::testing::TestWithParam<DeliveryMode> {};

TEST_P(TxnModes, AtomicityHoldsUnderEveryMechanism)
{
    TxnSetup s(GetParam());
    s.region.store(kBase + 8, 0xaaaa);
    s.region.begin();
    s.region.store(kBase + 8, 0xbbbb);
    s.region.store(kBase + os::kPageBytes + 4, 0xcccc);
    s.region.abort();
    EXPECT_EQ(s.region.load(kBase + 8), 0xaaaau);
    EXPECT_EQ(s.region.load(kBase + os::kPageBytes + 4), 0u);

    s.region.begin();
    s.region.store(kBase + 8, 0xdddd);
    s.region.commit();
    EXPECT_EQ(s.region.load(kBase + 8), 0xddddu);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, TxnModes,
    ::testing::Values(DeliveryMode::UltrixSignal,
                      DeliveryMode::FastSoftware,
                      DeliveryMode::FastHardwareVector),
    [](const ::testing::TestParamInfo<DeliveryMode> &info) {
        switch (info.param) {
          case DeliveryMode::UltrixSignal: return "Ultrix";
          case DeliveryMode::FastSoftware: return "FastSw";
          default: return "FastHw";
        }
    });

TEST(TxnCost, LoggingDominatesDispatchUnlikeTheGcBarrier)
{
    // the paper's trade-off intuition: when the per-fault *work* is
    // large (a 4 KB before-image copy), the dispatch mechanism is a
    // smaller fraction — the fast scheme still wins, but by less
    // than its microbenchmark ratio
    auto cost = [](DeliveryMode mode) {
        TxnSetup s(mode);
        s.region.begin();
        s.region.store(kBase, 0);   // warm one logging fault
        s.region.commit();
        Cycles before = s.env.cycles();
        s.region.begin();
        for (unsigned p = 0; p < 4; p++)
            s.region.store(kBase + p * os::kPageBytes, p);
        s.region.commit();
        return s.env.cycles() - before;
    };
    Cycles ultrix = cost(DeliveryMode::UltrixSignal);
    Cycles fast = cost(DeliveryMode::FastSoftware);
    EXPECT_LT(fast, ultrix);
    double ratio = static_cast<double>(ultrix) / fast;
    EXPECT_LT(ratio, 5.0);   // much less than the 10x dispatch ratio
    EXPECT_GT(ratio, 1.05);
}

} // namespace
} // namespace uexc::apps
