/**
 * @file
 * Unit tests for PhysMemory.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/memory.h"

namespace uexc::sim {
namespace {

class QuietMemory : public ::testing::Test
{
  protected:
    void SetUp() override { setLoggingEnabled(false); }
    void TearDown() override { setLoggingEnabled(true); }
};

TEST(PhysMemory, StartsZeroed)
{
    PhysMemory mem(4096);
    for (Addr a = 0; a < 4096; a += 4)
        EXPECT_EQ(mem.readWord(a), 0u);
}

TEST(PhysMemory, WordRoundTrip)
{
    PhysMemory mem(4096);
    mem.writeWord(0x100, 0xdeadbeefu);
    EXPECT_EQ(mem.readWord(0x100), 0xdeadbeefu);
}

TEST(PhysMemory, SubWordAccess)
{
    PhysMemory mem(4096);
    mem.writeWord(0x10, 0x11223344u);
    // little-endian host layout (simulated machine is little-endian)
    EXPECT_EQ(mem.readByte(0x10), 0x44u);
    EXPECT_EQ(mem.readByte(0x13), 0x11u);
    EXPECT_EQ(mem.readHalf(0x10), 0x3344u);
    EXPECT_EQ(mem.readHalf(0x12), 0x1122u);

    mem.writeByte(0x10, 0xffu);
    EXPECT_EQ(mem.readWord(0x10), 0x112233ffu);
    mem.writeHalf(0x12, 0xaabbu);
    EXPECT_EQ(mem.readWord(0x10), 0xaabb33ffu);
}

TEST(PhysMemory, BlockCopy)
{
    PhysMemory mem(4096);
    Word data[3] = {1, 2, 3};
    mem.writeBlock(0x40, data, sizeof(data));
    EXPECT_EQ(mem.readWord(0x40), 1u);
    EXPECT_EQ(mem.readWord(0x48), 3u);

    Word out[3] = {};
    mem.readBlock(0x40, out, sizeof(out));
    EXPECT_EQ(out[1], 2u);
}

TEST(PhysMemory, ClearRange)
{
    PhysMemory mem(4096);
    mem.writeWord(0x20, 0xffffffffu);
    mem.writeWord(0x24, 0xffffffffu);
    mem.clearRange(0x20, 8);
    EXPECT_EQ(mem.readWord(0x20), 0u);
    EXPECT_EQ(mem.readWord(0x24), 0u);
}

TEST_F(QuietMemory, OutOfRangeIsPanic)
{
    PhysMemory mem(4096);
    EXPECT_THROW(mem.readWord(4096), PanicError);
    EXPECT_THROW(mem.writeWord(4096, 0), PanicError);
    EXPECT_THROW(mem.readWord(0xfffffffcu), PanicError);
}

TEST_F(QuietMemory, UnalignedPhysicalAccessIsPanic)
{
    // unaligned accesses must be caught by the CPU as guest
    // exceptions before reaching physical memory
    PhysMemory mem(4096);
    EXPECT_THROW(mem.readWord(2), PanicError);
    EXPECT_THROW(mem.readHalf(1), PanicError);
    EXPECT_THROW(mem.writeWord(6, 0), PanicError);
}

TEST_F(QuietMemory, ZeroOrOddSizeIsFatal)
{
    EXPECT_THROW(PhysMemory(0), FatalError);
    EXPECT_THROW(PhysMemory(4095), FatalError);
}

} // namespace
} // namespace uexc::sim
