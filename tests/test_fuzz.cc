/**
 * @file
 * Differential (shadow-model) randomized tests:
 *
 *  - the generational collector against a host-side reference heap:
 *    after arbitrary interleavings of allocation, mutation and
 *    collection, every object reachable in the reference model must
 *    survive with identical contents;
 *  - the DSM cluster against a flat shadow memory: sequential
 *    consistency of random reads/writes across nodes;
 *  - the object store: all three swizzling strategies must return
 *    identical data for an identical random workload.
 */

#include <gtest/gtest.h>

#include <random>
#include <unordered_map>
#include <unordered_set>

#include "apps/dsm/dsm.h"
#include "apps/gc/gc.h"
#include "apps/swizzle/swizzler.h"
#include "os_test_util.h"

namespace uexc::apps {
namespace {

using namespace os::testutil;
using rt::DeliveryMode;
using rt::UserEnv;

// -- GC vs reference heap ----------------------------------------------------

struct ShadowHeap
{
    struct Obj
    {
        std::vector<Word> words;
    };
    std::unordered_map<Addr, Obj> objects;
    std::vector<Addr> roots = std::vector<Addr>(8, 0);

    std::unordered_set<Addr>
    reachable() const
    {
        std::unordered_set<Addr> seen;
        std::vector<Addr> stack;
        for (Addr r : roots) {
            if (objects.count(r) && seen.insert(r).second)
                stack.push_back(r);
        }
        while (!stack.empty()) {
            Addr p = stack.back();
            stack.pop_back();
            for (Word w : objects.at(p).words) {
                if (objects.count(w) && seen.insert(w).second)
                    stack.push_back(w);
            }
        }
        return seen;
    }
};

/** (seed, delivery mode, fast interpreter) */
class GcFuzz : public ::testing::TestWithParam<
                   std::tuple<unsigned, DeliveryMode, bool>> {};

TEST_P(GcFuzz, CollectorAgreesWithReferenceModel)
{
    sim::MachineConfig mcfg = osMachineConfig(true);
    mcfg.cpu.fastInterpreter = std::get<2>(GetParam());
    BootedKernel bk(mcfg);
    UserEnv env(bk.kernel, std::get<1>(GetParam()));
    env.install(kAllExcMask);
    Collector::Config cfg;
    cfg.youngBudgetBytes = 8 * 1024;   // frequent collections
    cfg.numRoots = 8;
    Collector gc(env, cfg);

    ShadowHeap shadow;
    std::vector<Addr> live;   // candidates for mutation
    std::mt19937 rng(std::get<0>(GetParam()));

    for (unsigned op = 0; op < 1500; op++) {
        unsigned kind = rng() % 100;
        if (kind < 45 || live.empty()) {
            // allocate and root it somewhere (or leak it as garbage)
            unsigned words = 1 + rng() % 4;
            Addr obj = gc.alloc(words);
            shadow.objects[obj].words.assign(words, 0);
            live.push_back(obj);
            if (rng() % 3 != 0) {
                unsigned slot = rng() % shadow.roots.size();
                gc.setRoot(slot, obj);
                shadow.roots[slot] = obj;
            }
        } else if (kind < 85) {
            // mutate: store a pointer or a datum into a live object
            Addr dst = live[rng() % live.size()];
            auto it = shadow.objects.find(dst);
            if (it == shadow.objects.end())
                continue;
            unsigned index = rng() % it->second.words.size();
            Word value;
            if (rng() % 2 && !live.empty()) {
                value = live[rng() % live.size()];
                if (!shadow.objects.count(value))
                    value = 0x1000 + (rng() % 1000) * 4;
            } else {
                value = 0x1000 + (rng() % 1000) * 4;  // plain datum
            }
            if (gc.isObject(dst)) {
                gc.writeWord(dst, index, value);
                it->second.words[index] = value;
            }
        } else if (kind < 92) {
            // drop a root
            unsigned slot = rng() % shadow.roots.size();
            gc.setRoot(slot, 0);
            shadow.roots[slot] = 0;
        } else {
            gc.collect();
            // prune the shadow and the candidate list to the
            // reference-reachable set (the collector may keep more
            // via conservative block promotion, never less)
            auto keep = shadow.reachable();
            for (auto it = shadow.objects.begin();
                 it != shadow.objects.end();) {
                if (!keep.count(it->first))
                    it = shadow.objects.erase(it);
                else
                    ++it;
            }
            live.assign(keep.begin(), keep.end());
        }
    }

    gc.collect();
    auto keep = shadow.reachable();
    for (Addr p : keep) {
        ASSERT_TRUE(gc.isObject(p))
            << "reachable object 0x" << std::hex << p << " was lost";
        const auto &words = shadow.objects.at(p).words;
        for (unsigned i = 0; i < words.size(); i++) {
            EXPECT_EQ(gc.readWord(p, i), words[i])
                << "content diverged at 0x" << std::hex << p << "+"
                << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, GcFuzz,
    ::testing::Values(
        std::make_tuple(7u, DeliveryMode::FastSoftware, false),
        std::make_tuple(42u, DeliveryMode::FastSoftware, false),
        std::make_tuple(1999u, DeliveryMode::UltrixSignal, false),
        std::make_tuple(31337u, DeliveryMode::FastHardwareVector, false),
        std::make_tuple(64738u, DeliveryMode::UltrixSignal, false),
        std::make_tuple(8128u, DeliveryMode::FastHardwareVector, false),
        // same workloads again on the predecoded fast interpreter
        std::make_tuple(7u, DeliveryMode::FastSoftware, true),
        std::make_tuple(1999u, DeliveryMode::UltrixSignal, true),
        std::make_tuple(31337u, DeliveryMode::FastHardwareVector, true)));

// -- DSM vs flat shadow memory --------------------------------------------------

/** (seed, fast interpreter) */
class DsmFuzz : public ::testing::TestWithParam<
                    std::pair<unsigned, bool>> {};

TEST_P(DsmFuzz, SequentiallyConsistentUnderRandomTraffic)
{
    constexpr Addr kBase = 0x40000000;
    DsmCluster::Config cfg;
    cfg.nodes = 3;
    cfg.bytes = 4 * os::kPageBytes;
    cfg.networkLatencyCycles = 500;
    cfg.fastInterpreter = GetParam().second;
    DsmCluster dsm(cfg);

    std::unordered_map<Addr, Word> shadow;
    std::mt19937 rng(GetParam().first);

    for (unsigned op = 0; op < 600; op++) {
        unsigned node = rng() % cfg.nodes;
        Addr addr = kBase + 4 * (rng() % (cfg.bytes / 4));
        if (rng() % 2) {
            Word value = rng();
            dsm.write(node, addr, value);
            shadow[addr] = value;
        } else {
            Word expect = shadow.count(addr) ? shadow[addr] : 0;
            ASSERT_EQ(dsm.read(node, addr), expect)
                << "node " << node << " addr 0x" << std::hex << addr;
        }
    }
    // final sweep: every node sees the final state everywhere
    for (unsigned node = 0; node < cfg.nodes; node++) {
        for (const auto &[addr, value] : shadow)
            ASSERT_EQ(dsm.read(node, addr), value);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DsmFuzz,
                         ::testing::Values(std::make_pair(11u, false),
                                           std::make_pair(222u, false),
                                           std::make_pair(3333u, false),
                                           std::make_pair(11u, true),
                                           std::make_pair(3333u, true)));

// -- swizzling strategy equivalence ------------------------------------------------

/** (seed, fast interpreter) */
class SwizzleFuzz : public ::testing::TestWithParam<
                        std::pair<unsigned, bool>> {};

TEST_P(SwizzleFuzz, AllStrategiesReturnIdenticalData)
{
    std::mt19937 graph_rng(GetParam().first);
    const unsigned n = 40;
    // a fixed random object graph description
    struct Desc
    {
        std::vector<PField> fields;
    };
    std::vector<Desc> descs(n);
    for (unsigned i = 0; i < n; i++) {
        for (unsigned d = 0; d < 3; d++)
            descs[i].fields.push_back(PField{false, graph_rng()});
        for (unsigned p = 0; p < 4; p++)
            descs[i].fields.push_back(
                PField{true, graph_rng() % n});
    }

    auto run = [&](SwizzleMode mode) {
        sim::MachineConfig mcfg = osMachineConfig(true);
        mcfg.cpu.fastInterpreter = GetParam().second;
        BootedKernel bk(mcfg);
        UserEnv env(bk.kernel, DeliveryMode::FastSoftware);
        env.install(kAllExcMask);
        ObjectStore::Config cfg;
        cfg.mode = mode;
        ObjectStore store(env, cfg);
        for (const Desc &d : descs)
            store.createObject(d.fields);

        // a deterministic random walk reading data along the way
        std::mt19937 walk_rng(GetParam().first ^ 0x5555);
        std::vector<Word> observed;
        Addr obj = store.pin(0);
        for (unsigned step = 0; step < 200; step++) {
            unsigned field = walk_rng() % 3;
            observed.push_back(store.readData(obj, field));
            obj = store.deref(obj, 3 + walk_rng() % 4);
        }
        return observed;
    };

    auto lazy_exc = run(SwizzleMode::LazyExceptions);
    auto lazy_chk = run(SwizzleMode::LazyChecks);
    auto eager = run(SwizzleMode::Eager);
    EXPECT_EQ(lazy_exc, lazy_chk);
    EXPECT_EQ(lazy_chk, eager);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwizzleFuzz,
                         ::testing::Values(std::make_pair(5u, false),
                                           std::make_pair(77u, false),
                                           std::make_pair(901u, false),
                                           std::make_pair(5u, true),
                                           std::make_pair(901u, true)));

} // namespace
} // namespace uexc::apps
