/**
 * @file
 * The static MIPS-I ELF path: writer/loader round trips, the
 * loader's rejection of malformed inputs, BSS zero-fill through
 * Kernel::loadImage, and fixture freshness (the checked-in binaries
 * under user/fixtures/ must equal a clean regeneration).
 */

#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bits.h"
#include "core/userprogs.h"
#include "os/elf.h"
#include "os/guestimage.h"
#include "os/kernel.h"
#include "os/layout.h"
#include "sim/machine.h"

namespace uexc::os {
namespace {

using rt::userprog::buildUserProgram;
using rt::userprog::programNames;

std::string
fixturePath(const std::string &name)
{
    return std::string(UEXC_REPO_ROOT) + "/user/fixtures/" + name +
           ".elf";
}

std::vector<Byte>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot open " << path;
    return std::vector<Byte>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

TEST(Elf, WriterIsDeterministic)
{
    GuestImage img = buildUserProgram("hello");
    EXPECT_EQ(writeElf(img), writeElf(img));
}

TEST(Elf, RoundTripPreservesImage)
{
    for (const std::string &name : programNames()) {
        SCOPED_TRACE(name);
        GuestImage orig = buildUserProgram(name);
        GuestImage back = loadElf(writeElf(orig), name);

        EXPECT_EQ(back.entry, orig.entry);
        ASSERT_EQ(back.sections.size(), orig.sections.size());
        for (std::size_t i = 0; i < orig.sections.size(); i++) {
            const GuestSection &a = orig.sections[i];
            const GuestSection &b = back.sections[i];
            EXPECT_EQ(b.name, a.name);
            EXPECT_EQ(b.vaddr, a.vaddr);
            EXPECT_EQ(b.words, a.words);
            EXPECT_EQ(b.memBytes, a.memBytes);
            EXPECT_EQ(b.writable, a.writable);
            EXPECT_EQ(b.executable, a.executable);
        }
        // every original symbol survives with its address
        for (const auto &[sym, addr] : orig.symbols) {
            ASSERT_TRUE(back.hasSymbol(sym)) << sym;
            EXPECT_EQ(back.symbol(sym), addr) << sym;
        }
    }
}

TEST(Elf, FixturesMatchGeneratedBytes)
{
    // The checked-in binaries are generated from the reference
    // builders; regeneration must be a no-op. (If this fails, run
    // build/tools/uexc-mkfixtures user/fixtures and commit.)
    for (const std::string &name : programNames()) {
        SCOPED_TRACE(name);
        EXPECT_EQ(readAll(fixturePath(name)),
                  writeElf(buildUserProgram(name)));
    }
}

TEST(Elf, LoadsFixtureFromDisk)
{
    GuestImage img = loadElfFile(fixturePath("hello"));
    EXPECT_NE(img.entry, 0u);
    EXPECT_TRUE(img.hasSymbol("main"));
    EXPECT_TRUE(img.findSection(".text") != nullptr);
    EXPECT_TRUE(img.findSection(".data") != nullptr);
    img.validate();
}

TEST(Elf, RejectsMalformedInputs)
{
    std::vector<Byte> good = writeElf(buildUserProgram("hello"));

    EXPECT_THROW(loadElf({}), ElfError);
    EXPECT_THROW(loadElf(std::vector<Byte>(good.begin(),
                                           good.begin() + 20)),
                 ElfError);

    {
        auto bad = good;
        bad[0] = 0x7e; // wrong magic
        EXPECT_THROW(loadElf(bad), ElfError);
    }
    {
        auto bad = good;
        bad[4] = 2; // ELFCLASS64
        EXPECT_THROW(loadElf(bad), ElfError);
    }
    {
        auto bad = good;
        bad[5] = 2; // big-endian: guest memory is host-ordered (LE)
        EXPECT_THROW(loadElf(bad), ElfError);
    }
    {
        auto bad = good;
        bad[18] = 3; // e_machine = EM_386
        EXPECT_THROW(loadElf(bad), ElfError);
    }
    {
        auto bad = good;
        bad[24] = 2; // misaligned entry point
        EXPECT_THROW(loadElf(bad), ElfError);
    }
}

TEST(Elf, BssIsZeroFilledOnLoad)
{
    // A section whose memBytes exceed its words is BSS; the loader
    // must hand those bytes to the process zeroed even though the
    // file carries nothing for them.
    GuestImage img;
    img.name = "bss-test";
    GuestSection text;
    text.name = ".text";
    text.vaddr = kUserTextBase;
    text.words = {0x00000008, 0}; // jr zero; nop (never run)
    text.memBytes = 8;
    text.writable = false;
    text.executable = true;
    img.sections.push_back(text);
    GuestSection data;
    data.name = ".data";
    data.vaddr = kUserDataBase;
    data.words = {0xdeadbeef};
    data.memBytes = 4 + 3 * kPageBytes; // BSS spanning pages
    img.sections.push_back(data);
    img.symbols["_start"] = kUserTextBase;
    img.entry = kUserTextBase;
    img.validate();

    GuestImage back = loadElf(writeElf(img), "bss-test");
    ASSERT_EQ(back.sections.size(), 2u);
    EXPECT_EQ(back.sections[1].fileBytes(), 4u);
    EXPECT_EQ(back.sections[1].memBytes, 4 + 3 * kPageBytes);

    sim::Machine machine{sim::MachineConfig{}};
    Kernel kernel(machine);
    kernel.boot();
    Process &p = kernel.createProcess();
    kernel.loadImage(p, back);
    EXPECT_EQ(machine.debugReadWord(
                  sim::Cpu::Kseg0Base + p.as().physOf(kUserDataBase)),
              0xdeadbeefu);
    for (Word off = 4; off < 4 + 3 * kPageBytes; off += kPageBytes) {
        EXPECT_EQ(machine.debugReadWord(sim::Cpu::Kseg0Base +
                                        p.as().physOf(kUserDataBase +
                                                      off)),
                  0u);
    }
    // the break starts past the BSS, not just past the file bytes
    EXPECT_EQ(p.field(proc::Brk),
              roundUp(kUserDataBase + 4 + 3 * kPageBytes, kPageBytes));
}

} // namespace
} // namespace uexc::os
