/**
 * @file
 * Tests for the guest-code static analyzer (uexc-lint): CFG
 * construction, the dataflow lattices, each check against seeded
 * violations, and the positive assertions that the stock kernel image
 * and every shipped guest program lint clean.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/dataflow.h"
#include "analysis/lint.h"
#include "core/env.h"
#include "core/lintspec.h"
#include "core/microbench.h"
#include "os/kernelimage.h"
#include "sim/cp0.h"

using namespace uexc;
using namespace uexc::sim;
using namespace uexc::analysis;

namespace {

constexpr Addr kBase = 0x00400000;

/** Lint @p prog as one whole-text region with the given flags. */
std::vector<Finding>
lintText(const Program &prog, bool user_mode = true,
         std::vector<AddrRange> data = {})
{
    RegionSpec spec;
    spec.name = "test";
    spec.begin = prog.origin;
    spec.end = prog.end();
    spec.userMode = user_mode;
    spec.entries = {prog.origin};
    spec.dataRanges = std::move(data);
    return lint(prog, {{spec}});
}

unsigned
count(const std::vector<Finding> &fs, Check c)
{
    return static_cast<unsigned>(
        std::count_if(fs.begin(), fs.end(),
                      [c](const Finding &f) { return f.check == c; }));
}

Cfg
buildCfg(const Program &prog, std::vector<Addr> entries = {},
         std::vector<AddrRange> data = {})
{
    if (entries.empty())
        entries = {prog.origin};
    CodeRegion region;
    region.begin = prog.origin;
    region.end = prog.end();
    region.entries = std::move(entries);
    region.dataRanges = std::move(data);
    return Cfg::build(prog, region);
}

// -- CFG construction ------------------------------------------------------

TEST(Cfg, StraightLineIsOneBlock)
{
    Assembler a(kBase);
    a.addiu(T0, Zero, 1);
    a.addiu(T1, Zero, 2);
    a.jr(RA);
    a.nop();
    Program p = a.finalize();

    Cfg cfg = buildCfg(p);
    ASSERT_EQ(cfg.blocks().size(), 1u);
    EXPECT_EQ(cfg.blocks()[0].begin, kBase);
    EXPECT_EQ(cfg.blocks()[0].end, p.end());
    EXPECT_FALSE(cfg.blocks()[0].fallsOff);
    EXPECT_TRUE(cfg.reached(kBase + 8));
    EXPECT_TRUE(cfg.isDelaySlot(kBase + 12));
}

TEST(Cfg, BranchSplitsBlocksAndKeepsDelaySlot)
{
    Assembler a(kBase);
    a.beq(T0, Zero, "skip");   // block 0: beq + delay slot
    a.addiu(T1, Zero, 1);      //   delay slot
    a.addiu(T2, Zero, 2);      // block 1: fallthrough
    a.label("skip");
    a.jr(RA);                  // block 2
    a.nop();
    Program p = a.finalize();

    Cfg cfg = buildCfg(p);
    ASSERT_EQ(cfg.blocks().size(), 3u);
    const BasicBlock &b0 = cfg.blocks()[0];
    EXPECT_EQ(b0.end, kBase + 8); // branch travels with its slot
    ASSERT_EQ(b0.succs.size(), 2u);
    EXPECT_TRUE(cfg.isDelaySlot(kBase + 4));
    // the delay slot executes before both successor targets
    std::vector<Addr> next = cfg.nextExecuted(kBase + 4);
    EXPECT_EQ(next.size(), 2u);
}

TEST(Cfg, JumpTableWordsAreMinedAsEntries)
{
    Assembler a(kBase);
    a.jr(RA);                 // entry block; table is not fallthrough
    a.nop();
    a.label("target");
    a.jr(RA);
    a.nop();
    a.label("table");
    a.wordAddr("target");
    Program p = a.finalize();

    Addr table = p.symbol("table");
    Cfg cfg = buildCfg(p, {p.origin}, {{table, table + 4}});
    EXPECT_TRUE(cfg.reached(p.symbol("target")));
    EXPECT_FALSE(cfg.reached(table));
    ASSERT_EQ(cfg.minedEntries().size(), 1u);
    EXPECT_EQ(cfg.minedEntries()[0], p.symbol("target"));
}

// -- dataflow --------------------------------------------------------------

TEST(Dataflow, SavedInIsIntersectionOverPaths)
{
    // One path saves s0, the other does not; at the join s0 must not
    // count as saved.
    Assembler a(kBase);
    a.beq(T0, Zero, "other");
    a.nop();
    a.sw(S0, 0, T3);          // path A saves s0
    a.j("join");
    a.nop();
    a.label("other");
    a.sw(S1, 4, T3);          // path B saves s1 instead
    a.label("join");
    a.jr(RA);
    a.nop();
    Program p = a.finalize();

    Cfg cfg = buildCfg(p);
    std::vector<Word> saved = savedInMasks(cfg);
    int join = cfg.blockIndexAt(p.symbol("join"));
    ASSERT_GE(join, 0);
    EXPECT_EQ(saved[join] & (Word{1} << S0), 0u);
    EXPECT_EQ(saved[join] & (Word{1} << S1), 0u);
}

TEST(Dataflow, LiveInSeesReadsThroughBranches)
{
    Assembler a(kBase);
    a.beq(T0, Zero, "use");
    a.nop();
    a.jr(RA);
    a.nop();
    a.label("use");
    a.addu(T1, S3, S4);       // s3/s4 live into the region
    a.jr(RA);
    a.nop();
    Program p = a.finalize();

    Cfg cfg = buildCfg(p);
    std::vector<Word> live = liveInMasks(cfg);
    int entry = cfg.blockIndexAt(kBase);
    ASSERT_GE(entry, 0);
    EXPECT_NE(live[entry] & (Word{1} << S3), 0u);
    EXPECT_NE(live[entry] & (Word{1} << S4), 0u);
    EXPECT_NE(live[entry] & (Word{1} << T0), 0u);
}

// -- seeded violations -----------------------------------------------------

TEST(LintNegative, LoadDelayHazardIsFlagged)
{
    Assembler a(kBase);
    a.lw(T0, 0, A0);
    a.addu(T1, T0, T0);       // consumes t0 in the load delay slot
    a.jr(RA);
    a.nop();
    Program p = a.finalize();

    std::vector<Finding> fs = lintText(p);
    EXPECT_EQ(count(fs, Check::LoadDelayHazard), 1u);
    EXPECT_FALSE(hasErrors(fs));      // hazard is a warning...
    EXPECT_TRUE(hasErrors(fs, true)); // ...which --strict promotes
}

TEST(LintNegative, HazardThroughBranchIntoDelaySlotConsumer)
{
    // The load sits in the delay slot; its value is consumed at the
    // branch target — only the dynamic next-executed relation, not
    // textual adjacency, sees this hazard.
    Assembler a(kBase);
    a.beq(Zero, Zero, "target");
    a.lw(T0, 0, A0);          // delay slot load
    a.nop();
    a.label("target");
    a.addu(T1, T0, T0);
    a.jr(RA);
    a.nop();
    Program p = a.finalize();

    EXPECT_EQ(count(lintText(p), Check::LoadDelayHazard), 1u);
}

TEST(LintNegative, BranchInDelaySlotIsError)
{
    Assembler a(kBase);
    a.beq(T0, Zero, "out");
    a.beq(T1, Zero, "out");   // branch in the delay slot
    a.nop();
    a.label("out");
    a.jr(RA);
    a.nop();
    Program p = a.finalize();

    std::vector<Finding> fs = lintText(p);
    EXPECT_GE(count(fs, Check::ControlInDelaySlot), 1u);
    EXPECT_TRUE(hasErrors(fs));
}

TEST(LintNegative, PrivilegedInstructionInUserCodeIsError)
{
    Assembler a(kBase);
    a.mfc0(T0, cp0reg::Status); // privileged
    a.jr(RA);
    a.nop();
    Program p = a.finalize();

    std::vector<Finding> fs = lintText(p, /*user_mode=*/true);
    EXPECT_EQ(count(fs, Check::PrivilegedInUserCode), 1u);
    EXPECT_TRUE(hasErrors(fs));
    // the same code in a kernel region is fine
    EXPECT_EQ(count(lintText(p, /*user_mode=*/false),
                    Check::PrivilegedInUserCode),
              0u);
}

TEST(LintNegative, UnreachableCodeIsFlagged)
{
    Assembler a(kBase);
    a.jr(RA);
    a.nop();
    a.addiu(T0, Zero, 7);     // dead code after the return
    a.addiu(T1, Zero, 8);
    Program p = a.finalize();

    std::vector<Finding> fs = lintText(p);
    EXPECT_EQ(count(fs, Check::UnreachableCode), 1u);
    EXPECT_FALSE(hasErrors(fs));
}

TEST(LintNegative, ReachableInvalidOpcodeIsError)
{
    Assembler a(kBase);
    a.word(0xffffffffu);      // does not decode
    a.jr(RA);
    a.nop();
    Program p = a.finalize();

    std::vector<Finding> fs = lintText(p);
    EXPECT_EQ(count(fs, Check::InvalidOpcode), 1u);
    EXPECT_TRUE(hasErrors(fs));
}

/** A handler region over [begin, end) with the fast-stub scratch set. */
std::vector<Finding>
lintHandler(const Program &prog, Addr begin, Addr end)
{
    RegionSpec spec;
    spec.name = "handler";
    spec.begin = begin;
    spec.end = end;
    spec.userMode = true;
    spec.handler = true;
    spec.scratchMask = rt::fastStubScratchMask();
    spec.entries = {begin};
    return lint(prog, {{spec}});
}

TEST(LintNegative, HandlerClobberingCalleeSavedRegisterIsError)
{
    Assembler a(kBase);
    a.addiu(S0, Zero, 1);     // s0 clobbered, never saved
    a.jr(K0);
    a.nop();
    Program p = a.finalize();

    std::vector<Finding> fs = lintHandler(p, p.origin, p.end());
    EXPECT_EQ(count(fs, Check::ClobberedRegister), 1u);
    EXPECT_TRUE(hasErrors(fs));
}

TEST(LintNegative, HandlerSavingFirstIsClean)
{
    Assembler a(kBase);
    a.sw(S0, 0, T3);          // save s0 into the frame...
    a.addiu(S0, Zero, 1);     // ...then it may be clobbered
    a.lw(S0, 0, T3);
    a.jr(K0);
    a.nop();
    Program p = a.finalize();

    EXPECT_EQ(count(lintHandler(p, p.origin, p.end()),
                    Check::ClobberedRegister),
              0u);
}

TEST(LintNegative, SaveOnOnlyOnePathStillClobbers)
{
    Assembler a(kBase);
    a.beq(T0, Zero, "skip");
    a.nop();
    a.sw(S0, 0, T3);          // saved on the taken path only
    a.label("skip");
    a.addiu(S0, Zero, 1);     // not saved on every path: error
    a.jr(K0);
    a.nop();
    Program p = a.finalize();

    EXPECT_EQ(count(lintHandler(p, p.origin, p.end()),
                    Check::ClobberedRegister),
              1u);
}

TEST(LintNegative, TruncatedHandlerIsError)
{
    Assembler a(kBase);
    a.addiu(T0, Zero, 1);
    a.addiu(T1, Zero, 2);
    a.jr(K0);
    a.nop();
    Program p = a.finalize();

    // Cut the region before the return: control runs off the end.
    std::vector<Finding> fs = lintHandler(p, p.origin, p.origin + 8);
    EXPECT_EQ(count(fs, Check::FallOffEnd), 1u);
    EXPECT_TRUE(hasErrors(fs));
}

// -- fast-path structural verification -------------------------------------

TEST(FastPath, StockKernelMatchesTable3)
{
    Program image = os::buildKernelImage();
    std::vector<Finding> fs =
        verifyFastPath(image, os::kernelFastPathSpec(image));
    EXPECT_TRUE(fs.empty()) << formatFindings(fs);

    // and the phase counts really are the paper's 6/11/31/6/8/3
    FastPathSpec spec = os::kernelFastPathSpec(image);
    unsigned total = 0;
    for (const FastPathSpec::Phase &ph : spec.phases)
        total += (ph.end - ph.begin) / 4;
    EXPECT_EQ(total, 65u);
}

TEST(FastPath, TamperedStoreBaseIsCaught)
{
    Program image = os::buildKernelImage();
    // Rewrite one in-path store to go through s0 instead of the
    // pinned-frame base k1.
    Assembler a(0);
    a.sw(T4, 0, S0);
    Word bad_store = a.finalize().words[0];

    Addr save = image.symbol(os::ksym::FastSave);
    bool patched = false;
    for (Addr p = save; p < image.symbol(os::ksym::FastFp); p += 4) {
        DecodedInst inst = decode(image.words[(p - image.origin) / 4]);
        if (inst.op == Op::Sw) {
            image.words[(p - image.origin) / 4] = bad_store;
            patched = true;
            break;
        }
    }
    ASSERT_TRUE(patched);

    std::vector<Finding> fs =
        verifyFastPath(image, os::kernelFastPathSpec(image));
    EXPECT_EQ(count(fs, Check::FastPathStructure), 1u);
    EXPECT_TRUE(hasErrors(fs));
}

TEST(FastPath, WrongPhaseCountIsCaught)
{
    Program image = os::buildKernelImage();
    FastPathSpec spec = os::kernelFastPathSpec(image);
    spec.phases[2].expectedWords += 1; // claim save takes 32 words
    std::vector<Finding> fs = verifyFastPath(image, spec);
    EXPECT_EQ(count(fs, Check::FastPathStructure), 1u);
}

// -- positives: everything we ship lints clean -----------------------------

TEST(LintPositive, KernelImageHasNoErrors)
{
    Program image = os::buildKernelImage();
    std::vector<Finding> fs = os::lintKernelImage(image);
    EXPECT_FALSE(hasErrors(fs)) << formatFindings(fs);
    // the known R3000 load-delay hazards are reported as warnings
    EXPECT_GT(count(fs, Check::LoadDelayHazard), 0u);
}

TEST(LintPositive, EveryShimVariantHasNoErrors)
{
    for (rt::SavePolicy policy :
         {rt::SavePolicy::UltrixEquivalent, rt::SavePolicy::Minimal}) {
        for (bool hw : {false, true}) {
            Program p = rt::UserEnv::buildShimProgram(policy, hw);
            std::vector<Finding> fs =
                lint(p, rt::userProgramLintConfig(p));
            EXPECT_FALSE(hasErrors(fs)) << formatFindings(fs);
        }
    }
}

TEST(LintPositive, EveryMicrobenchScenarioHasNoErrors)
{
    for (rt::micro::Scenario s : rt::micro::kAllScenarios) {
        Program p = rt::micro::buildScenarioProgram(s);
        std::vector<Finding> fs =
            lint(p, rt::userProgramLintConfig(p));
        EXPECT_FALSE(hasErrors(fs))
            << rt::micro::scenarioName(s) << ":\n"
            << formatFindings(fs);
    }
}

// -- value-set analysis ----------------------------------------------------

TEST(Vsa, ConstantsAndPrIdMaterialize)
{
    Assembler a(kBase);
    a.li32(T0, 0xdeadbeefu);
    a.mfc0(T1, cp0reg::PrId);
    a.jr(RA);
    a.nop();
    Program p = a.finalize();

    CodeRegion region;
    region.begin = p.origin;
    region.end = p.end();
    region.entries = {p.origin};

    VsaOptions opts;
    opts.modelPrId = true;
    opts.prIdValue = 3u << 24;
    Vsa v = Vsa::run(p, region, opts);

    Addr at_jr = kBase + 12;
    ValueSet t0 = v.regIn(at_jr, T0);
    ASSERT_TRUE(t0.isConst());
    EXPECT_EQ(t0.constValue(), 0xdeadbeefu);
    ValueSet t1 = v.regIn(at_jr, T1);
    ASSERT_TRUE(t1.isConst());
    EXPECT_EQ(t1.constValue(), 3u << 24);

    // Without PrId modeling the same read is unknown.
    Vsa v2 = Vsa::run(p, region);
    EXPECT_TRUE(v2.regIn(at_jr, T1).isTop());
}

TEST(Vsa, JoinAndAddConstStayPrecise)
{
    ValueSet j = join(ValueSet::constant(0x100), ValueSet::constant(0x108));
    ASSERT_EQ(j.kind, ValueSet::Kind::Strided);
    EXPECT_EQ(j.base, 0x100u);
    EXPECT_EQ(j.last(), 0x108u);

    ValueSet shifted = addConst(j, 0x20);
    ASSERT_EQ(shifted.kind, ValueSet::Kind::Strided);
    EXPECT_EQ(shifted.base, 0x120u);
    EXPECT_EQ(shifted.last(), 0x128u);

    EXPECT_TRUE(addConst(ValueSet::top(), 4).isTop());
    EXPECT_TRUE(
        ValueSet::strided(0, 4, ValueSet::kMaxCount + 1).isTop());
}

TEST(Vsa, ResolvesComputedJumpThroughMinedTable)
{
    Assembler a(kBase);
    a.la(T0, "table");
    a.lw(T1, 0, T0);
    a.jr(T1);
    a.nop();
    a.label("target");
    a.jr(RA);
    a.nop();
    a.label("table");
    a.wordAddr("target");
    Program p = a.finalize();

    Addr table = p.symbol("table");
    CodeRegion region;
    region.begin = p.origin;
    region.end = p.end();
    region.entries = {p.origin};
    region.dataRanges = {{table, table + 4}};

    Vsa v = Vsa::run(p, region);
    Addr jr_at = kBase + 12; // la is two words
    auto it = v.resolvedJumps().find(jr_at);
    ASSERT_NE(it, v.resolvedJumps().end())
        << "jr through the mined table was not resolved";
    ASSERT_EQ(it->second.size(), 1u);
    EXPECT_EQ(it->second[0], p.symbol("target"));
    EXPECT_TRUE(v.cfg().reached(p.symbol("target")));
}

// -- shared-page conflict analysis ----------------------------------------

TEST(Conflict, DelaySlotStraddlingPageBoundaryFetchesBothPages)
{
    // The jump's delay slot is the first word of the next page: the
    // block (branch + slot) spans the boundary and the may-fetch set
    // must cover both pages.
    Assembler a(0x00400ffcu);
    a.j("t");
    a.nop(); // delay slot at 0x00401000
    a.label("t");
    a.jr(RA);
    a.nop();
    Program p = a.finalize();

    CodeRegion region;
    region.begin = p.origin;
    region.end = p.end();
    region.entries = {p.origin};

    PageAccessSummary s = analyzePageAccesses(p, region, {});
    EXPECT_TRUE(s.fetchPages.count(0x400));
    EXPECT_TRUE(s.fetchPages.count(0x401));
    EXPECT_TRUE(s.readPages.empty());
    EXPECT_TRUE(s.writePages.empty());
}

TEST(LintNegative, SharedWriteReadOverlapIsNotedOncePerPage)
{
    Assembler a(kBase);
    a.li32(T0, 0x00500000u);
    a.sw(T1, 0, T0);
    a.sw(T1, 8, T0);
    a.lw(T2, 4, T0);
    a.jr(RA);
    a.nop();
    Program p = a.finalize();

    RegionSpec spec;
    spec.name = "text";
    spec.begin = p.origin;
    spec.end = p.end();
    spec.entries = {p.origin};
    LintConfig config;
    config.regions = {spec};
    config.multihart = 2;

    std::vector<Finding> fs = lint(p, config);
    ASSERT_EQ(count(fs, Check::SharedPageConflict), 1u)
        << formatFindings(fs);
    EXPECT_EQ(count(fs, Check::UnsyncSharedWrite), 0u);
    EXPECT_FALSE(hasErrors(fs)) << formatFindings(fs);
    for (const Finding &f : fs) {
        if (f.check != Check::SharedPageConflict)
            continue;
        EXPECT_EQ(f.severity, Severity::Note);
        bool has_page = false;
        for (const auto &[key, value] : f.payload)
            if (key == "page") {
                has_page = true;
                EXPECT_EQ(value, 0x500u);
            }
        EXPECT_TRUE(has_page);
    }
    // Single-hart analysis of the same program reports nothing.
    config.multihart = 0;
    EXPECT_EQ(count(lint(p, config), Check::SharedPageConflict), 0u);
}

TEST(LintNegative, UnboundedStoreAddressIsErrorUnderMultihart)
{
    Assembler a(kBase);
    a.sw(T1, 0, T0); // T0 unknown at entry: address set unbounded
    a.jr(RA);
    a.nop();
    Program p = a.finalize();

    RegionSpec spec;
    spec.name = "text";
    spec.begin = p.origin;
    spec.end = p.end();
    spec.entries = {p.origin};
    LintConfig config;
    config.regions = {spec};
    config.multihart = 2;

    std::vector<Finding> fs = lint(p, config);
    EXPECT_GE(count(fs, Check::UnsyncSharedWrite), 1u)
        << formatFindings(fs);
    EXPECT_TRUE(hasErrors(fs));
}

// -- worst-case handler latency --------------------------------------------

/** Handler-region spec with every register scratch so only the WCET
 *  checks are under test. */
RegionSpec
wcetHandlerSpec(const Program &p, Cycles budget)
{
    RegionSpec h;
    h.name = "h";
    h.begin = p.origin;
    h.end = p.end();
    h.handler = true;
    h.scratchMask = ~Word(0);
    h.entries = {p.origin};
    h.wcetBudget = budget;
    return h;
}

TEST(LintNegative, UnboundedHandlerLoopIsFlagged)
{
    Assembler a(kBase);
    a.label("spin");
    a.j("spin");
    a.nop();
    Program p = a.finalize();

    LintConfig config;
    config.regions = {wcetHandlerSpec(p, 1000)};
    config.analyzeWcet = true;

    std::vector<Finding> fs = lint(p, config);
    EXPECT_EQ(count(fs, Check::UnboundedHandlerLoop), 1u)
        << formatFindings(fs);
    EXPECT_EQ(count(fs, Check::HandlerWcetExceedsBudget), 0u);
    EXPECT_TRUE(hasErrors(fs));
}

TEST(LintNegative, HandlerOverBudgetIsFlagged)
{
    Assembler a(kBase);
    for (int i = 0; i < 16; i++)
        a.nop();
    a.jr(RA);
    a.nop();
    Program p = a.finalize();

    LintConfig config;
    config.regions = {wcetHandlerSpec(p, 4)}; // 18 instructions min
    config.analyzeWcet = true;

    std::vector<Finding> fs = lint(p, config);
    ASSERT_EQ(count(fs, Check::HandlerWcetExceedsBudget), 1u)
        << formatFindings(fs);
    for (const Finding &f : fs) {
        if (f.check != Check::HandlerWcetExceedsBudget)
            continue;
        std::uint64_t wcet = 0, budget = 0;
        for (const auto &[key, value] : f.payload) {
            if (key == "wcet_cycles")
                wcet = value;
            else if (key == "budget_cycles")
                budget = value;
        }
        EXPECT_EQ(budget, 4u);
        EXPECT_GE(wcet, 18u);
    }
}

TEST(LintPositive, BudgetBoundedLoopIsNotFlagged)
{
    // A counted loop the bounded-loop inference can prove finite: it
    // must produce neither UnboundedHandlerLoop nor (with a generous
    // budget) HandlerWcetExceedsBudget.
    Assembler a(kBase);
    a.addiu(T0, Zero, 4);
    a.label("head");
    a.addiu(T0, T0, -1);
    a.bne(T0, Zero, "head");
    a.nop();
    a.jr(RA);
    a.nop();
    Program p = a.finalize();

    LintConfig config;
    config.regions = {wcetHandlerSpec(p, 1000)};
    config.analyzeWcet = true;

    std::vector<Finding> fs = lint(p, config);
    EXPECT_EQ(count(fs, Check::UnboundedHandlerLoop), 0u)
        << formatFindings(fs);
    EXPECT_EQ(count(fs, Check::HandlerWcetExceedsBudget), 0u)
        << formatFindings(fs);

    // The same loop against a budget the folded iterations cannot
    // fit: the WCET check must see the loop body four times.
    config.regions = {wcetHandlerSpec(p, 8)};
    fs = lint(p, config);
    EXPECT_EQ(count(fs, Check::UnboundedHandlerLoop), 0u);
    EXPECT_EQ(count(fs, Check::HandlerWcetExceedsBudget), 1u)
        << formatFindings(fs);
}

// -- JSON output -----------------------------------------------------------

TEST(LintJson, FindingsSerializeWithPayload)
{
    Assembler a(kBase);
    a.li32(T0, 0x00500000u);
    a.sw(T1, 0, T0);
    a.lw(T2, 4, T0);
    a.jr(RA);
    a.nop();
    Program p = a.finalize();

    RegionSpec spec;
    spec.name = "text";
    spec.begin = p.origin;
    spec.end = p.end();
    spec.entries = {p.origin};
    LintConfig config;
    config.regions = {spec};
    config.multihart = 2;

    std::string js = formatFindingsJson(lint(p, config));
    EXPECT_NE(js.find("\"check\": \"shared-page-conflict\""),
              std::string::npos)
        << js;
    EXPECT_NE(js.find("\"severity\": \"note\""), std::string::npos)
        << js;
    EXPECT_NE(js.find("\"page\": 1280"), std::string::npos) << js;

    EXPECT_EQ(formatFindingsJson({}), "[\n]\n");
}

TEST(LintPositive, ShimHandlerRegionsAreDetected)
{
    Program p = rt::UserEnv::buildShimProgram(
        rt::SavePolicy::UltrixEquivalent, true);
    LintConfig config = rt::userProgramLintConfig(p);
    // whole-text region + fast_stub + hw_stub handler regions
    ASSERT_EQ(config.regions.size(), 3u);
    unsigned handlers = 0;
    for (const RegionSpec &r : config.regions) {
        if (!r.handler)
            continue;
        handlers++;
        if (r.name == "hw_stub")
            EXPECT_EQ(r.scratchMask, rt::hwStubScratchMask());
        else
            EXPECT_EQ(r.scratchMask, rt::fastStubScratchMask());
    }
    EXPECT_EQ(handlers, 2u);
}

} // namespace
