/**
 * @file
 * Unit tests for the programmatic assembler: label binding, forward
 * references, fixups, layout directives, and error handling.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/assembler.h"
#include "sim/isa.h"

namespace uexc::sim {
namespace {

class QuietAssembler : public ::testing::Test
{
  protected:
    void SetUp() override { setLoggingEnabled(false); }
    void TearDown() override { setLoggingEnabled(true); }
};

TEST(Assembler, EmitsInOrderFromOrigin)
{
    Assembler a(0x80010000);
    a.addu(T0, T1, T2);
    a.nop();
    Program p = a.finalize();
    EXPECT_EQ(p.origin, 0x80010000u);
    ASSERT_EQ(p.words.size(), 2u);
    EXPECT_EQ(p.words[0], enc::addu(T0, T1, T2));
    EXPECT_EQ(p.words[1], enc::nop());
    EXPECT_EQ(p.end(), 0x80010008u);
}

TEST(Assembler, BackwardBranchOffset)
{
    Assembler a(0x80010000);
    a.label("loop");
    a.addiu(T0, T0, -1);
    a.bne(T0, Zero, "loop");
    a.nop();
    Program p = a.finalize();
    DecodedInst b = decode(p.words[1]);
    // branch at 0x...04, target 0x...00 -> offset -2 words
    EXPECT_EQ(static_cast<SWord>(b.simm), -2);
}

TEST(Assembler, ForwardBranchOffset)
{
    Assembler a(0x80010000);
    a.beq(T0, T1, "done");
    a.nop();
    a.nop();
    a.label("done");
    a.nop();
    Program p = a.finalize();
    DecodedInst b = decode(p.words[0]);
    EXPECT_EQ(static_cast<SWord>(b.simm), 2);
}

TEST(Assembler, JumpTargetEncoding)
{
    Assembler a(0x80010000);
    a.j("target");
    a.nop();
    a.label("target");
    a.nop();
    Program p = a.finalize();
    DecodedInst j = decode(p.words[0]);
    EXPECT_EQ(j.op, Op::J);
    EXPECT_EQ(j.target << 2, (p.symbol("target") & 0x0fffffffu));
}

TEST(Assembler, LoadAddressMaterializesFullWord)
{
    Assembler a(0x80010000);
    a.la(T0, "data");
    a.nop();
    a.label("data");
    a.word(0xdeadbeef);
    Program p = a.finalize();
    DecodedInst hi = decode(p.words[0]);
    DecodedInst lo = decode(p.words[1]);
    Addr data = p.symbol("data");
    EXPECT_EQ(hi.op, Op::Lui);
    EXPECT_EQ(hi.imm, data >> 16);
    EXPECT_EQ(lo.op, Op::Ori);
    EXPECT_EQ(lo.imm, data & 0xffffu);
}

TEST(Assembler, WordAddrFixup)
{
    Assembler a(0x80010000);
    a.wordAddr("later");
    a.label("later");
    a.nop();
    Program p = a.finalize();
    EXPECT_EQ(p.words[0], p.symbol("later"));
}

TEST(Assembler, LiChoosesShortForms)
{
    {
        Assembler a(0x80010000);
        a.li(T0, 5);
        EXPECT_EQ(a.size(), 1u);
        Program p = a.finalize();
        EXPECT_EQ(decode(p.words[0]).op, Op::Addiu);
    }
    {
        Assembler a(0x80010000);
        a.li(T0, static_cast<Word>(-7));
        EXPECT_EQ(a.size(), 1u);
    }
    {
        Assembler a(0x80010000);
        a.li(T0, 0x80000000u);
        EXPECT_EQ(a.size(), 1u);  // pure lui
        Program p = a.finalize();
        EXPECT_EQ(decode(p.words[0]).op, Op::Lui);
    }
    {
        Assembler a(0x80010000);
        a.li(T0, 0x12345678u);
        EXPECT_EQ(a.size(), 2u);  // lui + ori
    }
    {
        Assembler a(0x80010000);
        a.li32(T0, 5);
        EXPECT_EQ(a.size(), 2u);  // forced long form
    }
}

TEST(Assembler, AlignPadsWithNops)
{
    Assembler a(0x80010000);
    a.nop();
    a.align(16);
    EXPECT_EQ(a.size(), 4u);
    a.align(16);  // already aligned: no change
    EXPECT_EQ(a.size(), 4u);
}

TEST(Assembler, SpaceReservesZeroedWords)
{
    Assembler a(0x80010000);
    a.space(16);
    Program p = a.finalize();
    ASSERT_EQ(p.words.size(), 4u);
    for (Word w : p.words)
        EXPECT_EQ(w, 0u);
}

TEST_F(QuietAssembler, UndefinedLabelIsFatal)
{
    Assembler a(0x80010000);
    a.j("nowhere");
    a.nop();
    EXPECT_THROW(a.finalize(), FatalError);
}

TEST_F(QuietAssembler, DuplicateLabelIsFatal)
{
    Assembler a(0x80010000);
    a.label("x");
    EXPECT_THROW(a.label("x"), FatalError);
}

TEST_F(QuietAssembler, MisalignedOriginIsFatal)
{
    EXPECT_THROW(Assembler(0x80010002), FatalError);
}

TEST_F(QuietAssembler, SegmentCrossingJumpIsFatal)
{
    Assembler a(0x80010000);
    // jump from kseg0 (0x8...) to kuseg (0x0...) cannot be encoded
    a.label("entry");
    a.j("entry");  // fine
    Assembler b(0x80010000);
    b.j("low");
    b.nop();
    // bind "low" outside the 256MB segment by cheating with a second
    // assembler is impossible; instead verify symbol() on a missing
    // name is fatal.
    Program p = a.finalize();
    EXPECT_THROW(p.symbol("missing"), FatalError);
    EXPECT_TRUE(p.hasSymbol("entry"));
}

TEST(Assembler, HiLoAddressingPairsForLoadsAndStores)
{
    Assembler a(0x80010000);
    a.luiHi(T0, "cell");
    a.lwLo(T1, "cell", T0);
    a.swLo(T1, "cell", T0);
    a.addiuLo(T2, T0, "cell");
    a.label("cell");
    a.word(0);
    Program p = a.finalize();
    Addr target = p.symbol("cell");
    DecodedInst hi = decode(p.words[0]);
    DecodedInst lo = decode(p.words[1]);
    // reconstructed address: (hi << 16) + sign-extended lo
    Word lo16 = lo.imm;
    Word reconstructed = (hi.imm << 16) +
                         static_cast<Word>(
                             static_cast<std::int16_t>(lo16));
    EXPECT_EQ(reconstructed, target);
    EXPECT_EQ(decode(p.words[2]).op, Op::Sw);
    EXPECT_EQ(decode(p.words[3]).op, Op::Addiu);
}

TEST(Assembler, HiAdjustmentCarriesWhenLowHalfIsNegative)
{
    // place the label so that its low 16 bits have the sign bit set:
    // the adjusted high half must carry
    Assembler a(0x80007ff0);
    a.luiHi(T0, "cell");
    a.lwLo(T1, "cell", T0);
    a.space(0x20);   // pushes "cell" past 0x80008000
    a.label("cell");
    a.word(0);
    Program p = a.finalize();
    Addr target = p.symbol("cell");
    ASSERT_GE(target & 0xffffu, 0x8000u) << "test setup";
    DecodedInst hi = decode(p.words[0]);
    DecodedInst lo = decode(p.words[1]);
    EXPECT_EQ(hi.imm, ((target + 0x8000u) >> 16));
    Word reconstructed = (hi.imm << 16) +
                         static_cast<Word>(
                             static_cast<std::int16_t>(lo.imm));
    EXPECT_EQ(reconstructed, target);
}

TEST(Assembler, HereTracksLocation)
{
    Assembler a(0x80010000);
    EXPECT_EQ(a.here(), 0x80010000u);
    a.nop();
    a.nop();
    EXPECT_EQ(a.here(), 0x80010008u);
}

TEST(Assembler, SymbolsInFinalizedProgram)
{
    Assembler a(0x80010000);
    a.nop();
    a.label("a");
    a.nop();
    a.label("b");
    Program p = a.finalize();
    EXPECT_EQ(p.symbol("a"), 0x80010004u);
    EXPECT_EQ(p.symbol("b"), 0x80010008u);
}

} // namespace
} // namespace uexc::sim
