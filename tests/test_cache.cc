/**
 * @file
 * Unit tests for the direct-mapped cache cost model.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/cache.h"

namespace uexc::sim {
namespace {

TEST(Cache, ColdMissThenHit)
{
    Cache c(1024, 16);
    EXPECT_FALSE(c.access(0x100));
    EXPECT_TRUE(c.access(0x100));
    EXPECT_TRUE(c.access(0x10c));  // same line
    EXPECT_FALSE(c.access(0x110)); // next line
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, ConflictEviction)
{
    Cache c(1024, 16);  // 64 lines
    EXPECT_FALSE(c.access(0x000));
    EXPECT_FALSE(c.access(0x400));  // same index, different tag
    EXPECT_FALSE(c.access(0x000));  // evicted
    EXPECT_EQ(c.stats().misses, 3u);
}

TEST(Cache, ProbeDoesNotFill)
{
    Cache c(1024, 16);
    EXPECT_FALSE(c.probe(0x200));
    EXPECT_FALSE(c.access(0x200));  // still a miss: probe didn't fill
    EXPECT_TRUE(c.probe(0x200));
    EXPECT_EQ(c.stats().accesses, 1u);
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache c(1024, 16);
    c.access(0x100);
    c.access(0x200);
    c.flush();
    EXPECT_FALSE(c.probe(0x100));
    EXPECT_FALSE(c.probe(0x200));
}

TEST(Cache, InvalidateSingleLine)
{
    Cache c(1024, 16);
    c.access(0x100);
    c.access(0x200);
    c.invalidate(0x100);
    EXPECT_FALSE(c.probe(0x100));
    EXPECT_TRUE(c.probe(0x200));
    // invalidate of a non-resident address is a no-op
    c.invalidate(0x700);
    EXPECT_TRUE(c.probe(0x200));
}

TEST(Cache, Geometry)
{
    Cache c(64 * 1024, 16);
    EXPECT_EQ(c.numLines(), 4096u);
    EXPECT_EQ(c.lineBytes(), 16u);
}

TEST(Cache, MissRate)
{
    Cache c(1024, 16);
    EXPECT_EQ(c.stats().missRate(), 0.0);
    c.access(0x0);
    c.access(0x0);
    c.access(0x0);
    c.access(0x0);
    EXPECT_DOUBLE_EQ(c.stats().missRate(), 0.25);
}

TEST(Cache, InvalidGeometryIsFatal)
{
    setLoggingEnabled(false);
    EXPECT_THROW(Cache(1000, 16), FatalError);   // not a power of two
    EXPECT_THROW(Cache(1024, 12), FatalError);   // line not pow2
    EXPECT_THROW(Cache(8, 16), FatalError);      // smaller than a line
    EXPECT_THROW(Cache(1024, 2), FatalError);    // line < 4 bytes
    setLoggingEnabled(true);
}

class CacheSweep
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(CacheSweep, SequentialScanMissRateMatchesLineSize)
{
    auto [size, line] = GetParam();
    Cache c(size, line);
    // one full sequential pass over 2x the cache: every line-sized
    // block misses exactly once
    size_t span = 2 * size;
    for (Addr a = 0; a < span; a += 4)
        c.access(a);
    EXPECT_EQ(c.stats().misses, span / line);
    // second pass over the *second* half hits entirely
    c.clearStats();
    for (Addr a = static_cast<Addr>(size); a < span; a += 4)
        c.access(a);
    EXPECT_EQ(c.stats().misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweep,
    ::testing::Values(std::make_pair(size_t{1024}, size_t{16}),
                      std::make_pair(size_t{4096}, size_t{4}),
                      std::make_pair(size_t{65536}, size_t{16}),
                      std::make_pair(size_t{65536}, size_t{32}),
                      std::make_pair(size_t{16384}, size_t{64})));

} // namespace
} // namespace uexc::sim
