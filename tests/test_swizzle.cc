/**
 * @file
 * Tests for the persistent object store and its three swizzling
 * strategies. The key invariant: all three modes produce identical
 * traversal results; they differ only in cost structure.
 */

#include <gtest/gtest.h>

#include "apps/swizzle/swizzler.h"
#include "os_test_util.h"

namespace uexc::apps {
namespace {

using namespace os::testutil;
using rt::DeliveryMode;
using rt::UserEnv;

struct StoreSetup
{
    explicit StoreSetup(SwizzleMode mode,
                        DeliveryMode delivery = DeliveryMode::FastSoftware)
        : booted(osMachineConfig(true)), env(booted.kernel, delivery)
    {
        env.install(kAllExcMask);
        ObjectStore::Config cfg;
        cfg.mode = mode;
        store = std::make_unique<ObjectStore>(env, cfg);
    }

    BootedKernel booted;
    UserEnv env;
    std::unique_ptr<ObjectStore> store;
};

class SwizzleModes : public ::testing::TestWithParam<SwizzleMode> {};

TEST_P(SwizzleModes, TraversalSeesConsistentData)
{
    StoreSetup s(GetParam());
    Oid b = s.store->createObject({{false, 300}, {false, 301}});
    Oid a = s.store->createObject({{false, 200}, {true, b}});
    Oid root = s.store->createObject({{false, 100}, {true, a},
                                      {true, b}});

    Addr r = s.store->pin(root);
    EXPECT_EQ(s.store->readData(r, 0), 100u);
    Addr pa = s.store->deref(r, 1);
    EXPECT_EQ(s.store->readData(pa, 0), 200u);
    Addr pb1 = s.store->deref(r, 2);
    Addr pb2 = s.store->deref(pa, 1);
    EXPECT_EQ(pb1, pb2) << "both paths reach the same resident copy";
    EXPECT_EQ(s.store->readData(pb1, 0), 300u);
    EXPECT_EQ(s.store->readData(pb1, 1), 301u);
    EXPECT_TRUE(s.store->isResident(b));
}

TEST_P(SwizzleModes, RepeatedDerefIsStable)
{
    StoreSetup s(GetParam());
    Oid b = s.store->createObject({{false, 1}});
    Oid root = s.store->createObject({{true, b}});
    Addr r = s.store->pin(root);
    Addr first = s.store->deref(r, 0);
    for (int i = 0; i < 10; i++)
        EXPECT_EQ(s.store->deref(r, 0), first);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SwizzleModes,
    ::testing::Values(SwizzleMode::LazyExceptions,
                      SwizzleMode::LazyChecks, SwizzleMode::Eager),
    [](const ::testing::TestParamInfo<SwizzleMode> &info) {
        switch (info.param) {
          case SwizzleMode::LazyExceptions: return "LazyExceptions";
          case SwizzleMode::LazyChecks: return "LazyChecks";
          default: return "Eager";
        }
    });

TEST(Swizzle, LazyExceptionsFaultOncePerPointer)
{
    StoreSetup s(SwizzleMode::LazyExceptions);
    Oid b = s.store->createObject({{false, 1}});
    Oid root = s.store->createObject({{true, b}});
    Addr r = s.store->pin(root);
    s.store->deref(r, 0);
    EXPECT_EQ(s.store->stats().swizzleFaults, 1u);
    s.store->deref(r, 0);
    s.store->deref(r, 0);
    EXPECT_EQ(s.store->stats().swizzleFaults, 1u);  // repaired cell
    EXPECT_EQ(s.store->stats().residencyChecks, 0u);
}

TEST(Swizzle, LazyChecksNeverFault)
{
    StoreSetup s(SwizzleMode::LazyChecks);
    Oid b = s.store->createObject({{false, 1}});
    Oid root = s.store->createObject({{true, b}});
    Addr r = s.store->pin(root);
    for (int i = 0; i < 5; i++)
        s.store->deref(r, 0);
    EXPECT_EQ(s.store->stats().swizzleFaults, 0u);
    EXPECT_EQ(s.store->stats().residencyChecks, 5u);
    EXPECT_EQ(s.env.stats().faultsDelivered, 0u);
}

TEST(Swizzle, EagerSwizzlesAllPointersOnLoad)
{
    StoreSetup s(SwizzleMode::Eager);
    Oid t1 = s.store->createObject({{false, 1}});
    Oid t2 = s.store->createObject({{false, 2}});
    Oid t3 = s.store->createObject({{false, 3}});
    Oid root = s.store->createObject({{true, t1}, {true, t2},
                                      {true, t3}});
    s.store->pin(root);
    // all three pointers swizzled at load although none dereferenced
    EXPECT_EQ(s.store->stats().pointersSwizzled, 3u);
    EXPECT_FALSE(s.store->isResident(t1));  // reserved, not loaded
}

TEST(Swizzle, EagerResidencyFaultLoadsObject)
{
    StoreSetup s(SwizzleMode::Eager);
    Oid b = s.store->createObject({{false, 77}});
    Oid root = s.store->createObject({{true, b}});
    Addr r = s.store->pin(root);
    EXPECT_FALSE(s.store->isResident(b));
    Addr pb = s.store->deref(r, 0);    // touches the reserved page
    EXPECT_TRUE(s.store->isResident(b));
    EXPECT_EQ(s.store->stats().residencyFaults, 1u);
    EXPECT_EQ(s.store->readData(pb, 0), 77u);
    // second touch: no fault
    s.store->deref(r, 0);
    EXPECT_EQ(s.store->stats().residencyFaults, 1u);
}

TEST(SwizzleTraversal, AllModesAgreeOnWorkDone)
{
    TraversalParams params;
    params.numObjects = 60;
    params.pointersPerObject = 6;
    params.useFraction = 0.5;
    params.usesPerPointer = 2;

    std::uint64_t derefs[3];
    int i = 0;
    for (SwizzleMode mode : {SwizzleMode::LazyExceptions,
                             SwizzleMode::LazyChecks,
                             SwizzleMode::Eager}) {
        BootedKernel bk(osMachineConfig(true));
        UserEnv env(bk.kernel, DeliveryMode::FastSoftware);
        env.install(kAllExcMask);
        TraversalResult r = runTraversal(env, mode, params);
        derefs[i++] = r.derefs;
        EXPECT_GT(r.cycles, 0u);
    }
    EXPECT_EQ(derefs[0], derefs[1]);
    EXPECT_EQ(derefs[1], derefs[2]);
}

TEST(SwizzleTraversal, FastExceptionsShiftLazyVsChecksBalance)
{
    // Figure 3: the break-even is u* = f*y/c uses per pointer. With
    // the fast scheme (y ~ 7 us) and c = 5 cycles, u* ~ 35: at u = 60
    // exceptions win; with Ultrix-cost exceptions (y ~ 70 us,
    // u* ~ 350) the checks win.
    TraversalParams params;
    params.numObjects = 80;
    params.pointersPerObject = 6;
    params.useFraction = 0.6;
    params.usesPerPointer = 60;
    params.store.checkCycles = 5;

    auto run = [&](SwizzleMode mode, DeliveryMode delivery) {
        BootedKernel bk(osMachineConfig(true));
        UserEnv env(bk.kernel, delivery);
        env.install(kAllExcMask);
        return runTraversal(env, mode, params).cycles;
    };

    Cycles exc_fast = run(SwizzleMode::LazyExceptions,
                          DeliveryMode::FastSoftware);
    Cycles exc_ultrix = run(SwizzleMode::LazyExceptions,
                            DeliveryMode::UltrixSignal);
    Cycles checks = run(SwizzleMode::LazyChecks,
                        DeliveryMode::FastSoftware);

    EXPECT_LT(exc_fast, exc_ultrix);
    EXPECT_LT(exc_fast, checks);
    EXPECT_LT(checks, exc_ultrix);
}

} // namespace
} // namespace uexc::apps
