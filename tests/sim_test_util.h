/**
 * @file
 * Shared helpers for simulator unit tests: build a bare machine, load
 * a short guest program written with the Assembler, and run it.
 */

#ifndef UEXC_TESTS_SIM_TEST_UTIL_H
#define UEXC_TESTS_SIM_TEST_UTIL_H

#include <functional>

#include "sim/assembler.h"
#include "sim/machine.h"

namespace uexc::sim::testutil {

/** Default origin for test programs: kseg0, clear of the vectors. */
constexpr Addr kTestOrigin = 0x80010000u;

/**
 * A machine plus conveniences for short guest programs. The CPU
 * starts in kernel mode (status = 0), so kseg0 programs run without
 * TLB setup.
 */
struct BareMachine
{
    explicit BareMachine(const MachineConfig &config = MachineConfig())
        : machine(config)
    {
    }

    /**
     * Assemble @p body at kTestOrigin, load it, point the PC at it.
     * The body is responsible for ending execution (hcall 0 halts).
     */
    Program loadAsm(const std::function<void(Assembler &)> &body)
    {
        Assembler a(kTestOrigin);
        body(a);
        Program p = a.finalize();
        machine.load(p);
        machine.cpu().setPc(kTestOrigin);
        return p;
    }

    /** Run until halt; asserts the program did halt. */
    RunResult runToHalt(InstCount max_insts = 1'000'000)
    {
        RunResult r = machine.cpu().run(max_insts);
        return r;
    }

    Cpu &cpu() { return machine.cpu(); }

    Machine machine;
};

/**
 * Establish a kuseg mapping: virtual page @p vaddr -> physical frame
 * @p paddr for @p asid, via a wired TLB entry.
 */
inline void
mapPage(Machine &m, Addr vaddr, Addr paddr, unsigned asid,
        unsigned tlb_index, bool writable = true,
        bool user_modifiable = false)
{
    Word hi = (vaddr & entryhi::VpnMask) |
              (asid << entryhi::AsidShift);
    Word lo = (paddr & entrylo::PfnMask) | entrylo::V;
    if (writable)
        lo |= entrylo::D;
    if (user_modifiable)
        lo |= entrylo::U;
    m.cpu().tlb().setEntry(tlb_index, hi, lo);
}

/** Switch the CPU to user mode with the given ASID. */
inline void
enterUserMode(Machine &m, unsigned asid)
{
    Cp0 &cp0 = m.cpu().cp0();
    cp0.setStatusReg(cp0.statusReg() | status::KUc);
    cp0.write(cp0reg::EntryHi,
              (cp0.entryHi() & ~entryhi::AsidMask) |
              (asid << entryhi::AsidShift));
}

} // namespace uexc::sim::testutil

#endif // UEXC_TESTS_SIM_TEST_UTIL_H
