/**
 * @file
 * Guest-level tests of the simulated kernel's dispatch paths: these
 * drive hand-written guest programs (not the UserEnv facade) to
 * verify the machine-code behaviour of the Ultrix signal machinery,
 * the fast path's register contract, recursive-exception semantics,
 * and the subpage emulation corner cases.
 */

#include <gtest/gtest.h>

#include "common/guesterror.h"
#include "common/logging.h"
#include "core/stubs.h"
#include "os_test_util.h"
#include "sim/cp0.h"

namespace uexc::os {
namespace {

using namespace sim;
using namespace testutil;
using rt::SavePolicy;
using rt::emitFastStub;
using rt::emitTrampoline;
using uexc::FatalError;
using uexc::setLoggingEnabled;

constexpr Word kFastMask =
    (1u << static_cast<unsigned>(ExcCode::Mod)) |
    (1u << static_cast<unsigned>(ExcCode::TlbL)) |
    (1u << static_cast<unsigned>(ExcCode::TlbS)) |
    (1u << static_cast<unsigned>(ExcCode::AdEL)) |
    (1u << static_cast<unsigned>(ExcCode::AdES)) |
    (1u << static_cast<unsigned>(ExcCode::Bp));

struct GuestRig
{
    explicit GuestRig(const sim::MachineConfig &cfg = osMachineConfig())
        : bk(cfg), proc(&bk.kernel.createProcess())
    {
    }

    /** Build, load and start a user program at its "main" label. */
    void
    start(const std::function<void(Assembler &)> &body)
    {
        Assembler a(kUserTextBase);
        body(a);
        prog = a.finalize();
        bk.kernel.loadProgram(*proc, prog);
        proc->as().allocate(0x10000000, kPageBytes,
                            kProtRead | kProtWrite);
        bk.kernel.enterUser(*proc, prog.symbol("main"));
    }

    /** Run until the guest reaches a label. */
    void
    runTo(const std::string &label, InstCount limit = 200000)
    {
        Cpu &cpu = bk.machine.cpu();
        cpu.addBreakpoint(prog.symbol(label));
        RunResult r = cpu.run(limit);
        cpu.removeBreakpoint(prog.symbol(label));
        ASSERT_EQ(r.reason, StopReason::Breakpoint)
            << "guest did not reach " << label;
    }

    Cpu &cpu() { return bk.machine.cpu(); }

    BootedKernel bk;
    Process *proc;
    Program prog;
};

TEST(GuestSignals, SigreturnRestoresEveryRegister)
{
    // load distinctive values into all callee/caller registers, take
    // a signal whose handler runs arbitrary code, verify every value
    // survives the full deliver + sigreturn cycle
    GuestRig rig;
    rig.start([](Assembler &a) {
        a.label("main");
        // fill s0-s7, t6-t9, gp with patterns
        for (unsigned i = 0; i < 8; i++)
            a.li(S0 + i, 0x5000 + i);
        a.li(T6, 0x6006);
        a.li(T7, 0x7007);
        a.li(T8, 0x8008);
        a.li(T9, 0x9009);
        a.li(GP, 0xa00a);
        a.li(T0, 0x1234);
        a.mthi(T0);
        a.li(T0, 0x4321);
        a.mtlo(T0);
        a.break_();            // SIGTRAP
        a.label("after");
        a.j("after");
        a.nop();

        a.label("handler");
        // clobber registers liberally; sigreturn must restore the
        // interrupted context regardless
        for (unsigned i = 0; i < 8; i++)
            a.li(S0 + i, 0xdead);
        a.li(T6, 0xdead);
        a.li(GP, 0xdead);
        // advance sc_pc past the break
        a.lw(T0, sigctx::Pc * 4, A2);
        a.addiu(T0, T0, 4);
        a.sw(T0, sigctx::Pc * 4, A2);
        a.jr(RA);
        a.nop();
        emitTrampoline(a, "tramp");
    });
    rig.proc->setField(proc::TrampolineU, rig.prog.symbol("tramp"));
    rig.proc->setField(proc::SigHandlers + 4 * kSigtrap,
                       rig.prog.symbol("handler"));
    rig.runTo("after");

    for (unsigned i = 0; i < 8; i++)
        EXPECT_EQ(rig.cpu().reg(S0 + i), 0x5000 + i) << "s" << i;
    EXPECT_EQ(rig.cpu().reg(T6), 0x6006u);
    EXPECT_EQ(rig.cpu().reg(T7), 0x7007u);
    EXPECT_EQ(rig.cpu().reg(T8), 0x8008u);
    EXPECT_EQ(rig.cpu().reg(T9), 0x9009u);
    EXPECT_EQ(rig.cpu().reg(GP), 0xa00au);
}

TEST(GuestSignals, HandlerCanRewriteContextRegisters)
{
    // the handler modifies a register in the sigcontext; sigreturn
    // materializes the change in the resumed context
    GuestRig rig;
    rig.start([](Assembler &a) {
        a.label("main");
        a.li(S0, 1);
        a.break_();
        a.label("after");
        a.j("after");
        a.nop();

        a.label("handler");
        a.li(T0, 777);
        a.sw(T0, (sigctx::Regs + S0 - 1) * 4, A2);  // sc->s0 = 777
        a.lw(T0, sigctx::Pc * 4, A2);
        a.addiu(T0, T0, 4);
        a.sw(T0, sigctx::Pc * 4, A2);
        a.jr(RA);
        a.nop();
        emitTrampoline(a, "tramp");
    });
    rig.proc->setField(proc::TrampolineU, rig.prog.symbol("tramp"));
    rig.proc->setField(proc::SigHandlers + 4 * kSigtrap,
                       rig.prog.symbol("handler"));
    rig.runTo("after");
    EXPECT_EQ(rig.cpu().reg(S0), 777u);
}

TEST(GuestSignals, SignalBlockedDuringHandlerUnblockedAfter)
{
    // Unix semantics: the delivered signal is added to the mask while
    // its handler runs; sigreturn restores the saved mask
    GuestRig rig;
    rig.start([](Assembler &a) {
        a.label("main");
        a.break_();
        a.label("between");
        a.break_();            // a second one, after sigreturn
        a.label("after");
        a.j("after");
        a.nop();

        a.label("handler");
        a.lw(T0, sigctx::Pc * 4, A2);
        a.addiu(T0, T0, 4);
        a.sw(T0, sigctx::Pc * 4, A2);
        a.jr(RA);
        a.nop();
        emitTrampoline(a, "tramp");
    });
    rig.proc->setField(proc::TrampolineU, rig.prog.symbol("tramp"));
    rig.proc->setField(proc::SigHandlers + 4 * kSigtrap,
                       rig.prog.symbol("handler"));

    rig.runTo("between");
    // after the first delivery completes, the mask must be clear
    EXPECT_EQ(rig.proc->field(proc::SigMask), 0u);
    rig.runTo("after");
    EXPECT_EQ(rig.proc->field(proc::SigMask), 0u);
}

TEST(GuestFast, StubRestoresScratchRegistersExactly)
{
    // at/t0-t5 are kernel-saved and stub-restored; verify the full
    // contract with live values in every one of them
    GuestRig rig;
    rig.start([](Assembler &a) {
        a.label("main");
        a.li(AT, 0x0a0a);
        a.li(T0, 0x1010);
        a.li(T1, 0x1111);
        a.li(T2, 0x1212);
        a.li(T3, 0x1313);
        a.li(T4, 0x1414);
        a.li(T5, 0x1515);
        a.li32(T6, 0x10000002);  // unaligned target
        a.lw(T7, 0, T6);         // AdEL
        a.label("after");
        a.j("after");
        a.nop();
        emitFastStub(a, "stub", rt::SavePolicy::UltrixEquivalent,
                     [](Assembler &as) {
                         // skip the faulting instruction
                         as.lw(T0, static_cast<SWord>(uframe::Epc), T3);
                         as.addiu(T0, T0, 4);
                         as.sw(T0, static_cast<SWord>(uframe::Epc), T3);
                     });
    });
    rig.bk.kernel.svcUexcEnable(*rig.proc, kFastMask,
                                rig.prog.symbol("stub"),
                                kUexcFramePage);
    rig.runTo("after");
    EXPECT_EQ(rig.cpu().reg(AT), 0x0a0au);
    EXPECT_EQ(rig.cpu().reg(T0), 0x1010u);
    EXPECT_EQ(rig.cpu().reg(T1), 0x1111u);
    EXPECT_EQ(rig.cpu().reg(T2), 0x1212u);
    EXPECT_EQ(rig.cpu().reg(T3), 0x1313u);
    EXPECT_EQ(rig.cpu().reg(T4), 0x1414u);
    EXPECT_EQ(rig.cpu().reg(T5), 0x1515u);
    EXPECT_EQ(rig.cpu().stats().userVectoredExceptions, 0u);
}

TEST(GuestFast, NestedSameTypeExceptionOverwritesFrame)
{
    // the paper, section 3.2: "a nested exception of the same type
    // will overwrite the information saved by the kernel on the
    // first exception of that type" — demonstrate the overwrite and
    // that a handler which remembered the first EPC still recovers
    GuestRig rig;
    rig.start([](Assembler &a) {
        a.label("main");
        a.li(S0, 0);               // nesting depth
        a.li32(T6, 0x10000002);
        a.label("first_fault");
        a.lw(T7, 0, T6);           // first AdEL
        a.label("after");
        a.j("after");
        a.nop();

        a.label("stub");
        a.addiu(S0, S0, 1);
        a.li(T0, 2);
        a.beq(S0, T0, "second_level");
        a.nop();
        // depth 1: remember the original EPC, then fault again
        a.lw(S1, static_cast<SWord>(uframe::Epc), T3);
        a.li32(T6, 0x10000006);
        a.label("nested_fault");
        a.lw(T7, 0, T6);           // nested AdEL: overwrites frame
        // back from depth 2: the frame's EPC is now the nested one
        a.lw(S4, static_cast<SWord>(uframe::Epc), T3);
        a.addiu(K0, S1, 4);        // recover via the remembered EPC
        a.jr(K0);
        a.nop();
        a.label("second_level");
        a.lw(S2, static_cast<SWord>(uframe::Epc), T3);
        a.addiu(K0, S2, 4);        // resume just past the nested lw
        a.jr(K0);
        a.nop();
    });
    rig.bk.kernel.svcUexcEnable(*rig.proc, kFastMask,
                                rig.prog.symbol("stub"),
                                kUexcFramePage);
    rig.runTo("after");
    EXPECT_EQ(rig.cpu().reg(S0), 2u);
    EXPECT_EQ(rig.cpu().reg(S1), rig.prog.symbol("first_fault"));
    EXPECT_EQ(rig.cpu().reg(S2), rig.prog.symbol("nested_fault"));
    // the overwrite the paper documents:
    EXPECT_EQ(rig.cpu().reg(S4), rig.cpu().reg(S2));
    EXPECT_NE(rig.cpu().reg(S4), rig.cpu().reg(S1));
}

TEST(GuestSubpage, EmulationHandlesBranchDelaySlot)
{
    // a store into an *unprotected* subpage sitting in a branch delay
    // slot: the kernel must emulate the store AND the branch
    GuestRig rig;
    rig.start([](Assembler &a) {
        a.label("main");
        a.li32(T6, 0x10000010);    // subpage 0: unprotected
        a.li(T7, 4242);
        a.li(S0, 1);
        a.label("br");
        a.bne(S0, Zero, "taken");  // taken branch
        a.sw(T7, 0, T6);           // delay slot: trapped + emulated
        a.li(V0, 111);             // skipped
        a.label("after_nottaken");
        a.j("park");
        a.nop();
        a.label("taken");
        a.li(V0, 222);
        a.label("park");
        a.j("park");
        a.nop();
        emitFastStub(a, "stub", rt::SavePolicy::UltrixEquivalent,
                     [](Assembler &) {});
    });
    rig.bk.kernel.svcUexcEnable(*rig.proc, kFastMask,
                                rig.prog.symbol("stub"),
                                kUexcFramePage);
    // protect subpage 2 so the hardware page traps writes, but the
    // store targets subpage 0 (emulated invisibly)
    rig.bk.kernel.svcSubpageProtect(*rig.proc, 0x10000800,
                                    kSubpageBytes, kProtRead);
    rig.runTo("park");
    EXPECT_EQ(rig.cpu().reg(V0), 222u) << "branch must be honored";
    EXPECT_EQ(rig.bk.machine.mem().readWord(
                  rig.proc->as().physOf(0x10000010)), 4242u);
    EXPECT_EQ(rig.bk.kernel.subpageEmulations(), 1u);
}

TEST(GuestSubpage, EmulationHandlesNotTakenBranchDelaySlot)
{
    GuestRig rig;
    rig.start([](Assembler &a) {
        a.label("main");
        a.li32(T6, 0x10000020);
        a.li(T7, 77);
        a.label("br");
        a.bne(Zero, Zero, "taken");   // never taken
        a.sw(T7, 0, T6);              // delay slot, emulated
        a.li(V0, 111);                // fall-through path
        a.j("park");
        a.nop();
        a.label("taken");
        a.li(V0, 222);
        a.label("park");
        a.j("park");
        a.nop();
        emitFastStub(a, "stub", rt::SavePolicy::UltrixEquivalent,
                     [](Assembler &) {});
    });
    rig.bk.kernel.svcUexcEnable(*rig.proc, kFastMask,
                                rig.prog.symbol("stub"),
                                kUexcFramePage);
    rig.bk.kernel.svcSubpageProtect(*rig.proc, 0x10000800,
                                    kSubpageBytes, kProtRead);
    rig.runTo("park");
    EXPECT_EQ(rig.cpu().reg(V0), 111u);
    EXPECT_EQ(rig.bk.machine.mem().readWord(
                  rig.proc->as().physOf(0x10000020)), 77u);
}

TEST(GuestSubpage, EmulatedStoreReadsKernelSavedValueRegister)
{
    // the faulting store's value register is t0, which the fast path
    // stashed in the frame before the kernel emulation ran: the
    // emulation must fetch the value from the frame, not from the
    // (clobbered) live register
    GuestRig rig;
    rig.start([](Assembler &a) {
        a.label("main");
        a.li32(T6, 0x10000040);
        a.li(T0, 31337);           // value in a kernel-saved register
        a.sw(T0, 0, T6);           // unprotected subpage: emulated
        a.label("park");
        a.j("park");
        a.nop();
        emitFastStub(a, "stub", rt::SavePolicy::UltrixEquivalent,
                     [](Assembler &) {});
    });
    rig.bk.kernel.svcUexcEnable(*rig.proc, kFastMask,
                                rig.prog.symbol("stub"),
                                kUexcFramePage);
    rig.bk.kernel.svcSubpageProtect(*rig.proc, 0x10000800,
                                    kSubpageBytes, kProtRead);
    rig.runTo("park");
    EXPECT_EQ(rig.bk.machine.mem().readWord(
                  rig.proc->as().physOf(0x10000040)), 31337u);
    EXPECT_EQ(rig.bk.kernel.subpageEmulations(), 1u);
}

TEST(GuestSyscall, SyscallInBranchDelaySlotIsFatal)
{
    setLoggingEnabled(false);
    GuestRig rig;
    rig.start([](Assembler &a) {
        a.label("main");
        a.li(V0, sys::Getpid);
        a.beq(Zero, Zero, "next");
        a.syscall();               // syscall in a delay slot
        a.label("next");
        a.j("next");
        a.nop();
    });
    EXPECT_THROW(rig.cpu().run(10000), GuestError);
    setLoggingEnabled(true);
}

TEST(GuestSyscall, GetpidReturnsPidToGuest)
{
    GuestRig rig;
    rig.start([](Assembler &a) {
        a.label("main");
        a.li(V0, sys::Getpid);
        a.syscall();
        a.move(S3, V0);
        a.label("park");
        a.j("park");
        a.nop();
    });
    rig.runTo("park");
    EXPECT_EQ(rig.cpu().reg(S3), rig.proc->pid());
}

TEST(GuestSyscall, SigactionSyscallInstallsHandler)
{
    GuestRig rig;
    rig.start([](Assembler &a) {
        a.label("main");
        a.li(A0, kSigtrap);
        a.la(A1, "handler");
        a.li(V0, sys::Sigaction);
        a.syscall();
        a.la(A0, "tramp");
        a.li(V0, sys::SetTrampoline);
        a.syscall();
        a.li(S5, 0);
        a.break_();
        a.label("after");
        a.j("after");
        a.nop();
        a.label("handler");
        a.li(T0, 1);
        a.sw(T0, (sigctx::Regs + S5 - 1) * 4, A2);  // sc->s5 = 1
        a.lw(T0, sigctx::Pc * 4, A2);
        a.addiu(T0, T0, 4);
        a.sw(T0, sigctx::Pc * 4, A2);
        a.jr(RA);
        a.nop();
        emitTrampoline(a, "tramp");
    });
    rig.runTo("after");
    EXPECT_EQ(rig.cpu().reg(S5), 1u);
}

TEST(GuestRi, TlbmpEmulationAdvancesPastInstruction)
{
    // software TLBMP emulation on a machine without the hardware:
    // executing tlbmp raises RI, the kernel performs the protection
    // change, and execution continues after the instruction
    GuestRig rig{osMachineConfig(/*hw_extensions=*/false)};
    rig.start([](Assembler &a) {
        a.label("main");
        a.li32(T6, 0x10000000);
        a.li(T7, 3);               // make writable + valid
        a.tlbmp(T6, T7);
        a.li(T0, 55);
        a.sw(T0, 0, T6);           // must succeed afterwards
        a.label("park");
        a.j("park");
        a.nop();
    });
    // write-protect via the kernel, granting the U bit
    rig.bk.kernel.svcUexcProtect(*rig.proc, 0x10000000, kPageBytes,
                                 kProtRead);
    rig.runTo("park");
    EXPECT_EQ(rig.bk.kernel.riEmulations(), 1u);
    EXPECT_EQ(rig.bk.machine.mem().readWord(
                  rig.proc->as().physOf(0x10000000)), 55u);
}

TEST(GuestRi, NonTlbmpReservedInstructionRaisesSigill)
{
    GuestRig rig{osMachineConfig(false)};
    rig.start([](Assembler &a) {
        a.label("main");
        a.word(0xf0000000u);       // garbage opcode: RI -> SIGILL
        a.label("after");
        a.j("after");
        a.nop();
        a.label("handler");
        a.li(T0, 0xaa);
        a.sw(T0, (sigctx::Regs + S6 - 1) * 4, A2);  // sc->s6 = 0xaa
        a.lw(T0, sigctx::Pc * 4, A2);
        a.addiu(T0, T0, 4);
        a.sw(T0, sigctx::Pc * 4, A2);
        a.jr(RA);
        a.nop();
        emitTrampoline(a, "tramp");
    });
    rig.proc->setField(proc::TrampolineU, rig.prog.symbol("tramp"));
    rig.proc->setField(proc::SigHandlers + 4 * kSigill,
                       rig.prog.symbol("handler"));
    rig.runTo("after");
    EXPECT_EQ(rig.cpu().reg(S6), 0xaau);
    EXPECT_EQ(rig.bk.kernel.riEmulations(), 0u);
}

TEST(GuestSyscall, ExitSyscallHaltsWithCode)
{
    GuestRig rig;
    rig.start([](Assembler &a) {
        a.label("main");
        a.li(A0, 42);
        a.li(V0, sys::Exit);
        a.syscall();
        a.label("park");
        a.j("park");
        a.nop();
    });
    RunResult r = rig.cpu().run(100000);
    EXPECT_EQ(r.reason, StopReason::Halted);
    EXPECT_TRUE(rig.bk.kernel.exited());
    EXPECT_EQ(rig.bk.kernel.exitCode(), 42u);
}

TEST(GuestSyscall, UexcEnableViaGuestSyscall)
{
    // the paper's new system call, invoked from guest code rather
    // than the host-side setup helper
    GuestRig rig;
    rig.start([](Assembler &a) {
        a.label("main");
        a.li(A0, 1u << static_cast<unsigned>(ExcCode::AdEL));
        a.la(A1, "stub");
        a.li32(A2, kUexcFramePage);
        a.li(V0, sys::UexcEnable);
        a.syscall();
        a.move(S2, V0);
        // now take a fast exception
        a.li32(T6, 0x10000002);
        a.lw(T7, 0, T6);
        a.label("park");
        a.j("park");
        a.nop();
        rt::emitFastStub(a, "stub", rt::SavePolicy::Minimal,
                         [](Assembler &as) {
                             as.lw(T0, SWord(uframe::Epc), T3);
                             as.addiu(T0, T0, 4);
                             as.sw(T0, SWord(uframe::Epc), T3);
                         });
    });
    rig.runTo("park");
    EXPECT_EQ(rig.cpu().reg(S2), 0u);   // syscall success
    EXPECT_EQ(rig.proc->field(proc::UexcHandler),
              rig.prog.symbol("stub"));
    EXPECT_EQ(rig.cpu().stats().perExcCode[
                  static_cast<unsigned>(ExcCode::AdEL)], 1u);
}

} // namespace
} // namespace uexc::os
