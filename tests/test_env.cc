/**
 * @file
 * End-to-end tests of the exception runtime through the UserEnv
 * facade, parameterized over all three delivery mechanisms: stock
 * Ultrix signals, the paper's fast software scheme, and the proposed
 * hardware user vectoring. Each test drives the complete simulated
 * path: MMU fault -> vectoring -> kernel or direct delivery ->
 * user-level stub -> host handler -> resume.
 */

#include <gtest/gtest.h>

#include "common/guesterror.h"
#include "common/logging.h"
#include "os_test_util.h"

namespace uexc::rt {
namespace {

using namespace os;
using namespace os::testutil;
using sim::ExcCode;

constexpr Addr kHeap = 0x10000000;

const char *
modeName(DeliveryMode m)
{
    switch (m) {
      case DeliveryMode::UltrixSignal: return "UltrixSignal";
      case DeliveryMode::FastSoftware: return "FastSoftware";
      case DeliveryMode::FastHardwareVector: return "FastHardwareVector";
    }
    return "?";
}

class EnvModes : public ::testing::TestWithParam<DeliveryMode>
{
  protected:
    EnvModes()
        : booted_(osMachineConfig(/*hw_extensions=*/true)),
          env_(booted_.kernel, GetParam())
    {
        env_.install(kAllExcMask);
    }

    BootedKernel booted_;
    UserEnv env_;
};

TEST_P(EnvModes, PlainLoadStoreRoundTrip)
{
    env_.allocate(kHeap, kPageBytes);
    env_.store(kHeap + 0x40, 0xfeedface);
    EXPECT_EQ(env_.load(kHeap + 0x40), 0xfeedfaceu);
    EXPECT_EQ(env_.stats().faultsDelivered, 0u);
}

TEST_P(EnvModes, FirstTouchTakesTlbRefillTransparently)
{
    env_.allocate(kHeap, 16 * kPageBytes);
    for (unsigned i = 0; i < 16; i++)
        env_.store(kHeap + i * kPageBytes, i);
    for (unsigned i = 0; i < 16; i++)
        EXPECT_EQ(env_.load(kHeap + i * kPageBytes), i);
    EXPECT_EQ(env_.stats().faultsDelivered, 0u);
    EXPECT_GT(env_.cpu().stats().tlbRefillFaults, 0u);
}

TEST_P(EnvModes, WriteProtectionFaultDelivered)
{
    env_.allocate(kHeap, kPageBytes);
    env_.protect(kHeap, kPageBytes, kProtRead);

    ExcCode seen_code{};
    Addr seen_badva = 0;
    env_.setHandler([&](Fault &f) {
        seen_code = f.code();
        seen_badva = f.badVaddr();
        env_.protect(kHeap, kPageBytes, kProtRead | kProtWrite);
    });

    env_.store(kHeap + 0x24, 77);
    EXPECT_EQ(env_.stats().faultsDelivered, 1u);
    EXPECT_EQ(seen_code, ExcCode::Mod);
    EXPECT_EQ(seen_badva, kHeap + 0x24);
    EXPECT_EQ(env_.load(kHeap + 0x24), 77u);
    // no further faults now that the page is writable again
    env_.store(kHeap + 0x28, 78);
    EXPECT_EQ(env_.stats().faultsDelivered, 1u);
}

TEST_P(EnvModes, NoAccessProtectionFaultOnLoad)
{
    env_.allocate(kHeap, kPageBytes);
    env_.store(kHeap, 1234);
    env_.protect(kHeap, kPageBytes, 0);

    env_.setHandler([&](Fault &f) {
        EXPECT_EQ(f.code(), ExcCode::TlbL);
        env_.protect(kHeap, kPageBytes, kProtRead | kProtWrite);
    });
    EXPECT_EQ(env_.load(kHeap), 1234u);
    EXPECT_EQ(env_.stats().faultsDelivered, 1u);
}

TEST_P(EnvModes, UnalignedLoadDeliveredAndRepaired)
{
    env_.allocate(kHeap, kPageBytes);
    env_.store(kHeap + 0x40, 0xabcd0123);

    env_.setHandler([&](Fault &f) {
        EXPECT_EQ(f.code(), ExcCode::AdEL);
        EXPECT_EQ(f.badVaddr(), kHeap + 0x42);
        // repair the pointer register, as a swizzling handler would
        EXPECT_EQ(f.reg(sim::T6), kHeap + 0x42);
        f.setReg(sim::T6, kHeap + 0x40);
    });
    EXPECT_EQ(env_.load(kHeap + 0x42), 0xabcd0123u);
    EXPECT_EQ(env_.stats().faultsDelivered, 1u);
}

TEST_P(EnvModes, UnalignedStoreDelivered)
{
    env_.allocate(kHeap, kPageBytes);
    env_.setHandler([&](Fault &f) {
        EXPECT_EQ(f.code(), ExcCode::AdES);
        f.setReg(sim::T6, kHeap + 0x10);
    });
    env_.store(kHeap + 0x13, 99);
    EXPECT_EQ(env_.load(kHeap + 0x10), 99u);
}

TEST_P(EnvModes, ResumeAtSkipsFaultingInstruction)
{
    env_.allocate(kHeap, kPageBytes);
    env_.store(kHeap, 1);
    env_.protect(kHeap, kPageBytes, kProtRead);

    env_.setHandler([&](Fault &f) {
        // suppress the store entirely
        f.resumeAt(f.pc() + 4);
    });
    env_.store(kHeap, 42);
    EXPECT_EQ(env_.stats().faultsDelivered, 1u);
    env_.protect(kHeap, kPageBytes, kProtRead | kProtWrite);
    EXPECT_EQ(env_.load(kHeap), 1u);  // unchanged
}

TEST_P(EnvModes, HandlerSeesStoredValueRegister)
{
    env_.allocate(kHeap, kPageBytes);
    env_.protect(kHeap, kPageBytes, kProtRead);
    Word seen = 0;
    env_.setHandler([&](Fault &f) {
        seen = f.reg(sim::T7);
        env_.protect(kHeap, kPageBytes, kProtRead | kProtWrite);
    });
    env_.store(kHeap, 0x5151);
    EXPECT_EQ(seen, 0x5151u);
}

TEST_P(EnvModes, GetpidSyscall)
{
    EXPECT_EQ(env_.guestSyscall(sys::Getpid),
              env_.process().pid());
}

TEST_P(EnvModes, UnknownSyscallReturnsError)
{
    // 18..31 hit the guest table's bad_syscall rows; 99 fails the
    // dispatch range check outright.
    EXPECT_EQ(env_.guestSyscall(25), static_cast<Word>(-1));
    EXPECT_EQ(env_.guestSyscall(99), static_cast<Word>(-1));
}

TEST_P(EnvModes, RepeatedFaultsAllDelivered)
{
    env_.allocate(kHeap, 4 * kPageBytes);
    unsigned count = 0;
    env_.setHandler([&](Fault &f) {
        count++;
        Addr page = f.badVaddr() & ~(kPageBytes - 1);
        env_.protect(page, kPageBytes, kProtRead | kProtWrite);
    });
    for (unsigned round = 0; round < 3; round++) {
        env_.protect(kHeap, 4 * kPageBytes, kProtRead);
        for (unsigned i = 0; i < 4; i++)
            env_.store(kHeap + i * kPageBytes + 8, round * 10 + i);
    }
    EXPECT_EQ(count, 12u);
    EXPECT_EQ(env_.load(kHeap + 3 * kPageBytes + 8), 23u);
}

TEST_P(EnvModes, CyclesAdvanceWithWork)
{
    env_.allocate(kHeap, kPageBytes);
    Cycles before = env_.cycles();
    for (int i = 0; i < 100; i++)
        env_.store(kHeap + 4 * i, i);
    Cycles after = env_.cycles();
    EXPECT_GE(after - before, 100u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, EnvModes,
    ::testing::Values(DeliveryMode::UltrixSignal,
                      DeliveryMode::FastSoftware,
                      DeliveryMode::FastHardwareVector),
    [](const ::testing::TestParamInfo<DeliveryMode> &info) {
        return modeName(info.param);
    });

// -- mode-specific behaviour -------------------------------------------------

TEST(EnvOrdering, FaultRoundTripCostOrdering)
{
    // the paper's central claim, end to end: hardware vectoring <
    // fast software scheme < stock Unix signals
    auto measure = [](DeliveryMode mode) {
        BootedKernel bk(osMachineConfig(true));
        UserEnv env(bk.kernel, mode);
        env.install(kAllExcMask);
        env.allocate(kHeap, kPageBytes);
        env.setHandler([&](Fault &f) { f.resumeAt(f.pc() + 4); });
        env.protect(kHeap, kPageBytes, kProtRead);
        // warm one fault, then measure the second
        env.store(kHeap, 1);
        Cycles before = env.cycles();
        env.store(kHeap, 2);
        return env.cycles() - before;
    };

    Cycles ultrix = measure(DeliveryMode::UltrixSignal);
    Cycles fast_sw = measure(DeliveryMode::FastSoftware);
    Cycles fast_hw = measure(DeliveryMode::FastHardwareVector);

    EXPECT_LT(fast_hw, fast_sw);
    EXPECT_LT(fast_sw, ultrix);
    // order of magnitude between stock and fast software (paper: 10x
    // on the round trip; protection faults are ~4x)
    EXPECT_GT(ultrix, 3 * fast_sw);
}

TEST(EnvEager, EagerAmplificationSkipsHandlerReprotect)
{
    BootedKernel bk;
    UserEnv env(bk.kernel, DeliveryMode::FastSoftware);
    env.install(kAllExcMask);
    env.allocate(kHeap, kPageBytes);
    env.setEagerAmplify(true);

    unsigned faults = 0;
    env.setHandler([&](Fault &) {
        faults++;
        // note: no unprotect call — the kernel already amplified
    });
    env.protect(kHeap, kPageBytes, kProtRead);
    env.store(kHeap, 7);
    EXPECT_EQ(faults, 1u);
    EXPECT_EQ(env.load(kHeap), 7u);
    // page stays amplified until re-protected
    env.store(kHeap, 8);
    EXPECT_EQ(faults, 1u);
    EXPECT_EQ(env.stats().inHandlerServiceCalls, 0u);
}

TEST(EnvSubpage, UnprotectedSubpageAccessIsEmulatedSilently)
{
    BootedKernel bk;
    UserEnv env(bk.kernel, DeliveryMode::FastSoftware);
    env.install(kAllExcMask);
    env.allocate(kHeap, kPageBytes);
    unsigned faults = 0;
    env.setHandler([&](Fault &) { faults++; });

    // protect only subpage 2 ([0x800, 0xc00))
    env.subpageProtect(kHeap + 0x800, kSubpageBytes, kProtRead);
    // a store into subpage 0 traps to the kernel but is emulated
    env.store(kHeap + 0x10, 123);
    EXPECT_EQ(env.load(kHeap + 0x10), 123u);
    EXPECT_EQ(faults, 0u);
    EXPECT_EQ(bk.kernel.subpageEmulations(), 1u);
}

TEST(EnvSubpage, ProtectedSubpageAccessVectorsToUser)
{
    BootedKernel bk;
    UserEnv env(bk.kernel, DeliveryMode::FastSoftware);
    env.install(kAllExcMask);
    env.allocate(kHeap, kPageBytes);
    unsigned faults = 0;
    Addr seen = 0;
    env.setHandler([&](Fault &f) {
        faults++;
        seen = f.badVaddr();
    });

    env.subpageProtect(kHeap + 0x800, kSubpageBytes, kProtRead);
    env.store(kHeap + 0x804, 55);  // protected subpage
    EXPECT_EQ(faults, 1u);
    EXPECT_EQ(seen, kHeap + 0x804);
    // the kernel amplified the page before vectoring: the retried
    // store completed and further stores are free
    EXPECT_EQ(env.load(kHeap + 0x804), 55u);
    env.store(kHeap + 0x808, 56);
    EXPECT_EQ(faults, 1u);
}

TEST(EnvSubpage, ReprotectRestoresChecksAfterAmplify)
{
    BootedKernel bk;
    UserEnv env(bk.kernel, DeliveryMode::FastSoftware);
    env.install(kAllExcMask);
    env.allocate(kHeap, kPageBytes);
    unsigned faults = 0;
    env.setHandler([&](Fault &) { faults++; });

    env.subpageProtect(kHeap + 0x800, kSubpageBytes, kProtRead);
    env.store(kHeap + 0x804, 1);   // fault 1, page amplified
    // user re-arms the checks (the paper's "subsequent call ...
    // re-enables protection checks on the logical page")
    env.subpageProtect(kHeap + 0x800, kSubpageBytes, kProtRead);
    env.store(kHeap + 0x80c, 2);   // fault 2
    EXPECT_EQ(faults, 2u);
}

TEST(EnvTlbmp, HardwareModifiesProtectionWithoutKernel)
{
    BootedKernel bk(osMachineConfig(/*hw_extensions=*/true));
    UserEnv env(bk.kernel, DeliveryMode::FastSoftware);
    env.install(kAllExcMask);
    env.allocate(kHeap, kPageBytes);
    env.setHandler([&](Fault &) { FAIL() << "no fault expected"; });

    // write-protect via the kernel (grants the U bit), then
    // re-enable writes entirely at user level with TLBMP
    env.protect(kHeap, kPageBytes, kProtRead);
    // touch to get the entry into the TLB (read is allowed)
    env.load(kHeap);
    std::uint64_t ri_before = bk.kernel.riEmulations();
    env.userTlbModify(kHeap, /*writable=*/true, /*valid=*/true);
    EXPECT_EQ(bk.kernel.riEmulations(), ri_before);  // pure hardware
    env.store(kHeap, 9);
    EXPECT_EQ(env.load(kHeap), 9u);
}

TEST(EnvTlbmp, SoftwareEmulationViaReservedInstruction)
{
    BootedKernel bk(osMachineConfig(/*hw_extensions=*/false));
    UserEnv env(bk.kernel, DeliveryMode::FastSoftware);
    env.install(kAllExcMask);
    env.allocate(kHeap, kPageBytes);
    env.setHandler([&](Fault &) { FAIL() << "no fault expected"; });

    env.protect(kHeap, kPageBytes, kProtRead);
    env.userTlbModify(kHeap, true, true);
    EXPECT_EQ(bk.kernel.riEmulations(), 1u);
    env.store(kHeap, 10);
    EXPECT_EQ(env.load(kHeap), 10u);
}

TEST(EnvTlbmp, HardwarePathIsCheaperThanEmulation)
{
    auto measure = [](bool hw) {
        BootedKernel bk(osMachineConfig(hw));
        UserEnv env(bk.kernel, DeliveryMode::FastSoftware);
        env.install(kAllExcMask);
        env.allocate(kHeap, kPageBytes);
        env.protect(kHeap, kPageBytes, kProtRead);
        env.load(kHeap);  // pull the mapping into the TLB
        Cycles before = env.cycles();
        env.userTlbModify(kHeap, true, true);
        return env.cycles() - before;
    };
    Cycles hw = measure(true);
    Cycles sw = measure(false);
    EXPECT_LT(hw, sw / 4);
}

TEST(EnvPolicy, KernelStripsNonDeliverableTypesFromTheMask)
{
    // section 3.2: syscalls, coprocessor-unusable (and interrupts,
    // and RI for opcode emulation) can never be delivered fast
    BootedKernel bk;
    UserEnv env(bk.kernel, DeliveryMode::FastSoftware);
    env.install(0xffff);
    Word mask = env.process().field(os::proc::UexcMask);
    EXPECT_EQ(mask & (1u << static_cast<unsigned>(ExcCode::Sys)), 0u);
    EXPECT_EQ(mask & (1u << static_cast<unsigned>(ExcCode::Int)), 0u);
    EXPECT_EQ(mask & (1u << static_cast<unsigned>(ExcCode::CpU)), 0u);
    EXPECT_EQ(mask & (1u << static_cast<unsigned>(ExcCode::Ri)), 0u);
    EXPECT_NE(mask & (1u << static_cast<unsigned>(ExcCode::Mod)), 0u);
    EXPECT_NE(mask & (1u << static_cast<unsigned>(ExcCode::AdEL)), 0u);
}

TEST(EnvErrors, FaultWithoutHandlerIsFatal)
{
    setLoggingEnabled(false);
    BootedKernel bk;
    UserEnv env(bk.kernel, DeliveryMode::FastSoftware);
    env.install(kAllExcMask);
    env.allocate(kHeap, kPageBytes);
    env.protect(kHeap, kPageBytes, kProtRead);
    EXPECT_THROW(env.store(kHeap, 1), GuestError);
    setLoggingEnabled(true);
}

TEST(EnvErrors, SecondEnvOnSameKernelIsFatal)
{
    setLoggingEnabled(false);
    BootedKernel bk;
    UserEnv first(bk.kernel, DeliveryMode::FastSoftware);
    first.install(kAllExcMask);
    UserEnv second(bk.kernel, DeliveryMode::FastSoftware);
    EXPECT_THROW(second.install(kAllExcMask), FatalError);
    setLoggingEnabled(true);
}

TEST(EnvErrors, HardwareModeRequiresHardware)
{
    setLoggingEnabled(false);
    BootedKernel bk(osMachineConfig(false));
    EXPECT_THROW(UserEnv(bk.kernel, DeliveryMode::FastHardwareVector),
                 FatalError);
    setLoggingEnabled(true);
}

} // namespace
} // namespace uexc::rt
