/**
 * @file
 * CPU tests: loads and stores in kseg0, TLB-mapped kuseg accesses,
 * and the cache/cost accounting on the memory path.
 */

#include <gtest/gtest.h>

#include "sim_test_util.h"

namespace uexc::sim {
namespace {

using testutil::BareMachine;
using testutil::mapPage;

TEST(CpuMemory, WordLoadStoreKseg0)
{
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        as.la(T0, "buf");
        as.li32(T1, 0xcafef00du);
        as.sw(T1, 0, T0);
        as.lw(V0, 0, T0);
        as.hcall(0);
        as.align(8);
        as.label("buf");
        as.space(8);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(V0), 0xcafef00du);
}

TEST(CpuMemory, ByteAndHalfSemantics)
{
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        as.la(T0, "buf");
        as.li32(T1, 0x818283f4u);
        as.sw(T1, 0, T0);
        as.lb(V0, 3, T0);    // 0x81 sign-extended
        as.lbu(V1, 3, T0);   // 0x81 zero-extended
        as.lh(A0, 2, T0);    // 0x8182 sign-extended
        as.lhu(A1, 2, T0);   // 0x8182 zero-extended
        as.lb(A2, 0, T0);    // 0xf4 sign-extended
        as.li(T2, 0x55);
        as.sb(T2, 1, T0);
        as.lw(A3, 0, T0);
        as.hcall(0);
        as.align(8);
        as.label("buf");
        as.space(8);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(V0), 0xffffff81u);
    EXPECT_EQ(m.cpu().reg(V1), 0x00000081u);
    EXPECT_EQ(m.cpu().reg(A0), 0xffff8182u);
    EXPECT_EQ(m.cpu().reg(A1), 0x00008182u);
    EXPECT_EQ(m.cpu().reg(A2), 0xfffffff4u);
    EXPECT_EQ(m.cpu().reg(A3), 0x818255f4u);
}

TEST(CpuMemory, NegativeDisplacement)
{
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        as.la(T0, "buf_end");
        as.li(T1, 42);
        as.sw(T1, -4, T0);
        as.lw(V0, -4, T0);
        as.hcall(0);
        as.align(8);
        as.label("buf");
        as.space(8);
        as.label("buf_end");
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(V0), 42u);
}

TEST(CpuMemory, KusegMappedAccessThroughTlb)
{
    BareMachine m;
    // map user page 0x00400000 -> phys 0x00200000
    mapPage(m.machine, 0x00400000, 0x00200000, 0, 0);
    m.loadAsm([&](Assembler &as) {
        as.li32(T0, 0x00400000u);
        as.li(T1, 1234);
        as.sw(T1, 0x10, T0);
        as.lw(V0, 0x10, T0);
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(V0), 1234u);
    // the store really landed in the mapped physical frame
    EXPECT_EQ(m.machine.mem().readWord(0x00200010), 1234u);
}

TEST(CpuMemory, LoadsAndStoresCounted)
{
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        as.la(T0, "buf");
        as.sw(Zero, 0, T0);
        as.sw(Zero, 4, T0);
        as.lw(V0, 0, T0);
        as.hcall(0);
        as.align(8);
        as.label("buf");
        as.space(8);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().stats().stores, 2u);
    EXPECT_EQ(m.cpu().stats().loads, 1u);
}

TEST(CpuMemory, CacheModelChargesMissPenalties)
{
    MachineConfig cold, hot;
    cold.cpu.cachesEnabled = true;
    hot.cpu.cachesEnabled = false;

    auto body = [](Assembler &as) {
        as.la(T0, "buf");
        as.li(T1, 64);
        as.label("loop");
        as.sw(T1, 0, T0);
        as.addiu(T0, T0, 4);
        as.addiu(T1, T1, -1);
        as.bne(T1, Zero, "loop");
        as.nop();
        as.hcall(0);
        as.align(16);
        as.label("buf");
        as.space(64 * 4);
    };

    BareMachine with_cache{cold}, without_cache{hot};
    with_cache.loadAsm(body);
    without_cache.loadAsm(body);
    with_cache.runToHalt();
    without_cache.runToHalt();

    EXPECT_EQ(with_cache.cpu().instret(), without_cache.cpu().instret());
    EXPECT_GT(with_cache.cpu().cycles(), without_cache.cpu().cycles());
    ASSERT_NE(with_cache.cpu().dcache(), nullptr);
    EXPECT_GT(with_cache.cpu().dcache()->stats().misses, 0u);
    EXPECT_GT(with_cache.cpu().icache()->stats().misses, 0u);
}

TEST(CpuMemory, WarmLoopIsCheaperThanColdLoop)
{
    MachineConfig cfg;
    cfg.cpu.cachesEnabled = true;
    BareMachine m{cfg};
    Program p = m.loadAsm([&](Assembler &as) {
        as.label("iter");
        as.la(T0, "buf");
        as.lw(V0, 0, T0);
        as.lw(V0, 4, T0);
        as.lw(V0, 8, T0);
        as.label("iter_end");
        as.nop();
        as.align(16);
        as.label("buf");
        as.space(16);
    });
    // run one cold iteration then one warm one, measuring cycles via
    // breakpoints at "iter_end"
    Addr iter = p.symbol("iter");
    Addr end = p.symbol("iter_end");
    m.cpu().setPc(iter);
    m.cpu().addBreakpoint(end);
    m.cpu().run(1000);
    Cycles cold_cycles = m.cpu().cycles();
    m.cpu().setPc(iter);
    Cycles before = m.cpu().cycles();
    m.cpu().run(1000);
    Cycles warm_cycles = m.cpu().cycles() - before;
    EXPECT_LT(warm_cycles, cold_cycles);
}

TEST(CpuMemory, ChargeDataAccessModelsDcache)
{
    MachineConfig cfg;
    cfg.cpu.cachesEnabled = true;
    BareMachine m{cfg};
    Cycles first = m.cpu().chargeDataAccess(0x1000, true);
    Cycles second = m.cpu().chargeDataAccess(0x1000, true);
    EXPECT_GT(first, second);
    EXPECT_EQ(second, 0u);
    // uncacheable accesses always pay
    Cycles unc = m.cpu().chargeDataAccess(0x2000, false);
    EXPECT_GT(unc, 0u);
}

} // namespace
} // namespace uexc::sim
