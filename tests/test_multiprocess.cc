/**
 * @file
 * Multi-process tests: distinct address spaces behind distinct ASIDs
 * on one machine, TLB tagging across context switches without
 * flushes, and per-process fast-exception state.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/stubs.h"
#include "os_test_util.h"

namespace uexc::os {
namespace {

using namespace sim;
using namespace testutil;
using uexc::FatalError;
using uexc::setLoggingEnabled;

constexpr Addr kSharedVa = 0x10000000;

/** A tiny program: store S0 to kSharedVa, then spin at "park". */
Program
storeProgram()
{
    Assembler a(kUserTextBase);
    a.label("main");
    a.li32(T6, kSharedVa);
    a.sw(S0, 0, T6);
    a.lw(S1, 0, T6);
    a.label("park");
    a.j("park");
    a.nop();
    return a.finalize();
}

void
runToPark(sim::Machine &m, const Program &p)
{
    m.cpu().addBreakpoint(p.symbol("park"));
    RunResult r = m.cpu().run(100000);
    m.cpu().removeBreakpoint(p.symbol("park"));
    ASSERT_EQ(r.reason, StopReason::Breakpoint);
}

TEST(MultiProcess, SameVaDifferentPhysicalFrames)
{
    BootedKernel bk;
    Process &p1 = bk.kernel.createProcess();
    Process &p2 = bk.kernel.createProcess();
    Program prog = storeProgram();
    bk.kernel.loadProgram(p1, prog);
    bk.kernel.loadProgram(p2, prog);
    p1.as().allocate(kSharedVa, kPageBytes, kProtRead | kProtWrite);
    p2.as().allocate(kSharedVa, kPageBytes, kProtRead | kProtWrite);

    ASSERT_NE(p1.as().frameOf(kSharedVa), p2.as().frameOf(kSharedVa));
    ASSERT_NE(p1.asid(), p2.asid());

    bk.kernel.enterUser(p1, prog.symbol("main"));
    bk.machine.cpu().setReg(S0, 111);
    runToPark(bk.machine, prog);

    bk.kernel.enterUser(p2, prog.symbol("main"));
    bk.machine.cpu().setReg(S0, 222);
    runToPark(bk.machine, prog);

    EXPECT_EQ(bk.machine.mem().readWord(p1.as().physOf(kSharedVa)),
              111u);
    EXPECT_EQ(bk.machine.mem().readWord(p2.as().physOf(kSharedVa)),
              222u);
}

TEST(MultiProcess, TlbTaggingIsolatesWithoutFlush)
{
    // after p1 runs, its TLB entries are resident; switching to p2
    // (different ASID) must not let p2 read through p1's entries
    BootedKernel bk;
    Process &p1 = bk.kernel.createProcess();
    Process &p2 = bk.kernel.createProcess();
    Program prog = storeProgram();
    bk.kernel.loadProgram(p1, prog);
    bk.kernel.loadProgram(p2, prog);
    p1.as().allocate(kSharedVa, kPageBytes, kProtRead | kProtWrite);
    p2.as().allocate(kSharedVa, kPageBytes, kProtRead | kProtWrite);

    bk.kernel.enterUser(p1, prog.symbol("main"));
    bk.machine.cpu().setReg(S0, 0xaaaa);
    runToPark(bk.machine, prog);
    // p1's translation for kSharedVa is now cached
    ASSERT_TRUE(bk.machine.cpu().tlb().probeQuiet(kSharedVa,
                                                  p1.asid()));

    std::uint64_t refills_before =
        bk.machine.cpu().stats().tlbRefillFaults;
    bk.kernel.enterUser(p2, prog.symbol("main"));
    bk.machine.cpu().setReg(S0, 0xbbbb);
    runToPark(bk.machine, prog);

    // p2 loaded its own value back: no cross-ASID leakage
    EXPECT_EQ(bk.machine.cpu().reg(S1), 0xbbbbu);
    // and it took its own refills rather than reusing p1's entries
    EXPECT_GT(bk.machine.cpu().stats().tlbRefillFaults,
              refills_before);
    EXPECT_EQ(bk.machine.mem().readWord(p1.as().physOf(kSharedVa)),
              0xaaaau);
}

TEST(MultiProcess, FastExceptionStateIsPerProcess)
{
    // p1 enables fast exceptions; p2 does not: the same fault type
    // takes the fast path in p1 and the stock Unix path in p2
    BootedKernel bk;
    Process &p1 = bk.kernel.createProcess();
    Process &p2 = bk.kernel.createProcess();

    Assembler a(kUserTextBase);
    a.label("main");
    a.li32(T6, kSharedVa + 2);   // unaligned
    a.lw(T7, 0, T6);
    a.label("park");
    a.j("park");
    a.nop();
    rt::emitFastStub(a, "stub", rt::SavePolicy::Minimal,
                     [](Assembler &as) {
                         as.lw(T0, SWord(uframe::Epc), T3);
                         as.addiu(T0, T0, 4);
                         as.sw(T0, SWord(uframe::Epc), T3);
                         as.li(T1, 0x0fa0);
                         as.sw(T1, SWord(uframe::Spill), T3);
                     });
    a.label("sig_handler");
    a.lw(T0, sigctx::Pc * 4, A2);
    a.addiu(T0, T0, 4);
    a.sw(T0, sigctx::Pc * 4, A2);
    a.jr(RA);
    a.nop();
    rt::emitTrampoline(a, "tramp");
    Program prog = a.finalize();

    for (Process *p : {&p1, &p2}) {
        bk.kernel.loadProgram(*p, prog);
        p->as().allocate(kSharedVa, kPageBytes,
                         kProtRead | kProtWrite);
        p->setField(proc::TrampolineU, prog.symbol("tramp"));
        p->setField(proc::SigHandlers + 4 * kSigbus,
                    prog.symbol("sig_handler"));
    }
    bk.kernel.svcUexcEnable(p1,
                            1u << static_cast<unsigned>(ExcCode::AdEL),
                            prog.symbol("stub"), kUexcFramePage);

    // p1: the fast stub leaves its marker in the frame spill area
    bk.kernel.enterUser(p1, prog.symbol("main"));
    runToPark(bk.machine, prog);
    Addr frame_k = p1.field(proc::UexcFrameK) +
                   (static_cast<Word>(ExcCode::AdEL)
                    << uframe::FrameShift);
    EXPECT_EQ(bk.machine.debugReadWord(frame_k + uframe::Spill),
              0x0fa0u);

    // p2: the stock path delivered SIGBUS via the trampoline (no
    // frame page exists at all)
    Cycles before = bk.machine.cpu().cycles();
    bk.kernel.enterUser(p2, prog.symbol("main"));
    runToPark(bk.machine, prog);
    Cycles p2_cost = bk.machine.cpu().cycles() - before;
    EXPECT_EQ(p2.field(proc::UexcFrameK), 0u);
    // and it cost an order of magnitude more
    EXPECT_GT(p2_cost, 800u);
}

TEST(MultiProcess, ManyProcessesUntilPageTableArenaFills)
{
    setLoggingEnabled(false);
    sim::MachineConfig cfg;
    cfg.memBytes = 16 * 1024 * 1024;   // room for ~5 page tables
    BootedKernel bk(cfg);
    unsigned created = 0;
    try {
        for (int i = 0; i < 64; i++) {
            bk.kernel.createProcess();
            created++;
        }
        FAIL() << "expected page-table arena exhaustion";
    } catch (const FatalError &) {
        EXPECT_GE(created, 3u);
    }
    setLoggingEnabled(true);
}

} // namespace
} // namespace uexc::os
