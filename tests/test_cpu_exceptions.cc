/**
 * @file
 * CPU tests: the R3000 trap architecture. Exception vectoring, EPC
 * and Cause/BadVAddr recording, the status-word mode stack, rfe,
 * branch-delay attribution, TLB refill vs. general vectoring, and
 * privilege enforcement.
 */

#include <gtest/gtest.h>

#include "sim_test_util.h"

namespace uexc::sim {
namespace {

using testutil::BareMachine;
using testutil::enterUserMode;
using testutil::mapPage;

/** Marker values the stub vectors leave in K0. */
constexpr Word kRefillMark = 0x1111;
constexpr Word kGeneralMark = 0x2222;

/**
 * Install stub vectors: each records its marker in K0 and halts.
 * CP0 state (EPC, Cause, BadVAddr) is inspected directly by tests.
 */
void
installHaltingVectors(Machine &m)
{
    Assembler v(Cpu::RefillVector);
    v.li32(K0, kRefillMark);
    v.hcall(0);
    v.align(0x80);
    // general vector is at +0x80
    v.li32(K0, kGeneralMark);
    v.hcall(0);
    m.load(v.finalize());
}

/**
 * Install a general vector that skips the faulting instruction:
 * EPC += 4, then rfe-return. Lets tests observe execution resuming.
 */
void
installSkippingGeneralVector(Machine &m)
{
    Assembler v(Cpu::RefillVector);
    v.li32(K0, kRefillMark);
    v.hcall(0);
    v.align(0x80);
    v.mfc0(K0, cp0reg::Epc);
    v.addiu(K0, K0, 4);
    v.jr(K0);
    v.rfe();
    m.load(v.finalize());
}

ExcCode
causeCode(const Cpu &cpu)
{
    return static_cast<ExcCode>(
        (cpu.cp0().causeReg() & cause::ExcCodeMask) >>
        cause::ExcCodeShift);
}

TEST(CpuExceptions, SyscallVectorsToGeneral)
{
    BareMachine m;
    installHaltingVectors(m.machine);
    Program p = m.loadAsm([&](Assembler &as) {
        as.nop();
        as.label("sc");
        as.syscall();
        as.nop();
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(K0), kGeneralMark);
    EXPECT_EQ(causeCode(m.cpu()), ExcCode::Sys);
    EXPECT_EQ(m.cpu().cp0().epc(), p.symbol("sc"));
    EXPECT_FALSE(m.cpu().cp0().causeReg() & cause::BD);
}

TEST(CpuExceptions, BreakVectorsToGeneral)
{
    BareMachine m;
    installHaltingVectors(m.machine);
    m.loadAsm([&](Assembler &as) {
        as.break_(3);
        as.nop();
    });
    m.runToHalt();
    EXPECT_EQ(causeCode(m.cpu()), ExcCode::Bp);
}

TEST(CpuExceptions, UnalignedLoadRaisesAdELWithBadVAddr)
{
    BareMachine m;
    installHaltingVectors(m.machine);
    m.loadAsm([&](Assembler &as) {
        as.la(T0, "buf");
        as.lw(V0, 2, T0);  // word load at offset 2: unaligned
        as.hcall(0);
        as.align(8);
        as.label("buf");
        as.space(8);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(K0), kGeneralMark);
    EXPECT_EQ(causeCode(m.cpu()), ExcCode::AdEL);
    EXPECT_EQ(m.cpu().cp0().badVAddr(),
              m.machine.symbol("buf") + 2);
}

TEST(CpuExceptions, UnalignedStoreRaisesAdES)
{
    BareMachine m;
    installHaltingVectors(m.machine);
    m.loadAsm([&](Assembler &as) {
        as.la(T0, "buf");
        as.sh(V0, 1, T0);  // halfword store at odd address
        as.hcall(0);
        as.align(8);
        as.label("buf");
        as.space(8);
    });
    m.runToHalt();
    EXPECT_EQ(causeCode(m.cpu()), ExcCode::AdES);
    EXPECT_EQ(m.cpu().cp0().badVAddr(), m.machine.symbol("buf") + 1);
}

TEST(CpuExceptions, OverflowOnAddAndAddi)
{
    BareMachine m;
    installSkippingGeneralVector(m.machine);
    m.loadAsm([&](Assembler &as) {
        as.li32(T0, 0x7fffffffu);
        as.li(T1, 1);
        as.li(V0, 0);
        as.add(V0, T0, T1);    // overflows: skipped, V0 stays 0
        as.addi(V1, T0, 1);    // overflows too
        as.addu(A0, T0, T1);   // addu never traps
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(V0), 0u);
    EXPECT_EQ(m.cpu().reg(V1), 0u);
    EXPECT_EQ(m.cpu().reg(A0), 0x80000000u);
    EXPECT_EQ(m.cpu().stats().perExcCode[
                  static_cast<unsigned>(ExcCode::Ov)], 2u);
}

TEST(CpuExceptions, SubOverflow)
{
    BareMachine m;
    installHaltingVectors(m.machine);
    m.loadAsm([&](Assembler &as) {
        as.li32(T0, 0x80000000u);
        as.li(T1, 1);
        as.sub(V0, T0, T1);  // INT_MIN - 1 overflows
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(causeCode(m.cpu()), ExcCode::Ov);
}

TEST(CpuExceptions, ReservedInstructionRaisesRi)
{
    BareMachine m;
    installHaltingVectors(m.machine);
    m.loadAsm([&](Assembler &as) {
        as.word(0xf0000000u);  // unassigned opcode
        as.nop();
    });
    m.runToHalt();
    EXPECT_EQ(causeCode(m.cpu()), ExcCode::Ri);
}

TEST(CpuExceptions, ExceptionInBranchDelaySlotSetsBdAndBranchEpc)
{
    BareMachine m;
    installHaltingVectors(m.machine);
    Program p = m.loadAsm([&](Assembler &as) {
        as.label("br");
        as.beq(Zero, Zero, "target");
        as.syscall();          // delay slot faults
        as.label("target");
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_TRUE(m.cpu().cp0().causeReg() & cause::BD);
    EXPECT_EQ(m.cpu().cp0().epc(), p.symbol("br"));
}

TEST(CpuExceptions, ResumeAfterDelaySlotFaultReexecutesBranch)
{
    // A TLB miss in a branch delay slot must resume at the *branch*
    // (EPC = branch, BD set); after the refill handler maps the page,
    // re-execution runs branch + slot and lands on the branch target.
    BareMachine m;
    Assembler v(Cpu::RefillVector);
    // refill handler: record EPC, map the faulting page to phys
    // 0x00200000 (EntryHi was loaded by hardware), resume at EPC
    v.la(K0, "saved_epc");
    v.mfc0(K1, cp0reg::Epc);
    v.sw(K1, 0, K0);
    v.li32(K0, 0x00200000u | entrylo::V | entrylo::D);
    v.mtc0(K0, cp0reg::EntryLo);
    v.tlbwi();                   // Index register is 0 at reset
    v.mfc0(K0, cp0reg::Epc);
    v.jr(K0);
    v.rfe();
    v.label("saved_epc");
    v.space(4);
    v.align(0x80);
    v.li32(K0, kGeneralMark);
    v.hcall(0);
    m.machine.load(v.finalize());
    m.machine.mem().writeWord(0x00200000, 1234);

    Program p = m.loadAsm([&](Assembler &as) {
        as.li32(T2, 0x00400000u);
        as.label("br");
        as.beq(Zero, Zero, "past");
        as.lw(V1, 0, T2);       // delay slot: TLB refill miss
        as.li(V0, 99);          // skipped by the taken branch
        as.label("past");
        as.li(V0, 42);
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(V0), 42u);
    EXPECT_EQ(m.cpu().reg(V1), 1234u);
    // the handler saw EPC pointing at the branch, not the slot
    EXPECT_EQ(m.machine.debugReadWord(m.machine.symbol("saved_epc")),
              p.symbol("br"));
    EXPECT_EQ(m.cpu().stats().tlbRefillFaults, 1u);
}

TEST(CpuExceptions, StatusStackPushedOnExceptionPoppedOnRfe)
{
    BareMachine m;
    installSkippingGeneralVector(m.machine);
    // start in kernel mode; the exception pushes (kernel,kernel)
    m.loadAsm([&](Assembler &as) {
        as.syscall();
        as.mfc0(V0, cp0reg::Status);  // after return: stack popped
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(V0) & status::KuIeMask, 0u);
}

TEST(CpuExceptions, TlbMissInKusegUsesRefillVector)
{
    BareMachine m;
    installHaltingVectors(m.machine);
    m.loadAsm([&](Assembler &as) {
        as.li32(T0, 0x00400000u);  // unmapped user address
        as.lw(V0, 0, T0);
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(K0), kRefillMark);
    EXPECT_EQ(causeCode(m.cpu()), ExcCode::TlbL);
    EXPECT_EQ(m.cpu().cp0().badVAddr(), 0x00400000u);
    EXPECT_EQ(m.cpu().stats().tlbRefillFaults, 1u);
}

TEST(CpuExceptions, TlbInvalidEntryUsesGeneralVector)
{
    BareMachine m;
    installHaltingVectors(m.machine);
    // entry present but V=0
    m.cpu().tlb().setEntry(0, 0x00400000u, 0x00200000u /* no V bit */);
    m.loadAsm([&](Assembler &as) {
        as.li32(T0, 0x00400000u);
        as.lw(V0, 0, T0);
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(K0), kGeneralMark);
    EXPECT_EQ(causeCode(m.cpu()), ExcCode::TlbL);
}

TEST(CpuExceptions, WriteToCleanPageRaisesModAtGeneralVector)
{
    BareMachine m;
    installHaltingVectors(m.machine);
    mapPage(m.machine, 0x00400000, 0x00200000, 0, 0,
            /*writable=*/false);
    m.loadAsm([&](Assembler &as) {
        as.li32(T0, 0x00400000u);
        as.sw(Zero, 0x24, T0);
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(K0), kGeneralMark);
    EXPECT_EQ(causeCode(m.cpu()), ExcCode::Mod);
    EXPECT_EQ(m.cpu().cp0().badVAddr(), 0x00400024u);
}

TEST(CpuExceptions, ReadOfCleanPageIsAllowed)
{
    BareMachine m;
    installHaltingVectors(m.machine);
    mapPage(m.machine, 0x00400000, 0x00200000, 0, 0,
            /*writable=*/false);
    m.machine.mem().writeWord(0x00200010, 77);
    m.loadAsm([&](Assembler &as) {
        as.li32(T0, 0x00400000u);
        as.lw(V0, 0x10, T0);
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(V0), 77u);
    EXPECT_EQ(m.cpu().stats().exceptionsTaken, 0u);
}

TEST(CpuExceptions, FaultAddressLoadsContextForRefillHandler)
{
    BareMachine m;
    installHaltingVectors(m.machine);
    m.cpu().cp0().write(cp0reg::Context, 0x80600000u);  // PTEBase
    m.loadAsm([&](Assembler &as) {
        as.li32(T0, 0x00403000u);
        as.lw(V0, 0, T0);
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().cp0().context(),
              0x80600000u | ((0x00403000u >> 12) << 2));
    // EntryHi has the faulting VPN ready for tlbwr
    EXPECT_EQ(m.cpu().cp0().entryHi() & entryhi::VpnMask, 0x00403000u);
}

TEST(CpuExceptions, UserModeCannotTouchCp0)
{
    BareMachine m;
    installHaltingVectors(m.machine);
    // map a user code page and run mtc0 from user mode
    Assembler ua(0x00400000);
    ua.mtc0(Zero, cp0reg::Status);
    ua.nop();
    Program up = ua.finalize();
    m.machine.mem().writeBlock(0x00200000, up.words.data(),
                               4 * up.words.size());
    mapPage(m.machine, 0x00400000, 0x00200000, 1, 0);
    enterUserMode(m.machine, 1);
    m.cpu().setPc(0x00400000);
    m.cpu().run(100);
    EXPECT_EQ(causeCode(m.cpu()), ExcCode::CpU);
    EXPECT_EQ(m.cpu().reg(K0), kGeneralMark);
}

TEST(CpuExceptions, UserModeKernelSegmentAccessIsAddressError)
{
    BareMachine m;
    installHaltingVectors(m.machine);
    Assembler ua(0x00400000);
    ua.lui(T0, 0x8001);
    ua.lw(V0, 0, T0);  // kseg0 from user mode
    ua.nop();
    Program up = ua.finalize();
    m.machine.mem().writeBlock(0x00200000, up.words.data(),
                               4 * up.words.size());
    mapPage(m.machine, 0x00400000, 0x00200000, 1, 0);
    enterUserMode(m.machine, 1);
    m.cpu().setPc(0x00400000);
    m.cpu().run(100);
    EXPECT_EQ(causeCode(m.cpu()), ExcCode::AdEL);
    // back in kernel mode at the vector
    EXPECT_FALSE(m.cpu().cp0().userMode());
    EXPECT_TRUE(m.cpu().cp0().statusReg() & status::KUp);
}

TEST(CpuExceptions, InjectExceptionEntersKernelPath)
{
    BareMachine m;
    installHaltingVectors(m.machine);
    m.loadAsm([&](Assembler &as) { as.nop(); });
    Addr vec = m.cpu().injectException(ExcCode::Mod, 0x00401008,
                                       0x00405678, false);
    EXPECT_EQ(vec, Cpu::GeneralVector);
    EXPECT_EQ(m.cpu().cp0().epc(), 0x00401008u);
    EXPECT_EQ(m.cpu().cp0().badVAddr(), 0x00405678u);
    EXPECT_EQ(causeCode(m.cpu()), ExcCode::Mod);
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(K0), kGeneralMark);
}

// An access past the end of physical memory is a bus error, not a
// host-side panic: kseg0/kseg1 translate without the TLB, so nothing
// earlier in the pipeline catches a wild physical address.

TEST(CpuExceptions, LoadBeyondPhysicalMemoryRaisesDbe)
{
    BareMachine m;
    installHaltingVectors(m.machine);
    m.loadAsm([&](Assembler &as) {
        as.li32(T0, 0x82000000u);   // kseg0 alias of pa 32 MB
        as.label("ld");
        as.lw(V0, 0, T0);
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(K0), kGeneralMark);
    EXPECT_EQ(causeCode(m.cpu()), ExcCode::Dbe);
}

TEST(CpuExceptions, StoreBeyondPhysicalMemoryRaisesDbe)
{
    BareMachine m;
    installHaltingVectors(m.machine);
    m.loadAsm([&](Assembler &as) {
        as.li32(T0, 0xa2000000u);   // kseg1 alias of pa 32 MB
        as.sw(Zero, 0, T0);
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(K0), kGeneralMark);
    EXPECT_EQ(causeCode(m.cpu()), ExcCode::Dbe);
}

TEST(CpuExceptions, FetchBeyondPhysicalMemoryRaisesIbe)
{
    BareMachine m;
    installHaltingVectors(m.machine);
    m.loadAsm([&](Assembler &as) {
        as.li32(T0, 0x82000000u);
        as.jr(T0);
        as.nop();
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(K0), kGeneralMark);
    EXPECT_EQ(causeCode(m.cpu()), ExcCode::Ibe);
    EXPECT_EQ(m.cpu().cp0().epc(), 0x82000000u);
}

TEST(CpuExceptions, PerCodeStatsAccumulate)
{
    BareMachine m;
    installSkippingGeneralVector(m.machine);
    m.loadAsm([&](Assembler &as) {
        as.syscall();
        as.syscall();
        as.break_();
        as.hcall(0);
    });
    m.runToHalt();
    const CpuStats &s = m.cpu().stats();
    EXPECT_EQ(s.perExcCode[static_cast<unsigned>(ExcCode::Sys)], 2u);
    EXPECT_EQ(s.perExcCode[static_cast<unsigned>(ExcCode::Bp)], 1u);
    EXPECT_EQ(s.exceptionsTaken, 3u);
}

} // namespace
} // namespace uexc::sim
