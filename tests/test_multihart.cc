/**
 * @file
 * Multi-hart machine tests: the scheduling determinism contract
 * (machine.h file comment), bit-identity of a one-hart Machine::run
 * with the plain Cpu::run path, shared-memory visibility across
 * harts, per-hart breakpoints and budget exhaustion at quantum
 * boundaries, host-store invalidation of predecoded pages, TLB
 * shootdown across harts, and the multihart guest programs'
 * per-hart exception counters.
 */

#include <gtest/gtest.h>

#include "core/multihart.h"
#include "os/kernel.h"
#include "os/layout.h"
#include "sim_test_util.h"

namespace uexc::sim {
namespace {

using testutil::kTestOrigin;

/** A shared kseg0 word clear of the test program. */
constexpr Addr kSharedWord = 0x80020000u;

/**
 * One program with an entry per hart. Hart 0 counts to @p iters0 in
 * s0 and publishes the count; hart 1 counts to @p iters1 and stores
 * next to it. Distinct iteration counts make the per-hart statistics
 * distinguishable.
 */
Program
buildTwoHartProgram(unsigned iters0, unsigned iters1)
{
    Assembler a(kTestOrigin);
    a.label("h0_entry");
    a.li(S0, 0);
    a.li(T0, iters0);
    a.label("h0_loop");
    a.addiu(S0, S0, 1);
    a.addiu(T0, T0, -1);
    a.bne(T0, Zero, "h0_loop");
    a.nop();
    a.li(A0, kSharedWord);
    a.sw(S0, 0, A0);
    a.hcall(0);

    a.label("h1_entry");
    a.li(S0, 0);
    a.li(T0, iters1);
    a.label("h1_loop");
    a.addiu(S0, S0, 1);
    a.addiu(T0, T0, -1);
    a.bne(T0, Zero, "h1_loop");
    a.nop();
    a.li(A0, kSharedWord);
    a.sw(S0, 4, A0);
    a.hcall(0);
    return a.finalize();
}

void
startHart(Machine &m, unsigned hart, const std::string &entry)
{
    m.hart(hart).setPc(m.symbol(entry));
}

// ---------------------------------------------------------------------------
// N = 1: Machine::run is the old Cpu::run, bit for bit.
// ---------------------------------------------------------------------------

void
expectIdenticalState(Machine &a, Machine &b)
{
    for (unsigned r = 0; r < NumRegs; r++)
        EXPECT_EQ(a.hart(0).reg(r), b.hart(0).reg(r)) << "reg " << r;
    EXPECT_EQ(a.hart(0).pc(), b.hart(0).pc());
    const CpuStats &sa = a.hart(0).stats();
    const CpuStats &sb = b.hart(0).stats();
    EXPECT_EQ(sa.instructions, sb.instructions);
    EXPECT_EQ(sa.cycles, sb.cycles);
    EXPECT_EQ(sa.loads, sb.loads);
    EXPECT_EQ(sa.stores, sb.stores);
    EXPECT_EQ(sa.branches, sb.branches);
    EXPECT_EQ(sa.exceptionsTaken, sb.exceptionsTaken);
}

void
checkSingleHartIdentity(bool fast_interpreter)
{
    MachineConfig cfg;
    cfg.cpu.fastInterpreter = fast_interpreter;
    cfg.quantum = 7;   // must be irrelevant at N = 1
    Machine via_cpu(cfg), via_machine(cfg);

    Program p = buildTwoHartProgram(100, 50);
    via_cpu.load(p);
    via_machine.load(p);
    via_cpu.cpu().setPc(via_cpu.symbol("h0_entry"));
    via_machine.hart(0).setPc(via_machine.symbol("h0_entry"));

    RunResult rc = via_cpu.cpu().run(1000);
    MachineRunResult rm = via_machine.run(1000);

    EXPECT_EQ(rm.reason, rc.reason);
    EXPECT_EQ(rm.instsExecuted, rc.instsExecuted);
    EXPECT_EQ(rm.hart, 0u);
    expectIdenticalState(via_cpu, via_machine);
}

TEST(Multihart, SingleHartMachineRunMatchesCpuRun)
{
    checkSingleHartIdentity(false);
}

TEST(Multihart, SingleHartIdentityHoldsUnderFastInterpreter)
{
    checkSingleHartIdentity(true);
}

// ---------------------------------------------------------------------------
// Determinism: the schedule is a pure function of (program, config).
// ---------------------------------------------------------------------------

struct Fingerprint
{
    std::vector<Cycles> cycles;
    std::vector<InstCount> insts;
    std::vector<Word> s0;
    InstCount total = 0;

    bool operator==(const Fingerprint &o) const
    {
        return cycles == o.cycles && insts == o.insts && s0 == o.s0 &&
               total == o.total;
    }
};

Fingerprint
runInterleaved(InstCount quantum)
{
    MachineConfig cfg;
    cfg.harts = 2;
    cfg.quantum = quantum;
    Machine m(cfg);
    m.load(buildTwoHartProgram(200, 300));
    startHart(m, 0, "h0_entry");
    startHart(m, 1, "h1_entry");

    MachineRunResult r = m.run(1'000'000);
    EXPECT_EQ(r.reason, StopReason::Halted);

    Fingerprint f;
    f.total = r.instsExecuted;
    for (unsigned i = 0; i < m.numHarts(); i++) {
        f.cycles.push_back(m.hart(i).cycles());
        f.insts.push_back(m.hart(i).instret());
        f.s0.push_back(m.hart(i).reg(S0));
    }
    return f;
}

TEST(Multihart, TwoHartRunIsDeterministic)
{
    Fingerprint a = runInterleaved(37);
    Fingerprint b = runInterleaved(37);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.s0[0], 200u);
    EXPECT_EQ(a.s0[1], 300u);
    // Both harts really ran (distinct loop lengths, distinct work).
    EXPECT_GT(a.insts[1], a.insts[0]);
}

TEST(Multihart, HaltedOnlyWhenEveryHartHalts)
{
    MachineConfig cfg;
    cfg.harts = 2;
    cfg.quantum = 50;
    Machine m(cfg);
    m.load(buildTwoHartProgram(3, 400));  // hart 0 halts in quantum 1
    startHart(m, 0, "h0_entry");
    startHart(m, 1, "h1_entry");

    MachineRunResult r = m.run(1'000'000);
    EXPECT_EQ(r.reason, StopReason::Halted);
    EXPECT_TRUE(m.hart(0).halted());
    EXPECT_TRUE(m.hart(1).halted());
    EXPECT_EQ(m.hart(1).reg(S0), 400u);
}

// ---------------------------------------------------------------------------
// Shared memory: one PhysMemory under every hart.
// ---------------------------------------------------------------------------

TEST(Multihart, StoreByOneHartIsVisibleToAnother)
{
    MachineConfig cfg;
    cfg.harts = 2;
    cfg.quantum = 50;
    cfg.cpu.cachesEnabled = true;  // per-hart caches, shared backing
    Machine m(cfg);

    Assembler a(kTestOrigin);
    a.label("writer");
    a.li(T0, 0x12345678);
    a.li(A0, kSharedWord);
    a.sw(T0, 0, A0);
    a.hcall(0);
    a.label("reader");
    a.li(A0, kSharedWord);
    a.lw(V0, 0, A0);
    a.nop();
    a.hcall(0);
    m.load(a.finalize());

    // Hart 0 is scheduled first, so its store retires before hart 1's
    // first load (which misses its own cold dcache and fills from the
    // shared physical memory).
    startHart(m, 0, "writer");
    startHart(m, 1, "reader");
    MachineRunResult r = m.run(1000);
    EXPECT_EQ(r.reason, StopReason::Halted);
    EXPECT_EQ(m.hart(1).reg(V0), 0x12345678u);
    EXPECT_EQ(m.debugReadWord(kSharedWord), 0x12345678u);
}

// ---------------------------------------------------------------------------
// Breakpoints: per-hart, stable across quantum boundaries.
// ---------------------------------------------------------------------------

TEST(Multihart, BreakpointStopsOnlyTheOwningHart)
{
    MachineConfig cfg;
    cfg.harts = 2;
    cfg.quantum = 10;
    Machine m(cfg);
    // Both harts execute the same loop at the same addresses; the
    // breakpoint is registered on hart 1 alone, so hart 0 streams
    // through it.
    Assembler a(kTestOrigin);
    a.label("entry");
    a.li(S0, 0);
    a.li(T0, 50);
    a.label("loop");
    a.addiu(S0, S0, 1);
    a.label("bploc");
    a.addiu(T0, T0, -1);
    a.bne(T0, Zero, "loop");
    a.nop();
    a.hcall(0);
    m.load(a.finalize());
    startHart(m, 0, "entry");
    startHart(m, 1, "entry");

    Addr bp = m.symbol("bploc");
    m.hart(1).addBreakpoint(bp);

    MachineRunResult r = m.run(1'000'000);
    EXPECT_EQ(r.reason, StopReason::Breakpoint);
    EXPECT_EQ(r.hart, 1u);
    EXPECT_EQ(m.hart(1).pc(), bp);
    // Hart 0 ran its full first quantum before hart 1 was bound.
    EXPECT_EQ(m.hart(0).instret(), 10u);
    // The schedule position is preserved: the stopped hart resumes.
    EXPECT_EQ(m.currentHart(), 1u);

    // Resuming executes the breakpointed instruction and stops again
    // one loop iteration later.
    InstCount before = m.hart(1).instret();
    r = m.run(1'000'000);
    EXPECT_EQ(r.reason, StopReason::Breakpoint);
    EXPECT_EQ(r.hart, 1u);
    EXPECT_EQ(m.hart(1).pc(), bp);
    // One loop iteration: addiu t0, bne, delay-slot nop, addiu s0.
    EXPECT_EQ(m.hart(1).instret(), before + 4);

    m.hart(1).removeBreakpoint(bp);
    r = m.run(1'000'000);
    EXPECT_EQ(r.reason, StopReason::Halted);
    EXPECT_EQ(m.hart(0).reg(S0), 50u);
    EXPECT_EQ(m.hart(1).reg(S0), 50u);
}

// ---------------------------------------------------------------------------
// Budget exhaustion: the total budget splits across quanta.
// ---------------------------------------------------------------------------

Program
spinProgram()
{
    Assembler a(kTestOrigin);
    a.label("spin");
    a.j("spin");
    a.nop();
    return a.finalize();
}

TEST(Multihart, InstLimitSplitsBudgetAcrossQuanta)
{
    MachineConfig cfg;
    cfg.harts = 2;
    cfg.quantum = 50;
    Machine m(cfg);
    m.load(spinProgram());
    startHart(m, 0, "spin");
    startHart(m, 1, "spin");

    // 75 = one full quantum for hart 0 plus a truncated 25-instruction
    // quantum for hart 1.
    MachineRunResult r = m.run(75);
    EXPECT_EQ(r.reason, StopReason::InstLimit);
    EXPECT_EQ(r.instsExecuted, 75u);
    EXPECT_EQ(m.hart(0).instret(), 50u);
    EXPECT_EQ(m.hart(1).instret(), 25u);

    // The next run continues the rotation deterministically.
    r = m.run(60);
    EXPECT_EQ(r.reason, StopReason::InstLimit);
    EXPECT_EQ(r.instsExecuted, 60u);
    EXPECT_EQ(m.hart(0).instret() + m.hart(1).instret(), 135u);
}

TEST(Multihart, InstLimitExactlyAtQuantumBoundary)
{
    MachineConfig cfg;
    cfg.harts = 2;
    cfg.quantum = 50;
    Machine m(cfg);
    m.load(spinProgram());
    startHart(m, 0, "spin");
    startHart(m, 1, "spin");

    MachineRunResult r = m.run(50);
    EXPECT_EQ(r.reason, StopReason::InstLimit);
    EXPECT_EQ(r.instsExecuted, 50u);
    EXPECT_EQ(m.hart(0).instret(), 50u);
    EXPECT_EQ(m.hart(1).instret(), 0u);
}

// ---------------------------------------------------------------------------
// Host stores invalidate predecoded pages (the page-version audit).
// ---------------------------------------------------------------------------

TEST(Multihart, DebugWriteWordInvalidatesPredecodedCode)
{
    MachineConfig cfg;
    cfg.cpu.fastInterpreter = true;
    Machine m(cfg);
    Assembler a(kTestOrigin);
    a.label("patch");
    a.addiu(V0, Zero, 5);
    a.hcall(0);
    m.load(a.finalize());
    m.hart(0).setPc(kTestOrigin);

    EXPECT_EQ(m.run(100).reason, StopReason::Halted);
    EXPECT_EQ(m.hart(0).reg(V0), 5u);  // page is now predecoded

    // Patch the immediate of the executed addiu through the host
    // debug interface; the page-version bump must force a redecode.
    Addr patch = m.symbol("patch");
    Word inst = m.debugReadWord(patch);
    m.debugWriteWord(patch, (inst & 0xffff0000u) | 7u);

    m.hart(0).clearHalt();
    m.hart(0).setPc(kTestOrigin);
    EXPECT_EQ(m.run(100).reason, StopReason::Halted);
    EXPECT_EQ(m.hart(0).reg(V0), 7u);
}

TEST(Multihart, ReloadOverExecutedCodeInvalidatesPredecodedCode)
{
    MachineConfig cfg;
    cfg.cpu.fastInterpreter = true;
    Machine m(cfg);

    auto image = [](Word value) {
        Assembler a(kTestOrigin);
        a.addiu(V0, Zero, static_cast<SWord>(value));
        a.hcall(0);
        return a.finalize();
    };

    m.load(image(5));
    m.hart(0).setPc(kTestOrigin);
    EXPECT_EQ(m.run(100).reason, StopReason::Halted);
    EXPECT_EQ(m.hart(0).reg(V0), 5u);

    // load() goes through PhysMemory::writeBlock, which bumps the
    // page versions of every page it touches.
    m.load(image(9));
    m.hart(0).clearHalt();
    m.hart(0).setPc(kTestOrigin);
    EXPECT_EQ(m.run(100).reason, StopReason::Halted);
    EXPECT_EQ(m.hart(0).reg(V0), 9u);
}

// ---------------------------------------------------------------------------
// TLB shootdown reaches every hart.
// ---------------------------------------------------------------------------

TEST(Multihart, InvalidateTlbsDropsTheMappingOnEveryHart)
{
    MachineConfig cfg;
    cfg.harts = 3;
    Machine m(cfg);
    constexpr Addr kVa = 0x00400000;
    constexpr unsigned kAsid = 5;
    for (unsigned i = 0; i < 3; i++)
        m.hart(i).tlb().setEntry(0,
                                 (kVa & entryhi::VpnMask) |
                                     (kAsid << entryhi::AsidShift),
                                 (0x00210000 & entrylo::PfnMask) |
                                     entrylo::V | entrylo::D);
    for (unsigned i = 0; i < 3; i++)
        EXPECT_TRUE(m.hart(i).tlb().entry(0).valid());

    m.invalidateTlbs(kVa, kAsid);
    for (unsigned i = 0; i < 3; i++)
        EXPECT_FALSE(m.hart(i).tlb().entry(0).valid());
}

// ---------------------------------------------------------------------------
// The multihart guest programs: per-hart counters under both
// delivery mechanisms.
// ---------------------------------------------------------------------------

struct GuestRig
{
    explicit GuestRig(unsigned n, bool user_vectored)
    {
        MachineConfig cfg;
        cfg.harts = n;
        cfg.quantum = 100;
        cfg.cpu.userVectorHw = true;
        m = std::make_unique<Machine>(cfg);
        m->load(rt::multihart::buildKernelImage(n));
        Program worker = rt::multihart::buildWorkerProgram(n);
        constexpr Addr kWorkerPhys = 0x00210000;
        constexpr unsigned kAsid = 1;
        m->mem().writeBlock(kWorkerPhys, worker.words.data(),
                            4 * worker.words.size());
        for (unsigned i = 0; i < n; i++) {
            Hart &h = m->hart(i);
            h.tlb().setEntry(0,
                             (os::kUserTextBase & entryhi::VpnMask) |
                                 (kAsid << entryhi::AsidShift),
                             (kWorkerPhys & entrylo::PfnMask) |
                                 entrylo::V);
            Word st = h.cp0().statusReg() | status::KUc;
            if (user_vectored) {
                st |= status::UV;
                h.cp0().setUxReg(UxReg::Target,
                                 worker.symbol("mh_uv_handler"));
            }
            h.cp0().setStatusReg(st);
            h.cp0().write(cp0reg::EntryHi,
                          kAsid << entryhi::AsidShift);
            h.setPc(worker.symbol("mh_hart" + std::to_string(i) +
                                  "_entry"));
        }
    }

    std::unique_ptr<Machine> m;
};

TEST(Multihart, KernelMediatedGuestCountsPerHartExceptions)
{
    GuestRig rig(2, /*user_vectored=*/false);
    rig.m->run(4000);
    for (unsigned i = 0; i < 2; i++) {
        std::uint64_t delivered =
            rig.m->hart(i).stats().exceptionsTaken;
        Word counted = rig.m->debugReadWord(
            rig.m->symbol("mh_save") + i * os::hartsave::Bytes);
        EXPECT_GT(delivered, 0u) << "hart " << i;
        // The save-slot counter trails delivery by at most the
        // iteration in flight when the budget expired.
        EXPECT_GE(counted + 1, delivered) << "hart " << i;
        EXPECT_LE(counted, delivered) << "hart " << i;
    }
}

TEST(Multihart, UserVectoredGuestNeverEntersTheKernel)
{
    GuestRig rig(2, /*user_vectored=*/true);
    rig.m->run(4000);
    for (unsigned i = 0; i < 2; i++) {
        const CpuStats &s = rig.m->hart(i).stats();
        EXPECT_GT(s.userVectoredExceptions, 0u) << "hart " << i;
        // Every exception vectored to the user handler; none entered
        // the kernel, so its per-hart counter never moved.
        EXPECT_EQ(s.exceptionsTaken, s.userVectoredExceptions)
            << "hart " << i;
        EXPECT_EQ(rig.m->debugReadWord(rig.m->symbol("mh_save") +
                                       i * os::hartsave::Bytes),
                  0u)
            << "hart " << i;
        Word counted = rig.m->hart(i).reg(S0);
        EXPECT_GE(counted + 1, s.userVectoredExceptions)
            << "hart " << i;
    }
}

// ---------------------------------------------------------------------------
// Kernel save areas: one per hart, disjoint.
// ---------------------------------------------------------------------------

TEST(Multihart, KernelAllocatesDisjointPerHartSaveAreas)
{
    MachineConfig cfg;
    cfg.harts = 4;
    Machine m(cfg);
    os::Kernel kernel(m);
    kernel.boot();
    for (unsigned i = 0; i + 1 < 4; i++)
        EXPECT_GE(kernel.hartSaveKva(i + 1),
                  kernel.hartSaveKva(i) + os::hartsave::Bytes);
}

} // namespace
} // namespace uexc::sim
