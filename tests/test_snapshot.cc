/**
 * @file
 * Checkpoint/restore coverage, bottom-up:
 *
 *  - the snapshot container itself: primitive round trips, and a
 *    hostile-loader campaign — every bit flip, truncation, and
 *    version skew must be rejected with a structured SnapshotError
 *    (never UB, never a crash);
 *  - machine-level round trips over the lockstep fuzz corpus: a run
 *    checkpointed at a random instruction and restored into a twin
 *    must finish bit-identical to the unbroken run, across both
 *    interpreters, 1 and 4 harts, and idle/active fault injectors;
 *  - the restore path's interpreter-cache invalidation;
 *  - the K0 resume-window hazard regression (a spurious refill aimed
 *    into the fast stub's register-restore window must defer);
 *  - chaos-campaign record/replay: mid-campaign restore convergence,
 *    and the divergence finder shrinking a failing seed to a minimal
 *    repro window that replays from its snapshot alone;
 *  - DSM cluster checkpoints, including a fork-SIGKILL-restore soak
 *    over the crash-consistent snapshot file.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "apps/dsm/dsm.h"
#include "common/guesterror.h"
#include "common/logging.h"
#include "core/chaos.h"
#include "fuzz_util.h"
#include "sim/faultinject.h"
#include "sim/snapshot.h"
#include "sim_test_util.h"

// ---------------------------------------------------------------------------
// Container format
// ---------------------------------------------------------------------------

namespace uexc::sim {
namespace {

Word
leWord(const std::vector<Byte> &buf, std::size_t off)
{
    return Word(buf[off]) | Word(buf[off + 1]) << 8 |
           Word(buf[off + 2]) << 16 | Word(buf[off + 3]) << 24;
}

void
putLeWord(std::vector<Byte> &buf, std::size_t off, Word v)
{
    buf[off] = Byte(v);
    buf[off + 1] = Byte(v >> 8);
    buf[off + 2] = Byte(v >> 16);
    buf[off + 3] = Byte(v >> 24);
}

/** Recompute the footer CRC after deliberately editing an image. */
void
resealImage(std::vector<Byte> &img)
{
    putLeWord(img, img.size() - 4,
              snapshotCrc32(img.data(), img.size() - 4));
}

TEST(SnapshotFormat, PrimitivesRoundTrip)
{
    const Word tag1 = snapshotTag('T', 'S', 'T', '1');
    const Word tag2 = snapshotTag('T', 'S', 'T', '2');

    SnapshotWriter w;
    w.beginSection(tag1);
    w.u8(0xab);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefull);
    w.boolean(true);
    w.boolean(false);
    w.str("hello snapshot");
    w.endSection();
    w.beginSection(tag2);
    w.endSection();
    std::vector<Byte> img = w.finish();

    SnapshotImage parsed(img);
    ASSERT_TRUE(parsed.has(tag1));
    ASSERT_TRUE(parsed.has(tag2));
    EXPECT_FALSE(parsed.has(snapshotTag('N', 'O', 'P', 'E')));
    ASSERT_EQ(parsed.sections().size(), 2u);

    SnapshotReader r = parsed.section(tag1);
    EXPECT_EQ(r.u8(), 0xabu);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_TRUE(r.boolean());
    EXPECT_FALSE(r.boolean());
    EXPECT_EQ(r.str(), "hello snapshot");
    r.expectEnd();

    SnapshotReader r2 = parsed.section(tag2);
    EXPECT_EQ(r2.remaining(), 0u);
    r2.expectEnd();
}

TEST(SnapshotFormat, ReaderIsBoundsChecked)
{
    const Word tag = snapshotTag('B', 'N', 'D', 'S');
    SnapshotWriter w;
    w.beginSection(tag);
    w.u8(2); // also an invalid boolean
    w.endSection();
    std::vector<Byte> img = w.finish();

    SnapshotImage parsed(img);
    EXPECT_THROW(parsed.section(tag).u32(), SnapshotError);
    EXPECT_THROW(parsed.section(tag).u64(), SnapshotError);
    EXPECT_THROW(parsed.section(tag).boolean(), SnapshotError);
    EXPECT_THROW(parsed.section(tag).expectEnd(), SnapshotError);
    SnapshotReader ok = parsed.section(tag);
    EXPECT_EQ(ok.u8(), 2u);
    ok.expectEnd();
}

/** A real machine image for the hostile-loader campaigns. */
std::vector<Byte>
smallMachineImage()
{
    MachineConfig cfg;
    cfg.memBytes = 1 << 16;
    Machine m(cfg);
    m.cpu().setPc(0x80000400u);
    return m.checkpoint();
}

TEST(SnapshotFormat, EveryBitFlipIsRejected)
{
    std::vector<Byte> image = smallMachineImage();
    std::mt19937 rng(1234);
    for (int trial = 0; trial < 400; trial++) {
        std::vector<Byte> bad = image;
        std::size_t bit = rng() % (bad.size() * 8);
        bad[bit / 8] ^= Byte(1u << (bit % 8));
        EXPECT_THROW(SnapshotImage{bad}, SnapshotError)
            << "flipped bit " << bit << " of " << bad.size() * 8;
    }
}

TEST(SnapshotFormat, EveryTruncationIsRejected)
{
    std::vector<Byte> image = smallMachineImage();
    for (std::size_t len = 0; len < image.size();
         len += 1 + len / 16) {
        std::vector<Byte> bad(image.begin(),
                              image.begin() +
                                  static_cast<std::ptrdiff_t>(len));
        EXPECT_THROW(SnapshotImage{bad}, SnapshotError)
            << "truncated to " << len << " of " << image.size();
    }
}

TEST(SnapshotFormat, VersionSkewIsRejectedByName)
{
    std::vector<Byte> image = smallMachineImage();
    ASSERT_EQ(leWord(image, 4), kSnapshotVersion);
    putLeWord(image, 4, kSnapshotVersion + 7);
    resealImage(image); // so the *version* check is what fires
    try {
        SnapshotImage parsed(image);
        FAIL() << "version skew accepted";
    } catch (const SnapshotError &e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos)
            << e.what();
    }
}

TEST(SnapshotFormat, FileRoundTripIsCrashConsistent)
{
    std::vector<Byte> image = smallMachineImage();
    std::string path = ::testing::TempDir() + "uexc_snap_test_" +
                       std::to_string(getpid()) + ".uxsn";
    writeSnapshotFile(path, image);
    // overwrite with a second image: the rename must be atomic and
    // leave no .tmp debris
    writeSnapshotFile(path, image);
    EXPECT_EQ(readSnapshotFile(path), image);
    FILE *tmp = std::fopen((path + ".tmp").c_str(), "rb");
    EXPECT_EQ(tmp, nullptr);
    if (tmp)
        std::fclose(tmp);
    std::remove(path.c_str());
    EXPECT_THROW(readSnapshotFile(path), SnapshotError);
}

TEST(SnapshotFormat, InterruptedWriteIsNeverObservable)
{
    // Simulate a crash mid-write: the write-to-tmp/rename/dir-fsync
    // protocol must mean a reader only ever sees the old complete
    // image or the new complete image — never a torn one.
    std::vector<Byte> old_image = smallMachineImage();
    std::string path = ::testing::TempDir() + "uexc_snap_torn_" +
                       std::to_string(getpid()) + ".uxsn";
    writeSnapshotFile(path, old_image);

    // crash scenario 1: died after opening the tmp, before writing
    // it all — a truncated .tmp litters the directory
    MachineConfig cfg;
    cfg.memBytes = 1 << 16;
    Machine next(cfg);
    next.cpu().setPc(0x80000800u);
    std::vector<Byte> new_image = next.checkpoint();
    ASSERT_NE(new_image, old_image);
    {
        std::FILE *f = std::fopen((path + ".tmp").c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fwrite(new_image.data(), 1, new_image.size() / 3, f);
        std::fclose(f);
    }
    // the published path still reads as the old, valid image
    EXPECT_EQ(readSnapshotFile(path), old_image);
    EXPECT_NO_THROW(SnapshotImage{readSnapshotFile(path)});

    // crash scenario 2: the torn tmp itself is rejected if someone
    // reads it directly (partial image is never parseable)
    EXPECT_THROW(SnapshotImage{readSnapshotFile(path + ".tmp")},
                 SnapshotError);

    // recovery: a fresh complete write replaces both, atomically
    writeSnapshotFile(path, new_image);
    EXPECT_EQ(readSnapshotFile(path), new_image);
    std::FILE *tmp = std::fopen((path + ".tmp").c_str(), "rb");
    EXPECT_EQ(tmp, nullptr) << ".tmp debris after a complete write";
    if (tmp)
        std::fclose(tmp);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Section diffs
// ---------------------------------------------------------------------------

TEST(SnapshotDiff, ReportsSectionTagAndFirstDivergingByte)
{
    const Word tag_same = snapshotTag('S', 'A', 'M', 'E');
    const Word tag_diff = snapshotTag('D', 'I', 'F', 'F');
    auto build = [&](Byte fortysecond) {
        SnapshotWriter w;
        w.beginSection(tag_same);
        for (unsigned i = 0; i < 16; i++)
            w.u8(Byte(i));
        w.endSection();
        w.beginSection(tag_diff);
        for (unsigned i = 0; i < 64; i++)
            w.u8(i == 42 ? fortysecond : Byte(7));
        w.endSection();
        return w.finish();
    };
    std::vector<Byte> bytes_a = build(0x11);
    std::vector<Byte> bytes_b = build(0x22);
    SnapshotImage a(bytes_a), b(bytes_b);

    // identical images: no diffs
    EXPECT_TRUE(diffSnapshotImages(a, a).empty());

    std::vector<SnapshotSectionDiff> diffs = diffSnapshotImages(a, b);
    ASSERT_EQ(diffs.size(), 1u);
    EXPECT_EQ(diffs[0].tag, tag_diff);
    EXPECT_TRUE(diffs[0].inA);
    EXPECT_TRUE(diffs[0].inB);
    EXPECT_EQ(diffs[0].firstDiffOffset, 42u);
    std::string line = snapshotDiffLine(diffs[0]);
    EXPECT_NE(line.find("DIFF"), std::string::npos) << line;
    EXPECT_NE(line.find("42"), std::string::npos) << line;
}

TEST(SnapshotDiff, ReportsMissingSectionsAndLengthSkew)
{
    const Word tag_a = snapshotTag('O', 'N', 'L', 'A');
    const Word tag_b = snapshotTag('O', 'N', 'L', 'B');
    const Word tag_len = snapshotTag('L', 'E', 'N', 'S');
    auto build = [&](Word only, unsigned len) {
        SnapshotWriter w;
        w.beginSection(only);
        w.u8(1);
        w.endSection();
        w.beginSection(tag_len);
        for (unsigned i = 0; i < len; i++)
            w.u8(9);
        w.endSection();
        return w.finish();
    };
    std::vector<Byte> bytes_a = build(tag_a, 8);
    std::vector<Byte> bytes_b = build(tag_b, 12);
    SnapshotImage a(bytes_a), b(bytes_b);

    std::vector<SnapshotSectionDiff> diffs = diffSnapshotImages(a, b);
    ASSERT_EQ(diffs.size(), 3u);
    unsigned only_a = 0, only_b = 0, skewed = 0;
    for (const SnapshotSectionDiff &d : diffs) {
        if (d.tag == tag_a) {
            EXPECT_TRUE(d.inA && !d.inB);
            only_a++;
        } else if (d.tag == tag_b) {
            EXPECT_TRUE(d.inB && !d.inA);
            only_b++;
        } else {
            ASSERT_EQ(d.tag, tag_len);
            // equal prefix, different length: diverges at the short
            // image's end
            EXPECT_EQ(d.firstDiffOffset, 8u);
            EXPECT_NE(d.lengthA, d.lengthB);
            skewed++;
        }
    }
    EXPECT_EQ(only_a, 1u);
    EXPECT_EQ(only_b, 1u);
    EXPECT_EQ(skewed, 1u);
}

// ---------------------------------------------------------------------------
// Machine round trips over the fuzz corpus
// ---------------------------------------------------------------------------

constexpr unsigned kSnapFuzzShards = 8;
constexpr unsigned kSnapSeedsPerShard = 125; // the full 1000-seed corpus

/**
 * One corpus round trip: run machine T to a random cut, checkpoint,
 * restore into twin U, run both to the end, and require the final
 * serialized states to be byte-identical. The configuration rotates
 * with the seed: interpreter mode, hart count, and whether a fault
 * injector is attached with events straddling the cut (so a pending
 * event must travel through the image and fire identically after
 * restore).
 */
void
runSnapshotRoundTripSeed(unsigned seed)
{
    SCOPED_TRACE(::testing::Message() << "snapshot fuzz seed " << seed);

    const bool fast = seed % 2 != 0;
    const unsigned harts = seed % 4 == 3 ? 4 : 1;
    const bool injected = seed % 5 == 0;

    MachineConfig cfg;
    cfg.memBytes = 1 << 18;
    cfg.harts = harts;
    cfg.quantum = 512; // schedule phase crosses the checkpoint
    cfg.cpu.fastInterpreter = fast;

    FaultInjector inj_t, inj_u;
    MachineConfig cfg_t = cfg, cfg_u = cfg;
    if (injected) {
        cfg_t.cpu.faultInjector = &inj_t;
        cfg_u.cpu.faultInjector = &inj_u;
    }

    Machine t(cfg_t), u(cfg_u);
    Program prog = fuzzutil::buildFuzzProgram(seed);
    for (Machine *m : {&t, &u}) {
        fuzzutil::installFuzzSkipHandlers(*m);
        m->load(prog);
        for (unsigned h = 0; h < harts; h++)
            m->hart(h).setPc(testutil::kTestOrigin);
    }
    if (injected) {
        t.registerSnapshotSection(
            snapshotTag('F', 'I', 'N', 'J'),
            [&inj_t](SnapshotWriter &w) { inj_t.snapshotSave(w); },
            [&inj_t](SnapshotReader &r) { inj_t.snapshotLoad(r); });
        u.registerSnapshotSection(
            snapshotTag('F', 'I', 'N', 'J'),
            [&inj_u](SnapshotWriter &w) { inj_u.snapshotSave(w); },
            [&inj_u](SnapshotReader &r) { inj_u.snapshotLoad(r); });
    }

    std::mt19937 rng(seed * 2654435761u + 17);
    const InstCount cut = 200 + rng() % 3000;
    if (injected) {
        // One event on each side of the cut; only the recoverable,
        // kernel-less-safe kinds (the corpus has no OS to diagnose
        // TlbCorrupt, but the skip handlers recover everything).
        Addr buf_pa = Machine::unmappedToPhys(t.symbol("buf"));
        inj_t.addEvent({FaultKind::MemBitFlip, 0, cut / 2,
                        buf_pa + 4 * Addr(rng() % 32),
                        unsigned(rng() % 32), 0});
        inj_t.addEvent({FaultKind::TlbSpuriousMiss, harts - 1,
                        cut + 200, 0, 0, unsigned(rng() % 64)});
        if (rng() % 2 != 0) {
            inj_t.addEvent({FaultKind::TlbCorrupt, 0, cut + 50, 0, 0,
                            unsigned(rng() % 64)});
        }
    }

    const InstCount total = fuzzutil::kFuzzInstLimit;
    t.run(cut);
    std::vector<Byte> img = t.checkpoint();
    u.restore(img);
    t.run(total - cut);
    u.run(total - cut);

    std::vector<Byte> end_t = t.checkpoint();
    std::vector<Byte> end_u = u.checkpoint();
    EXPECT_EQ(end_t, end_u) << "restored twin diverged";
    if (end_t != end_u && harts == 1) {
        // byte compare failed: dump the architectural differences
        fuzzutil::expectLockstepState(t, u);
    }
}

class SnapshotFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(SnapshotFuzz, RoundTripIsBitIdenticalAcrossTheCorpus)
{
    const unsigned base = GetParam() * kSnapSeedsPerShard;
    for (unsigned s = 0; s < kSnapSeedsPerShard; s++) {
        runSnapshotRoundTripSeed(base + s);
        if (::testing::Test::HasNonfatalFailure())
            break;
    }
}

INSTANTIATE_TEST_SUITE_P(Shards, SnapshotFuzz,
                         ::testing::Range(0u, kSnapFuzzShards));

// ---------------------------------------------------------------------------
// Scheduler-independent checkpoints
// ---------------------------------------------------------------------------

/**
 * SchedulerMode is host policy, not machine state: a Barrier machine
 * paused mid-run must checkpoint byte-identically to the Serial
 * reference at the same point, and each image must restore into a
 * machine running the *other* scheduler and finish identically — the
 * images carry no trace of which scheduler produced them.
 */
TEST(SnapshotMachine, BarrierMidRunCheckpointMatchesSerial)
{
    MachineConfig cfg;
    cfg.memBytes = 1 << 18;
    cfg.harts = 4;
    cfg.quantum = 512;
    cfg.cpu.fastInterpreter = true;
    cfg.scheduler = SchedulerMode::Serial;
    MachineConfig bar_cfg = cfg;
    bar_cfg.scheduler = SchedulerMode::Barrier;

    Machine serial(cfg), barrier(bar_cfg);
    Program prog = fuzzutil::buildFuzzProgram(42);
    for (Machine *m : {&serial, &barrier}) {
        fuzzutil::installFuzzSkipHandlers(*m);
        m->load(prog);
        for (unsigned h = 0; h < cfg.harts; h++)
            m->hart(h).setPc(testutil::kTestOrigin);
    }

    // Pause mid-run (the cut is inside a round-robin phase) and
    // compare the images.
    const InstCount cut = 4000;
    serial.run(cut);
    barrier.run(cut);
    std::vector<Byte> mid_s = serial.checkpoint();
    std::vector<Byte> mid_b = barrier.checkpoint();
    EXPECT_EQ(mid_s, mid_b) << "mid-run images diverged";

    // Cross-restore: the serial image into the barrier machine and
    // vice versa; both must run on to the same final image.
    serial.restore(mid_b);
    barrier.restore(mid_s);
    serial.run(fuzzutil::kFuzzInstLimit);
    barrier.run(fuzzutil::kFuzzInstLimit);
    EXPECT_EQ(serial.checkpoint(), barrier.checkpoint())
        << "cross-restored machines diverged";
}

// ---------------------------------------------------------------------------
// Restore-path invalidation
// ---------------------------------------------------------------------------

/**
 * Restore must invalidate predecoded pages: after a checkpoint, the
 * code page is rewritten through the debug interface and re-executed
 * (the fast path re-decodes and runs the *new* instruction); restore
 * then puts the old bytes back, and execution must follow them — a
 * stale decoded page would replay the overwritten instruction.
 */
TEST(SnapshotMachine, RestoreInvalidatesPredecodedPages)
{
    MachineConfig cfg;
    cfg.memBytes = 1 << 18;
    cfg.cpu.fastInterpreter = true;
    Machine m(cfg);

    Assembler a(testutil::kTestOrigin);
    a.addiu(V0, Zero, 0x111);
    a.hcall(0);
    m.load(a.finalize());
    m.cpu().setPc(testutil::kTestOrigin);
    m.run(100);
    ASSERT_EQ(m.cpu().reg(V0), 0x111u); // page is now predecoded

    std::vector<Byte> img = m.checkpoint();

    m.debugWriteWord(testutil::kTestOrigin,
                     enc::addiu(V0, Zero, 0x222));
    m.hart(0).clearHalt();
    m.hart(0).setPc(testutil::kTestOrigin);
    m.run(100);
    ASSERT_EQ(m.cpu().reg(V0), 0x222u); // debug write invalidated

    m.restore(img); // memory back to the 0x111 instruction
    m.hart(0).clearHalt();
    m.hart(0).setPc(testutil::kTestOrigin);
    m.run(100);
    EXPECT_EQ(m.cpu().reg(V0), 0x111u)
        << "fast interpreter executed a stale predecoded page after "
           "restore";
}

/** Restoring an image into a machine with a different shape, or with
 *  an unconsumed/unregistered section, is a structured error. */
TEST(SnapshotMachine, ShapeMismatchesAreRejected)
{
    MachineConfig cfg;
    cfg.memBytes = 1 << 16;
    Machine m(cfg);
    std::vector<Byte> img = m.checkpoint();

    MachineConfig bigger = cfg;
    bigger.memBytes = 1 << 17;
    Machine other(bigger);
    EXPECT_THROW(other.restore(img), SnapshotError);

    MachineConfig more_harts = cfg;
    more_harts.harts = 2;
    Machine wide(more_harts);
    EXPECT_THROW(wide.restore(img), SnapshotError);

    // a consumer registered on the target but absent from the image
    Machine hungry(cfg);
    hungry.registerSnapshotSection(
        snapshotTag('X', 'T', 'R', 'A'), [](SnapshotWriter &) {},
        [](SnapshotReader &) {});
    EXPECT_THROW(hungry.restore(img), SnapshotError);

    // a section in the image nobody on the target consumes
    Machine donor(cfg);
    donor.registerSnapshotSection(
        snapshotTag('X', 'T', 'R', 'A'), [](SnapshotWriter &w) { w.u8(1); },
        [](SnapshotReader &r) { (void)r.u8(); });
    std::vector<Byte> fat = donor.checkpoint();
    Machine plain(cfg);
    EXPECT_THROW(plain.restore(fat), SnapshotError);
}

} // namespace
} // namespace uexc::sim

// ---------------------------------------------------------------------------
// Chaos-campaign record/replay
// ---------------------------------------------------------------------------

namespace uexc::rt {
namespace {

using namespace chaos;

/**
 * The K0 resume-window regression (the PR 4 hazard): pin a spurious
 * refill to an instret at which the fast stub is executing its
 * register-restore window. The injector must defer it past the
 * window — delivery stays transparent, nothing is demoted, and the
 * fault fires at a PC outside the window.
 */
TEST(SnapshotChaos, SpuriousRefillInStubRestoreWindowIsDeferred)
{
    struct WindowObserver : sim::InstObserver
    {
        Addr lo = 0, hi = 0;
        const sim::Cpu *cpu = nullptr;
        InstCount hit = 0;
        void onInst(Addr pc, const sim::DecodedInst &, Cycles) override
        {
            if (hit == 0 && pc >= lo && pc < hi)
                hit = cpu->instret();
        }
        void onException(sim::ExcCode, Addr, Addr) override {}
    };

    // Clean run: find the first instret at which the restore window
    // is executing (i.e. the next fire-check lands inside it).
    Rig clean(nullptr);
    ASSERT_LT(clean.env().stubRestoreAddr(), clean.env().stubEndAddr());
    ASSERT_GE(clean.env().stubEndAddr() - clean.env().stubRestoreAddr(),
              8u)
        << "restore window too short for the deferral to be observable";
    WindowObserver obs;
    obs.lo = clean.env().stubRestoreAddr();
    obs.hi = clean.env().stubEndAddr();
    obs.cpu = &clean.env().cpu();
    clean.env().cpu().setObserver(&obs);
    clean.runTo(kChaosOps);
    clean.env().cpu().setObserver(nullptr);
    ASSERT_NE(obs.hit, 0u) << "no delivery ran through the stub";
    clean.run();
    std::vector<Word> want = clean.words();

    // Injected run: the spurious refill lands exactly there.
    sim::FaultInjector inj;
    Rig rig(&inj);
    inj.addEvent({sim::FaultKind::SpuriousException, 0, obs.hit,
                  kScratch, 0, 0});
    rig.runTo(kChaosOps);
    ASSERT_EQ(inj.fired().size(), 1u);
    EXPECT_EQ(inj.pendingCount(), 0u);
    Addr fired_pc = inj.fired()[0].pc;
    EXPECT_TRUE(fired_pc < obs.lo || fired_pc >= obs.hi)
        << "refill fired inside the masked window at 0x" << std::hex
        << fired_pc;
    EXPECT_GT(inj.fired()[0].firedAt, obs.hit) << "no deferral happened";
    rig.run();
    EXPECT_EQ(rig.words(), want);
    EXPECT_FALSE(rig.env().demoted());
}

/** A converging campaign restored from any mid-run checkpoint must
 *  converge to the identical final words. */
TEST(SnapshotChaos, MidCampaignRestoreConvergesIdentically)
{
    setLoggingEnabled(false);
    Reference ref = makeReference();

    std::uint64_t seed = 0;
    CampaignOutcome full;
    std::vector<CampaignCheckpoint> cps;
    for (std::uint64_t s = 0x4100; s < 0x4140 && seed == 0; s++) {
        cps.clear();
        full = runCampaign(s, ref.window, ref.words, {}, 32, &cps);
        if (!outcomeFailed(full))
            seed = s;
    }
    ASSERT_NE(seed, 0u) << "no converging seed found";
    ASSERT_GE(cps.size(), 3u);

    for (const CampaignCheckpoint *cp :
         {&cps.front(), &cps[cps.size() / 2], &cps.back()}) {
        SCOPED_TRACE(::testing::Message() << "checkpoint op " << cp->op);
        ReproWindow w;
        w.startOp = cp->op;
        w.endOp = kTotalOps;
        w.snapshot = cp->image;
        CampaignOutcome replayed = replayRepro(w, ref.words);
        EXPECT_FALSE(outcomeFailed(replayed)) << replayed.what;
        EXPECT_EQ(replayed.words, full.words);
    }
    setLoggingEnabled(true);
}

/**
 * The divergence finder: a seed whose campaign ends in a structured
 * diagnosis is shrunk to a repro window no longer than a tenth of the
 * campaign, and the window replays the identical failure from its
 * snapshot alone — including after a round trip through the repro
 * file format the CI artifacts use.
 */
TEST(SnapshotChaos, ShrinkEmitsMinimalReproWindow)
{
    setLoggingEnabled(false);
    Reference ref = makeReference();

    std::uint64_t failing = 0;
    CampaignOutcome failure;
    for (std::uint64_t s = 0x7001; s <= 0x7190 && failing == 0; s++) {
        CampaignOutcome out = runCampaign(s, ref.window, ref.words);
        EXPECT_FALSE(out.hostFailure) << "seed " << s << ": " << out.what;
        if (out.diagnosed && out.mayDiagnose) {
            failing = s;
            failure = out;
        }
    }
    ASSERT_NE(failing, 0u) << "no diagnosing seed in 400 campaigns";

    ReproWindow repro = shrinkCampaign(failing, ref.window, ref.words);
    ASSERT_TRUE(repro.found);
    EXPECT_EQ(repro.failure, failure.what);
    EXPECT_GT(repro.endOp, repro.startOp);
    EXPECT_LE(repro.endOp - repro.startOp, kTotalOps / 10)
        << "window [" << repro.startOp << ", " << repro.endOp
        << ") of " << kTotalOps << " ops is not minimal";

    CampaignOutcome replayed = replayRepro(repro, ref.words);
    EXPECT_TRUE(replayed.diagnosed);
    EXPECT_EQ(replayed.what, failure.what);

    // Round-trip the window through the artifact file format.
    std::string dir = ::testing::TempDir();
    if (const char *d = std::getenv("UEXC_REPRO_DIR"))
        dir = std::string(d) + "/";
    std::string path = dir + "chaos_repro_" +
                       std::to_string(getpid()) + ".uxsn";
    writeReproFile(repro, path);
    ReproWindow loaded = readReproFile(path);
    EXPECT_EQ(loaded.seed, repro.seed);
    EXPECT_EQ(loaded.startOp, repro.startOp);
    EXPECT_EQ(loaded.endOp, repro.endOp);
    EXPECT_EQ(loaded.snapshot, repro.snapshot);
    CampaignOutcome from_file = replayRepro(loaded, ref.words);
    EXPECT_EQ(from_file.what, failure.what);
    EXPECT_FALSE(reproCommandLine(path).empty());
    if (std::getenv("UEXC_REPRO_DIR") == nullptr)
        std::remove(path.c_str());
    setLoggingEnabled(true);
}

} // namespace
} // namespace uexc::rt

// ---------------------------------------------------------------------------
// DSM cluster checkpoints
// ---------------------------------------------------------------------------

namespace uexc::apps {
namespace {

constexpr Addr kSoakBase = 0x40000000;
constexpr unsigned kSoakPages = 4;
constexpr Word kSoakBytes = kSoakPages * os::kPageBytes;

DsmCluster::Config
soakConfig()
{
    DsmCluster::Config cfg;
    cfg.nodes = 3;
    cfg.base = kSoakBase;
    cfg.bytes = kSoakBytes;
    cfg.unreliableNetwork = true;
    cfg.networkSeed = 77;
    cfg.lossPercent = 5;
    cfg.dupPercent = 5;
    cfg.delayPercent = 10;
    return cfg;
}

/** One deterministic soak operation, a pure function of the op index
 *  (so a resumed run needs no host-side RNG state). */
void
soakOp(DsmCluster &c, unsigned op)
{
    std::uint64_t s = 0x50a50a50ull + op * 0x9e3779b97f4a7c15ull;
    auto r = [&s] { return sim::FaultInjector::splitmix64(s); };
    unsigned node = static_cast<unsigned>(r() % c.nodes());
    Addr va = kSoakBase + static_cast<Word>(r() % (kSoakBytes / 4)) * 4;
    if (r() % 2 != 0)
        c.write(node, va, static_cast<Word>(r()));
    else
        (void)c.read(node, va);
}

std::vector<Word>
soakContents(DsmCluster &c)
{
    std::vector<Word> words;
    for (Word off = 0; off < kSoakBytes; off += 64)
        words.push_back(c.read(0, kSoakBase + off));
    return words;
}

TEST(DsmSnapshot, MidRunRestoreConvergesIdentically)
{
    setLoggingEnabled(false);
    DsmCluster ref(soakConfig());
    for (unsigned op = 0; op < 120; op++)
        soakOp(ref, op);
    std::vector<Word> want = soakContents(ref);

    DsmCluster a(soakConfig());
    for (unsigned op = 0; op < 50; op++)
        soakOp(a, op);
    std::vector<Byte> img = a.checkpoint();

    DsmCluster b(soakConfig());
    b.restore(img);
    for (unsigned op = 50; op < 120; op++)
        soakOp(b, op);

    EXPECT_EQ(soakContents(b), want);
    EXPECT_EQ(b.stats().messages, ref.stats().messages);
    EXPECT_EQ(b.stats().pageTransfers, ref.stats().pageTransfers);
    EXPECT_EQ(b.stats().retries, ref.stats().retries);
    EXPECT_EQ(b.totalCycles(), ref.totalCycles());
    setLoggingEnabled(true);
}

TEST(DsmSnapshot, ConfigMismatchIsRejected)
{
    setLoggingEnabled(false);
    DsmCluster a(soakConfig());
    std::vector<Byte> img = a.checkpoint();

    DsmCluster::Config two = soakConfig();
    two.nodes = 2;
    DsmCluster b(two);
    EXPECT_THROW(b.restore(img), sim::SnapshotError);

    DsmCluster::Config reliable = soakConfig();
    reliable.unreliableNetwork = false;
    DsmCluster c(reliable);
    EXPECT_THROW(c.restore(img), sim::SnapshotError);
    setLoggingEnabled(true);
}

/**
 * The crash-consistency soak: a child process runs the workload,
 * checkpointing the cluster to one snapshot file every few ops, and
 * is SIGKILLed mid-flight at an op *not* aligned to the checkpoint
 * stride. The parent reads whatever the atomic rename left behind,
 * restores, replays the remaining ops, and must converge to exactly
 * the contents and statistics of an unbroken run.
 */
TEST(DsmSnapshot, CheckpointedSoakSurvivesSigkill)
{
    constexpr unsigned kOps = 160;
    constexpr unsigned kEvery = 25;
    constexpr unsigned kKillAt = 133; // 133 % 25 != 0: torn interval
    const Word soak_tag = sim::snapshotTag('S', 'O', 'A', 'K');

    std::string path = ::testing::TempDir() + "uexc_dsm_soak_" +
                       std::to_string(getpid()) + ".uxsn";
    std::remove(path.c_str());

    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // child: never returns
        setLoggingEnabled(false);
        DsmCluster c(soakConfig());
        for (unsigned op = 0; op < kOps; op++) {
            if (op % kEvery == 0) {
                sim::SnapshotWriter w;
                w.beginSection(soak_tag);
                w.u32(op);
                std::vector<Byte> img = c.checkpoint();
                w.u64(img.size());
                w.bytes(img.data(), img.size());
                w.endSection();
                sim::writeSnapshotFile(path, w.finish());
            }
            if (op == kKillAt)
                raise(SIGKILL);
            soakOp(c, op);
        }
        _exit(0); // not reached
    }

    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    setLoggingEnabled(false);
    std::vector<Byte> file = sim::readSnapshotFile(path);
    sim::SnapshotImage parsed(file);
    sim::SnapshotReader r = parsed.section(soak_tag);
    unsigned resume_op = r.u32();
    std::uint64_t len = r.u64();
    ASSERT_EQ(len, r.remaining());
    std::vector<Byte> cluster_img(len);
    r.bytes(cluster_img.data(), cluster_img.size());
    r.expectEnd();
    EXPECT_EQ(resume_op, kKillAt / kEvery * kEvery);

    DsmCluster resumed(soakConfig());
    resumed.restore(cluster_img);
    for (unsigned op = resume_op; op < kOps; op++)
        soakOp(resumed, op);

    DsmCluster ref(soakConfig());
    for (unsigned op = 0; op < kOps; op++)
        soakOp(ref, op);

    EXPECT_EQ(soakContents(resumed), soakContents(ref));
    EXPECT_EQ(resumed.stats().messages, ref.stats().messages);
    EXPECT_EQ(resumed.stats().retries, ref.stats().retries);
    EXPECT_EQ(resumed.stats().duplicatesSuppressed,
              ref.stats().duplicatesSuppressed);
    EXPECT_EQ(resumed.totalCycles(), ref.totalCycles());
    std::remove(path.c_str());
    setLoggingEnabled(true);
}

} // namespace
} // namespace uexc::apps
