/**
 * @file
 * CPU tests: arithmetic, logical, shift, and multiply/divide
 * instruction semantics, executed as guest code in kseg0.
 */

#include <gtest/gtest.h>

#include "sim_test_util.h"

namespace uexc::sim {
namespace {

using testutil::BareMachine;

/** Run a 3-register op with given inputs; return rd. */
Word
runRRR(Word (*encode)(unsigned, unsigned, unsigned), Word a, Word b)
{
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        as.li32(T0, a);
        as.li32(T1, b);
        as.emit(encode(V0, T0, T1));
        as.hcall(0);
    });
    m.runToHalt();
    return m.cpu().reg(V0);
}

TEST(CpuArith, AdduSubu)
{
    EXPECT_EQ(runRRR(enc::addu, 2, 3), 5u);
    EXPECT_EQ(runRRR(enc::addu, 0xffffffffu, 1), 0u);  // wraps silently
    EXPECT_EQ(runRRR(enc::subu, 5, 7), 0xfffffffeu);
}

TEST(CpuArith, Logical)
{
    EXPECT_EQ(runRRR(enc::and_, 0xff00ff00u, 0x0ff00ff0u), 0x0f000f00u);
    EXPECT_EQ(runRRR(enc::or_, 0xff00ff00u, 0x0ff00ff0u), 0xfff0fff0u);
    EXPECT_EQ(runRRR(enc::xor_, 0xff00ff00u, 0x0ff00ff0u), 0xf0f0f0f0u);
    EXPECT_EQ(runRRR(enc::nor, 0xff00ff00u, 0x0ff00ff0u), 0x000f000fu);
}

TEST(CpuArith, SetLessThan)
{
    EXPECT_EQ(runRRR(enc::slt, 0xffffffffu, 0), 1u);   // -1 < 0 signed
    EXPECT_EQ(runRRR(enc::sltu, 0xffffffffu, 0), 0u);  // max > 0 unsigned
    EXPECT_EQ(runRRR(enc::slt, 3, 3), 0u);
    EXPECT_EQ(runRRR(enc::sltu, 2, 3), 1u);
}

TEST(CpuArith, ImmediateForms)
{
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        as.li(T0, 10);
        as.addiu(V0, T0, -3);
        as.slti(V1, T0, 11);
        as.andi(A0, T0, 0x3);
        as.ori(A1, T0, 0x100);
        as.xori(A2, T0, 0xf);
        as.sltiu(A3, T0, 5);
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(V0), 7u);
    EXPECT_EQ(m.cpu().reg(V1), 1u);
    EXPECT_EQ(m.cpu().reg(A0), 2u);
    EXPECT_EQ(m.cpu().reg(A1), 0x10au);
    EXPECT_EQ(m.cpu().reg(A2), 5u);
    EXPECT_EQ(m.cpu().reg(A3), 0u);
}

TEST(CpuArith, Lui)
{
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        as.lui(V0, 0x1234);
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(V0), 0x12340000u);
}

TEST(CpuArith, Shifts)
{
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        as.li32(T0, 0x80000001u);
        as.sll(V0, T0, 1);
        as.srl(V1, T0, 1);
        as.sra(A0, T0, 1);
        as.li(T1, 4);
        as.sllv(A1, T0, T1);
        as.srlv(A2, T0, T1);
        as.srav(A3, T0, T1);
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(V0), 0x00000002u);
    EXPECT_EQ(m.cpu().reg(V1), 0x40000000u);
    EXPECT_EQ(m.cpu().reg(A0), 0xc0000000u);
    EXPECT_EQ(m.cpu().reg(A1), 0x00000010u);
    EXPECT_EQ(m.cpu().reg(A2), 0x08000000u);
    EXPECT_EQ(m.cpu().reg(A3), 0xf8000000u);
}

TEST(CpuArith, ShiftAmountFromRegisterIsMasked)
{
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        as.li(T0, 1);
        as.li(T1, 33);  // 33 & 31 == 1
        as.sllv(V0, T0, T1);
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(V0), 2u);
}

TEST(CpuArith, MultiplySignedUnsigned)
{
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        as.li32(T0, 0xffffffffu);  // -1
        as.li(T1, 2);
        as.mult(T0, T1);
        as.mfhi(V0);
        as.mflo(V1);
        as.multu(T0, T1);
        as.mfhi(A0);
        as.mflo(A1);
        as.hcall(0);
    });
    m.runToHalt();
    // signed: -1 * 2 = -2
    EXPECT_EQ(m.cpu().reg(V0), 0xffffffffu);
    EXPECT_EQ(m.cpu().reg(V1), 0xfffffffeu);
    // unsigned: 0xffffffff * 2 = 0x1_fffffffe
    EXPECT_EQ(m.cpu().reg(A0), 1u);
    EXPECT_EQ(m.cpu().reg(A1), 0xfffffffeu);
}

TEST(CpuArith, DivideSignedUnsigned)
{
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        as.li(T0, -7);
        as.li(T1, 2);
        as.div(T0, T1);
        as.mflo(V0);  // quotient -3 (truncating)
        as.mfhi(V1);  // remainder -1
        as.li32(T2, 0xfffffff9u);
        as.li(T3, 2);
        as.divu(T2, T3);
        as.mflo(A0);
        as.mfhi(A1);
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(static_cast<SWord>(m.cpu().reg(V0)), -3);
    EXPECT_EQ(static_cast<SWord>(m.cpu().reg(V1)), -1);
    EXPECT_EQ(m.cpu().reg(A0), 0x7ffffffcu);
    EXPECT_EQ(m.cpu().reg(A1), 1u);
}

TEST(CpuArith, DivideByZeroHasDefinedResult)
{
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        as.li(T0, 42);
        as.li(T1, 0);
        as.div(T0, T1);
        as.mflo(V0);
        as.mfhi(V1);
        as.hcall(0);
    });
    m.runToHalt();
    // no exception; our defined UNPREDICTABLE result
    EXPECT_EQ(m.cpu().reg(V0), 0xffffffffu);
    EXPECT_EQ(m.cpu().reg(V1), 42u);
    EXPECT_EQ(m.cpu().stats().exceptionsTaken, 0u);
}

TEST(CpuArith, MtHiLo)
{
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        as.li(T0, 11);
        as.li(T1, 22);
        as.mthi(T0);
        as.mtlo(T1);
        as.mfhi(V0);
        as.mflo(V1);
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(V0), 11u);
    EXPECT_EQ(m.cpu().reg(V1), 22u);
}

TEST(CpuArith, RegisterZeroIsHardwiredZero)
{
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        as.li(T0, 99);
        as.addu(Zero, T0, T0);  // writes to $zero are discarded
        as.move(V0, Zero);
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(V0), 0u);
    EXPECT_EQ(m.cpu().reg(Zero), 0u);
}

TEST(CpuArith, MultDivCostsAreCharged)
{
    BareMachine a_mult, a_add;
    a_mult.loadAsm([&](Assembler &as) {
        as.mult(T0, T1);
        as.hcall(0);
    });
    a_add.loadAsm([&](Assembler &as) {
        as.addu(V0, T0, T1);
        as.hcall(0);
    });
    a_mult.runToHalt();
    a_add.runToHalt();
    CostModel cost;
    EXPECT_EQ(a_mult.cpu().cycles() - a_add.cpu().cycles(),
              cost.multCost - cost.baseCost);
}

TEST(CpuArith, CyclesAndInstructionsAdvance)
{
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        for (int i = 0; i < 10; i++)
            as.nop();
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().instret(), 11u);
    EXPECT_GE(m.cpu().cycles(), 11u);
}

} // namespace
} // namespace uexc::sim
