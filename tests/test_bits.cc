/**
 * @file
 * Unit tests for common/bits.h.
 */

#include <gtest/gtest.h>

#include "common/bits.h"

namespace uexc {
namespace {

TEST(Bits, ExtractBasic)
{
    EXPECT_EQ(bits(0xdeadbeefu, 31, 28), 0xdu);
    EXPECT_EQ(bits(0xdeadbeefu, 3, 0), 0xfu);
    EXPECT_EQ(bits(0xdeadbeefu, 15, 8), 0xbeu);
    EXPECT_EQ(bits(0xffffffffu, 31, 0), 0xffffffffu);
}

TEST(Bits, SingleBit)
{
    EXPECT_EQ(bit(0x80000000u, 31), 1u);
    EXPECT_EQ(bit(0x80000000u, 0), 0u);
    EXPECT_EQ(bit(0x00000001u, 0), 1u);
}

TEST(Bits, InsertPreservesOthers)
{
    Word w = insertBits(0xffffffffu, 15, 8, 0);
    EXPECT_EQ(w, 0xffff00ffu);
    w = insertBits(0, 31, 26, 0x2b);
    EXPECT_EQ(w >> 26, 0x2bu);
    EXPECT_EQ(w & 0x03ffffffu, 0u);
}

TEST(Bits, InsertMasksField)
{
    // field wider than hi-lo is truncated
    Word w = insertBits(0, 3, 0, 0xffu);
    EXPECT_EQ(w, 0xfu);
}

TEST(Bits, SignExtend)
{
    EXPECT_EQ(signExtend(0xffffu, 16), 0xffffffffu);
    EXPECT_EQ(signExtend(0x7fffu, 16), 0x00007fffu);
    EXPECT_EQ(signExtend(0x80u, 8), 0xffffff80u);
    EXPECT_EQ(signExtend(0x7fu, 8), 0x7fu);
    EXPECT_EQ(signExtend(0, 16), 0u);
}

TEST(Bits, Alignment)
{
    EXPECT_TRUE(isAligned(0x1000, 4096));
    EXPECT_FALSE(isAligned(0x1001, 4096));
    EXPECT_TRUE(isAligned(0, 4));
    EXPECT_EQ(roundDown(0x1fff, 4096), 0x1000u);
    EXPECT_EQ(roundUp(0x1001, 4096), 0x2000u);
    EXPECT_EQ(roundUp(0x1000, 4096), 0x1000u);
}

class SignExtendWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(SignExtendWidths, RoundTripsNonNegative)
{
    unsigned width = GetParam();
    Word max_pos = (Word(1) << (width - 1)) - 1;
    EXPECT_EQ(signExtend(max_pos, width), max_pos);
    EXPECT_EQ(signExtend(0, width), 0u);
}

TEST_P(SignExtendWidths, NegativeHasHighBitsSet)
{
    unsigned width = GetParam();
    Word min_neg = Word(1) << (width - 1);
    Word extended = signExtend(min_neg, width);
    EXPECT_EQ(extended >> (width - 1),
              (~Word(0)) >> (width - 1));
}

INSTANTIATE_TEST_SUITE_P(Widths, SignExtendWidths,
                         ::testing::Values(1u, 4u, 8u, 12u, 16u, 20u,
                                           24u, 31u));

} // namespace
} // namespace uexc
