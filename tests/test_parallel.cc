/**
 * @file
 * Lockstep equivalence suite for the host-parallel schedulers
 * (machine.h SchedulerMode). The Barrier scheduler's contract is that
 * running every quantum on its own host thread is *observably
 * indistinguishable* from the serial round-robin reference — final
 * architectural state, cycle and instruction counters, delivery
 * statistics, stop reason, and the full checkpoint image are
 * bit-identical. This file enforces that contract three ways:
 *
 *   1. the 1000-seed differential fuzz corpus (the same generator the
 *      cross-interpreter suite uses), replayed on {1,4,8}-hart
 *      machines with all harts racing through the same program — a
 *      conflict storm that exercises the speculative-round rollback
 *      path constantly;
 *   2. the multihart delivery study (user-vectored and
 *      kernel-mediated), where rounds genuinely commit in parallel
 *      because each hart touches only per-hart state;
 *   3. a shared-counter ping-pong designed so every speculative round
 *      aborts, proving rollback restores the serial schedule exactly.
 *
 * The oracle is Machine::checkpoint() byte-equality: the image holds
 * every hart's architectural context, physical memory, and the
 * scheduler position, and SchedulerMode is deliberately excluded from
 * the config echo — so a serial and a barrier machine that executed
 * the same schedule produce the same bytes.
 *
 * The opt-in Relaxed scheduler makes no such promise; it gets
 * weaker-contract smoke tests (budget conservation, liveness) plus
 * the UEXC_PARALLEL resolution tests. Run this binary under TSan
 * (cmake -DUEXC_TSAN=ON) to check the synchronization itself.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/conflict.h"
#include "core/multihart.h"
#include "fuzz_util.h"
#include "os/kernel.h"
#include "os/layout.h"
#include "sim/faultinject.h"
#include "sim_test_util.h"

namespace uexc::sim {
namespace {

using namespace fuzzutil;

constexpr InstCount kSmallQuantum = 256;

/** Byte-compare two machines' checkpoint images; on mismatch report
 *  the first differing offset (the snapshot section layout makes the
 *  offset enough to tell which hart or page diverged). */
void
expectSameImage(Machine &serial, Machine &parallel,
                const std::string &what)
{
    std::vector<Byte> a = serial.checkpoint();
    std::vector<Byte> b = parallel.checkpoint();
    ASSERT_EQ(a.size(), b.size()) << what << ": image sizes differ";
    for (std::size_t i = 0; i < a.size(); i++) {
        if (a[i] != b[i]) {
            ADD_FAILURE() << what << ": images differ at offset " << i
                          << " (serial 0x" << std::hex << unsigned(a[i])
                          << " vs parallel 0x" << unsigned(b[i]) << ")";
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// 1. Fuzz corpus: serial vs barrier on racing multi-hart machines.
// ---------------------------------------------------------------------------

/** One corpus seed: N harts all start the same random program at the
 *  same PC on a serial and on a barrier machine; everything observable
 *  must match. Hart count and interpreter flavour are derived from
 *  the seed so the corpus covers the whole matrix. */
void
runFuzzSeedSerialVsBarrier(unsigned seed)
{
    SCOPED_TRACE(::testing::Message() << "fuzz seed " << seed);

    static const unsigned kHartChoices[] = {1, 4, 8};
    MachineConfig cfg;
    cfg.memBytes = 1 << 18;
    cfg.harts = kHartChoices[seed % 3];
    cfg.quantum = kSmallQuantum;
    cfg.cpu.fastInterpreter = (seed & 1) != 0;
    cfg.scheduler = SchedulerMode::Serial;
    MachineConfig bar_cfg = cfg;
    bar_cfg.scheduler = SchedulerMode::Barrier;

    Machine serial(cfg), barrier(bar_cfg);
    Program prog = buildFuzzProgram(seed);
    for (Machine *m : {&serial, &barrier}) {
        installFuzzSkipHandlers(*m);
        m->load(prog);
        for (unsigned i = 0; i < cfg.harts; i++)
            m->hart(i).setPc(testutil::kTestOrigin);
    }

    InstCount budget = InstCount(cfg.harts) * kFuzzInstLimit;
    MachineRunResult rs = serial.run(budget);
    MachineRunResult rb = barrier.run(budget);

    EXPECT_EQ(int(rs.reason), int(rb.reason));
    EXPECT_EQ(rs.instsExecuted, rb.instsExecuted);
    EXPECT_EQ(rs.hart, rb.hart);
    expectSameImage(serial, barrier,
                    "seed " + std::to_string(seed));
}

constexpr unsigned kShards = 8;
constexpr unsigned kSeedsPerShard = 125; // the full 1000-seed corpus

class ParallelFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelFuzz, SerialAndBarrierSchedulesAreBitIdentical)
{
    const unsigned base = GetParam() * kSeedsPerShard;
    for (unsigned s = 0; s < kSeedsPerShard; s++) {
        runFuzzSeedSerialVsBarrier(base + s);
        if (::testing::Test::HasNonfatalFailure())
            break; // the failing seed is in the trace; stop the shard
    }
}

INSTANTIATE_TEST_SUITE_P(Shards, ParallelFuzz,
                         ::testing::Range(0u, kShards));

// ---------------------------------------------------------------------------
// 1b. Soundness oracle for the static shared-page analyzer
//     (analysis/conflict.h): over the same 1000-seed corpus, every
//     page set a barrier round's StoreBuffer observes must sit inside
//     the statically computed may-sets, and every page that could
//     have aborted a round must be in the static predicted conflict
//     set. This is the containment half of the analyzer's contract;
//     precision (no spurious pages) is test_analysis.cc's job.
// ---------------------------------------------------------------------------

/** Translate a fuzz-program virtual address to the physical page the
 *  StoreBuffer would record: kseg0 is identity minus the segment
 *  base, and the one kuseg page the corpus maps (kMapVa) goes to its
 *  fixed frame. */
Word
fuzzPhysPage(Addr va)
{
    if (va >= 0x80000000u)
        return (va - 0x80000000u) >> PhysMemory::PageShift;
    if (va >= kMapVa && va < kMapVa + PhysMemory::PageBytes)
        return kMapFrame >> PhysMemory::PageShift;
    return va >> PhysMemory::PageShift;
}

/** Static may-read/may-write/may-fetch sets of one fuzz hart: the
 *  generated program (every hart runs the same image from the same
 *  PC) plus the two skip handlers, in physical pages so they compare
 *  directly against StoreBuffer observations. */
analysis::PageAccessSummary
staticFuzzMaySets(const Program &prog)
{
    analysis::PageAccessOptions opts;
    opts.pageOf = fuzzPhysPage;

    analysis::CodeRegion region;
    region.begin = prog.origin;
    region.end = prog.end();
    region.entries = {prog.origin};
    region.dataRanges.push_back({prog.symbol("buf"), prog.end()});

    analysis::PageAccessSummary sum =
        analysis::analyzePageAccesses(prog, region, opts);

    // The skip handlers (installFuzzSkipHandlers) are separate images
    // entered asynchronously by the vectoring hardware.
    for (Addr vector : {Cpu::RefillVector, Cpu::GeneralVector}) {
        Assembler a(vector);
        a.mfc0(K0, cp0reg::Epc);
        a.addiu(K0, K0, 4);
        a.jr(K0);
        a.rfe(); // delay slot
        Program h = a.finalize();
        analysis::CodeRegion hr;
        hr.begin = h.origin;
        hr.end = h.end();
        hr.entries = {h.origin};
        analysis::mergeSummaries(
            sum, analysis::analyzePageAccesses(h, hr, opts));
    }
    return sum;
}

/** One corpus seed: run the barrier machine with a PageTouchLog
 *  attached and hold every observed round inside the static result.
 *  Returns the number of speculative rounds observed so the shard
 *  can prove the oracle is not vacuous. */
std::size_t
runFuzzSeedSoundnessOracle(unsigned seed)
{
    SCOPED_TRACE(::testing::Message() << "oracle seed " << seed);

    static const unsigned kHartChoices[] = {1, 4, 8};
    MachineConfig cfg;
    cfg.memBytes = 1 << 18;
    cfg.harts = kHartChoices[seed % 3];
    cfg.quantum = kSmallQuantum;
    cfg.cpu.fastInterpreter = (seed & 1) != 0;
    cfg.scheduler = SchedulerMode::Barrier;

    Machine m(cfg);
    Program prog = buildFuzzProgram(seed);
    installFuzzSkipHandlers(m);
    m.load(prog);
    for (unsigned i = 0; i < cfg.harts; i++)
        m.hart(i).setPc(testutil::kTestOrigin);

    PageTouchLog log;
    m.setPageTouchLog(&log);
    m.run(InstCount(cfg.harts) * kFuzzInstLimit);

    analysis::PageAccessSummary may = staticFuzzMaySets(prog);
    // Every address in the corpus is computable (constant bases), so
    // a non-empty unbounded list is an analyzer precision regression
    // — and would make the containment checks below vacuous.
    if (!may.unboundedLoads.empty() || !may.unboundedStores.empty()) {
        ADD_FAILURE() << "VSA failed to resolve a fuzz memory "
                         "address; the containment check would be "
                         "vacuous";
        return log.rounds.size();
    }

    analysis::ConflictResult predicted = analysis::intersectSummaries(
        std::vector<analysis::PageAccessSummary>(cfg.harts, may));

    auto contained = [](const std::unordered_set<Addr> &observed,
                        const std::set<Word> &mayset,
                        const char *what) {
        for (Addr p : observed)
            EXPECT_TRUE(mayset.count(Word(p)))
                << what << " page 0x" << std::hex << p
                << " observed but absent from the static may-set";
    };

    for (std::size_t r = 0; r < log.rounds.size(); r++) {
        const PageTouchLog::Round &round = log.rounds[r];
        SCOPED_TRACE(::testing::Message() << "round " << r);

        std::set<Word> dynConflicts;
        bool anySelfAbort = false;
        for (std::size_t j = 0; j < round.harts.size(); j++) {
            const PageTouchLog::HartTouches &t = round.harts[j];
            contained(t.readPages, may.readPages, "read");
            contained(t.writePages, may.writePages, "write");
            contained(t.fetchPages, may.fetchPages, "fetch");
            anySelfAbort |= t.selfAborted;

            // Reconstruct the abort predicate in serial round order:
            // earlier writers against this hart's reads and fetches,
            // plus this hart's own write/fetch (SMC) overlap.
            for (std::size_t i = 0; i < j; i++)
                for (Addr p : round.harts[i].writePages)
                    if (t.readPages.count(p) || t.fetchPages.count(p))
                        dynConflicts.insert(Word(p));
            for (Addr p : t.writePages)
                if (t.fetchPages.count(p))
                    dynConflicts.insert(Word(p));
        }

        if (round.aborted)
            EXPECT_TRUE(anySelfAbort || !dynConflicts.empty())
                << "aborted round with no reconstructible cause";
        for (Word p : dynConflicts)
            EXPECT_TRUE(predicted.conflictPages.count(p))
                << "dynamic conflict page 0x" << std::hex << p
                << " missing from the static predicted conflict set";
    }
    return log.rounds.size();
}

class StaticOracleFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(StaticOracleFuzz, MaySetsContainObservedPageSets)
{
    const unsigned base = GetParam() * kSeedsPerShard;
    std::size_t rounds = 0;
    for (unsigned s = 0; s < kSeedsPerShard; s++) {
        rounds += runFuzzSeedSoundnessOracle(base + s);
        if (::testing::Test::HasNonfatalFailure())
            break; // the failing seed is in the trace; stop the shard
    }
    // The corpus is a conflict storm: if no shard seed ever produced
    // a speculative round, the containment checks above checked
    // nothing and the instrumentation hook is broken.
    EXPECT_GT(rounds, 0u) << "no speculative rounds observed";
}

INSTANTIATE_TEST_SUITE_P(Shards, StaticOracleFuzz,
                         ::testing::Range(0u, kShards));

// ---------------------------------------------------------------------------
// 2. The delivery study: rounds genuinely commit in parallel.
// ---------------------------------------------------------------------------

constexpr Addr kWorkerPhys = 0x00210000;
constexpr unsigned kAsid = 1;

/** Boot the multihart study (bench_multihart's workload) on a machine
 *  with the given scheduler. No observer — the barrier scheduler
 *  falls back to serial quanta under one, which is correct but not
 *  what this test wants to exercise. */
std::unique_ptr<Machine>
buildStudy(unsigned harts, bool user_vectored, bool fast,
           SchedulerMode sched)
{
    MachineConfig cfg;
    cfg.harts = harts;
    cfg.quantum = kSmallQuantum;
    cfg.cpu.userVectorHw = true;
    cfg.cpu.fastInterpreter = fast;
    cfg.scheduler = sched;
    auto m = std::make_unique<Machine>(cfg);

    m->load(rt::multihart::buildKernelImage(harts));
    Program worker = rt::multihart::buildWorkerProgram(harts);
    m->mem().writeBlock(kWorkerPhys, worker.words.data(),
                        4 * worker.words.size());
    for (unsigned i = 0; i < harts; i++) {
        Hart &h = m->hart(i);
        h.tlb().setEntry(0,
                         (os::kUserTextBase & entryhi::VpnMask) |
                             (kAsid << entryhi::AsidShift),
                         (kWorkerPhys & entrylo::PfnMask) |
                             entrylo::V);
        Word st = h.cp0().statusReg() | status::KUc;
        if (user_vectored) {
            st |= status::UV;
            h.cp0().setUxReg(UxReg::Target,
                             worker.symbol("mh_uv_handler"));
        }
        h.cp0().setStatusReg(st);
        h.cp0().write(cp0reg::EntryHi, kAsid << entryhi::AsidShift);
        h.setPc(worker.symbol("mh_hart" + std::to_string(i) +
                              "_entry"));
    }
    return m;
}

void
checkStudyLockstep(unsigned harts, bool user_vectored, bool fast)
{
    SCOPED_TRACE(::testing::Message()
                 << harts << " harts, "
                 << (user_vectored ? "user-vectored" : "kernel-mediated")
                 << (fast ? ", fast interpreter" : ", reference"));

    auto serial = buildStudy(harts, user_vectored, fast,
                             SchedulerMode::Serial);
    auto barrier = buildStudy(harts, user_vectored, fast,
                              SchedulerMode::Barrier);
    InstCount budget = InstCount(harts) * 20000;
    MachineRunResult rs = serial->run(budget);
    MachineRunResult rb = barrier->run(budget);

    EXPECT_EQ(int(rs.reason), int(rb.reason));
    EXPECT_EQ(rs.instsExecuted, rb.instsExecuted);
    EXPECT_EQ(rs.hart, rb.hart);
    for (unsigned i = 0; i < harts; i++) {
        const CpuStats &a = serial->hart(i).stats();
        const CpuStats &b = barrier->hart(i).stats();
        EXPECT_EQ(a.instructions, b.instructions) << "hart " << i;
        EXPECT_EQ(a.cycles, b.cycles) << "hart " << i;
        EXPECT_EQ(a.exceptionsTaken, b.exceptionsTaken) << "hart " << i;
        EXPECT_EQ(a.userVectoredExceptions, b.userVectoredExceptions)
            << "hart " << i;
    }
    expectSameImage(*serial, *barrier, "study image");

    const BarrierSchedStats &bs = barrier->barrierStats();
    EXPECT_GT(bs.parallelRounds, 0u);
    if (user_vectored) {
        // User-vectored delivery touches only per-hart state, so
        // every speculative round must commit — otherwise this test
        // is vacuously serial.
        EXPECT_EQ(bs.committedRounds, bs.parallelRounds);
        EXPECT_EQ(bs.abortedRounds, 0u);
    } else {
        // Kernel-mediated delivery is the paper's bottleneck made
        // literal: every hart's handler spills into mh_save slots
        // that share one physical page, so page-granular conflict
        // detection aborts the rounds — and rollback must still
        // reproduce the serial schedule (checked above).
        EXPECT_GT(bs.abortedRounds, 0u);
    }
}

TEST(ParallelStudy, UserVectored4Harts)
{
    checkStudyLockstep(4, true, false);
}

TEST(ParallelStudy, UserVectored8Harts)
{
    checkStudyLockstep(8, true, false);
}

TEST(ParallelStudy, UserVectored8HartsFastInterpreter)
{
    checkStudyLockstep(8, true, true);
}

TEST(ParallelStudy, KernelMediated4Harts)
{
    checkStudyLockstep(4, false, false);
}

TEST(ParallelStudy, KernelMediated8HartsFastInterpreter)
{
    checkStudyLockstep(8, false, true);
}

// ---------------------------------------------------------------------------
// 3. Conflict storm: every round aborts, rollback must be exact.
// ---------------------------------------------------------------------------

/** All harts increment the same shared kseg0 word in a tight loop:
 *  every speculative round has write/read page overlap between every
 *  pair of harts, so the barrier scheduler aborts and re-runs the
 *  round serially, every time it tries. */
Program
buildSharedCounterProgram(unsigned iters)
{
    Assembler a(testutil::kTestOrigin);
    a.li32(A0, 0x80020000u);
    a.li32(T0, iters);
    a.label("loop");
    a.lw(T1, 0, A0);
    a.addiu(T1, T1, 1);
    a.sw(T1, 0, A0);
    a.addiu(T0, T0, -1);
    a.bne(T0, Zero, "loop");
    a.nop();
    a.hcall(0);
    return a.finalize();
}

TEST(ParallelConflict, RollbackReproducesTheSerialSchedule)
{
    MachineConfig cfg;
    cfg.memBytes = 1 << 18;
    cfg.harts = 4;
    cfg.quantum = kSmallQuantum;
    cfg.scheduler = SchedulerMode::Serial;
    MachineConfig bar_cfg = cfg;
    bar_cfg.scheduler = SchedulerMode::Barrier;

    Machine serial(cfg), barrier(bar_cfg);
    Program prog = buildSharedCounterProgram(3000);
    for (Machine *m : {&serial, &barrier}) {
        m->load(prog);
        for (unsigned i = 0; i < cfg.harts; i++)
            m->hart(i).setPc(testutil::kTestOrigin);
    }

    MachineRunResult rs = serial.run(200000);
    MachineRunResult rb = barrier.run(200000);
    EXPECT_EQ(int(rs.reason), int(rb.reason));
    EXPECT_EQ(rs.instsExecuted, rb.instsExecuted);
    expectSameImage(serial, barrier, "conflict storm");

    // The serial schedule interleaves whole quanta, so the racy
    // increments lose updates deterministically; the final count is a
    // schedule fingerprint both machines must share.
    EXPECT_EQ(serial.debugReadWord(0x80020000u),
              barrier.debugReadWord(0x80020000u));

    // The storm must actually have tripped the abort path.
    const BarrierSchedStats &bs = barrier.barrierStats();
    EXPECT_GT(bs.abortedRounds, 0u);
    EXPECT_GT(bs.serialQuanta, 0u);
}

// ---------------------------------------------------------------------------
// 4. Breakpoints force serial quanta but stay bit-identical.
// ---------------------------------------------------------------------------

TEST(ParallelConflict, BreakpointsAreIneligibleButIdentical)
{
    MachineConfig cfg;
    cfg.memBytes = 1 << 18;
    cfg.harts = 4;
    cfg.quantum = kSmallQuantum;
    cfg.scheduler = SchedulerMode::Serial;
    MachineConfig bar_cfg = cfg;
    bar_cfg.scheduler = SchedulerMode::Barrier;

    Machine serial(cfg), barrier(bar_cfg);
    Program prog = buildSharedCounterProgram(200);
    for (Machine *m : {&serial, &barrier}) {
        m->load(prog);
        for (unsigned i = 0; i < cfg.harts; i++)
            m->hart(i).setPc(testutil::kTestOrigin);
        // A breakpoint on hart 2's loop head: the machine must stop
        // there with the schedule position intact, twice over.
        m->hart(2).addBreakpoint(serial.symbol("loop"));
    }

    MachineRunResult rs = serial.run(100000);
    MachineRunResult rb = barrier.run(100000);
    EXPECT_EQ(int(rs.reason), int(rb.reason));
    EXPECT_EQ(rs.hart, rb.hart);
    EXPECT_EQ(rs.instsExecuted, rb.instsExecuted);
    expectSameImage(serial, barrier, "breakpoint stop");
    // Breakpoints pin the barrier machine to serial quanta.
    EXPECT_EQ(barrier.barrierStats().parallelRounds, 0u);
}

// ---------------------------------------------------------------------------
// 5. An active fault injector gates rounds but stays bit-identical.
// ---------------------------------------------------------------------------

TEST(ParallelConflict, ActiveInjectorIsIneligibleButIdentical)
{
    MachineConfig cfg;
    cfg.memBytes = 1 << 18;
    cfg.harts = 4;
    cfg.quantum = kSmallQuantum;
    cfg.scheduler = SchedulerMode::Serial;
    MachineConfig bar_cfg = cfg;
    bar_cfg.scheduler = SchedulerMode::Barrier;

    // Injectors fire at fixed (hart, instret) points, so the same
    // events on both machines perturb the same instructions; while
    // events are pending for a live hart the barrier scheduler must
    // run serial quanta (worker engines have no injector attached).
    FaultInjector inj_s, inj_b;
    cfg.cpu.faultInjector = &inj_s;
    bar_cfg.cpu.faultInjector = &inj_b;
    Machine serial(cfg), barrier(bar_cfg);

    Program prog = buildFuzzProgram(7);
    for (Machine *m : {&serial, &barrier}) {
        installFuzzSkipHandlers(*m);
        m->load(prog);
        for (unsigned i = 0; i < 4; i++)
            m->hart(i).setPc(testutil::kTestOrigin);
    }
    Addr buf_pa = Machine::unmappedToPhys(serial.symbol("buf"));
    for (FaultInjector *inj : {&inj_s, &inj_b}) {
        inj->addEvent({FaultKind::MemBitFlip, 0, 400, buf_pa + 8,
                       5, 0});
        inj->addEvent({FaultKind::TlbSpuriousMiss, 2, 700, 0, 0, 9});
    }

    InstCount budget = 4 * kFuzzInstLimit;
    MachineRunResult rs = serial.run(budget);
    MachineRunResult rb = barrier.run(budget);
    EXPECT_EQ(int(rs.reason), int(rb.reason));
    EXPECT_EQ(rs.instsExecuted, rb.instsExecuted);
    EXPECT_EQ(inj_s.fired().size(), inj_b.fired().size());
    expectSameImage(serial, barrier, "active injector");
}

// ---------------------------------------------------------------------------
// 6. Relaxed scheduler: weaker contract, smoke only.
// ---------------------------------------------------------------------------

TEST(RelaxedSmoke, BudgetIsConservedAndDeliveryHappens)
{
    auto m = buildStudy(4, true, false, SchedulerMode::Relaxed);
    InstCount budget = 80000;
    MachineRunResult r = m->run(budget);

    // The workers never halt, so the whole budget is consumed; the
    // atomic chunk claims must neither lose nor invent instructions.
    EXPECT_EQ(int(r.reason), int(StopReason::InstLimit));
    EXPECT_EQ(r.instsExecuted, budget);
    InstCount total = 0;
    std::uint64_t delivered = 0;
    for (unsigned i = 0; i < 4; i++) {
        total += m->hart(i).instret();
        delivered += m->hart(i).stats().userVectoredExceptions;
    }
    EXPECT_EQ(total, budget);
    EXPECT_GT(delivered, 0u);
}

TEST(RelaxedSmoke, FastInterpreterRunsUnderRelaxed)
{
    auto m = buildStudy(4, true, true, SchedulerMode::Relaxed);
    InstCount budget = 80000;
    MachineRunResult r = m->run(budget);
    EXPECT_EQ(int(r.reason), int(StopReason::InstLimit));
    EXPECT_EQ(r.instsExecuted, budget);
}

TEST(RelaxedSmoke, SingleHartMachineStaysSerial)
{
    // A 1-hart machine under any mode is the old serial machine.
    MachineConfig cfg;
    cfg.scheduler = SchedulerMode::Relaxed;
    Machine m(cfg);
    testutil::BareMachine ref;
    Assembler a(testutil::kTestOrigin);
    a.li(T0, 7);
    a.addiu(T0, T0, 35);
    a.hcall(0);
    Program p = a.finalize();
    m.load(p);
    ref.machine.load(p);
    m.hart(0).setPc(testutil::kTestOrigin);
    ref.cpu().setPc(testutil::kTestOrigin);
    MachineRunResult rm = m.run(1000);
    MachineRunResult rr = ref.machine.run(1000);
    EXPECT_EQ(rm.instsExecuted, rr.instsExecuted);
    EXPECT_EQ(m.hart(0).reg(T0), 42u);
}

// ---------------------------------------------------------------------------
// 7. UEXC_PARALLEL resolution (SchedulerMode::Auto).
// ---------------------------------------------------------------------------

/** Save/restore the env var around a test so running the suite under
 *  UEXC_PARALLEL=1 (as the TSan CI leg does) is not perturbed. */
class EnvOverride : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        const char *prev = std::getenv("UEXC_PARALLEL");
        had_ = prev != nullptr;
        if (had_)
            saved_ = prev;
    }
    void TearDown() override
    {
        if (had_)
            setenv("UEXC_PARALLEL", saved_.c_str(), 1);
        else
            unsetenv("UEXC_PARALLEL");
    }

    SchedulerMode resolvedWith(const char *value)
    {
        if (value)
            setenv("UEXC_PARALLEL", value, 1);
        else
            unsetenv("UEXC_PARALLEL");
        MachineConfig cfg; // scheduler = Auto
        Machine m(cfg);
        return m.schedulerMode();
    }

  private:
    bool had_ = false;
    std::string saved_;
};

TEST_F(EnvOverride, AutoResolvesFromEnvironment)
{
    EXPECT_EQ(resolvedWith(nullptr), SchedulerMode::Serial);
    EXPECT_EQ(resolvedWith("0"), SchedulerMode::Serial);
    EXPECT_EQ(resolvedWith("serial"), SchedulerMode::Serial);
    EXPECT_EQ(resolvedWith("1"), SchedulerMode::Barrier);
    EXPECT_EQ(resolvedWith("barrier"), SchedulerMode::Barrier);
    EXPECT_EQ(resolvedWith("2"), SchedulerMode::Relaxed);
    EXPECT_EQ(resolvedWith("relaxed"), SchedulerMode::Relaxed);
}

TEST_F(EnvOverride, ExplicitModeBeatsEnvironment)
{
    setenv("UEXC_PARALLEL", "2", 1);
    MachineConfig cfg;
    cfg.scheduler = SchedulerMode::Barrier;
    Machine m(cfg);
    EXPECT_EQ(m.schedulerMode(), SchedulerMode::Barrier);
}

} // namespace
} // namespace uexc::sim
