/**
 * @file
 * Tests for the analytical break-even models (Table 5, Figures 3-4)
 * and the Table 1 dispatch-path models.
 */

#include <gtest/gtest.h>

#include "apps/analysis/breakeven.h"
#include "common/logging.h"
#include "os/pathmodel.h"

namespace uexc::apps {
namespace {

TEST(Table5, BreakEvenFormula)
{
    // y* = c*x / (f*t)
    BarrierAppProfile app{"x", 250'000, 2'000};
    EXPECT_DOUBLE_EQ(barrierBreakEvenUs(app, 5.0, 25.0),
                     250'000.0 * 5.0 / (25.0 * 2'000.0));
}

TEST(Table5, PaperConclusionHolds)
{
    // the paper: an 18 us exception+reprotect cost is competitive
    // with 5-cycle software checks for the Hosking & Moss apps
    for (const auto &app : hoskingMossProfiles()) {
        double y = barrierBreakEvenUs(app, 5.0, 25.0);
        EXPECT_GT(y, 18.0) << app.name;
    }
}

TEST(Table5, MoreTrapsLowerBreakEven)
{
    BarrierAppProfile few{"few", 100'000, 500};
    BarrierAppProfile many{"many", 100'000, 5'000};
    EXPECT_GT(barrierBreakEvenUs(few, 5, 25),
              barrierBreakEvenUs(many, 5, 25));
}

TEST(Table5, ZeroTrapsIsFatal)
{
    setLoggingEnabled(false);
    BarrierAppProfile bad{"bad", 1, 0};
    EXPECT_THROW(barrierBreakEvenUs(bad, 5, 25), FatalError);
    setLoggingEnabled(true);
}

TEST(Figure3, BreakEvenUses)
{
    // u* = f*y / c; the paper's worked example: y = 6 us on the fast
    // scheme at 25 MHz -> c*u > 150 cycles
    EXPECT_DOUBLE_EQ(swizzleBreakEvenUses(1.0, 6.0, 25.0), 150.0);
    EXPECT_DOUBLE_EQ(swizzleBreakEvenUses(5.0, 6.0, 25.0), 30.0);
    // with Ultrix-cost exceptions the break-even is far higher
    EXPECT_GT(swizzleBreakEvenUses(5.0, 70.0, 25.0), 300.0);
}

TEST(Figure3, FastExceptionsShiftTheCurveDown)
{
    for (double c = 1; c <= 10; c += 1) {
        double fast = swizzleBreakEvenUses(c, 6.0, 25.0);
        double ultrix = swizzleBreakEvenUses(c, 70.0, 25.0);
        EXPECT_LT(fast, ultrix);
        EXPECT_NEAR(ultrix / fast, 70.0 / 6.0, 1e-9);
    }
}

TEST(Figure4, BreakEvenUsedPointers)
{
    // pu* = (t + pn*s) / (t + s); at pn = 50:
    double t_fast = 6.0, s = 0.8;
    double pu = eagerLazyBreakEvenUsed(t_fast, s, 50);
    EXPECT_NEAR(pu, (6.0 + 50 * 0.8) / (6.0 + 0.8), 1e-12);
    // cheaper exceptions RAISE the eager/lazy break-even: lazy pays
    // one exception per used pointer, so cheap exceptions favor lazy
    double pu_ultrix = eagerLazyBreakEvenUsed(70.0, s, 50);
    EXPECT_GT(pu, pu_ultrix);
}

TEST(Figure4, DegenerateCases)
{
    // free swizzling: eager always wins beyond one used pointer
    EXPECT_NEAR(eagerLazyBreakEvenUsed(10.0, 0.0, 50), 1.0, 1e-12);
    setLoggingEnabled(false);
    EXPECT_THROW(eagerLazyBreakEvenUsed(0.0, 0.0, 50), FatalError);
    setLoggingEnabled(true);
}

TEST(Table1, ModelsAnchorToThePaperText)
{
    auto models = os::table1Models(38.0, 32.0, 46.0);
    ASSERT_EQ(models.size(), 6u);

    // Ultrix is the measured column
    EXPECT_TRUE(models[0].measured);
    EXPECT_NEAR(models[0].roundTripUs(), 70.0, 1e-9);
    EXPECT_NEAR(models[0].writeProtUs, 46.0, 1e-9);

    // the paper's stated anchors
    EXPECT_NEAR(models[1].roundTripUs(), 2000.0, 50.0);  // Mach/UX
    EXPECT_NEAR(models[2].roundTripUs(), 256.0, 10.0);   // raw Mach
    EXPECT_NEAR(models[3].roundTripUs(), 69.0, 2.0);     // SunOS

    // structural ordering: micro-kernel double hop >> raw Mach >>
    // monolithic paths
    EXPECT_GT(models[1].roundTripUs(), 5 * models[2].roundTripUs());
    EXPECT_GT(models[2].roundTripUs(), 2 * models[3].roundTripUs());
    for (const auto &m : models) {
        EXPECT_FALSE(m.phases.empty());
        EXPECT_GT(m.writeProtUs, 0.0);
    }
}

} // namespace
} // namespace uexc::apps
