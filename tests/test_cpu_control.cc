/**
 * @file
 * CPU tests: branches, jumps, and branch-delay-slot semantics.
 */

#include <gtest/gtest.h>

#include "sim_test_util.h"

namespace uexc::sim {
namespace {

using testutil::BareMachine;

TEST(CpuControl, TakenBranchExecutesDelaySlot)
{
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        as.li(V0, 0);
        as.beq(Zero, Zero, "target");
        as.addiu(V0, V0, 1);   // delay slot: executes
        as.addiu(V0, V0, 100); // skipped
        as.label("target");
        as.addiu(V0, V0, 10);
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(V0), 11u);
}

TEST(CpuControl, NotTakenBranchExecutesDelaySlotAndFallsThrough)
{
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        as.li(V0, 0);
        as.li(T0, 1);
        as.beq(T0, Zero, "target");
        as.addiu(V0, V0, 1);   // delay slot
        as.addiu(V0, V0, 100); // falls through
        as.label("target");
        as.addiu(V0, V0, 10);
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(V0), 111u);
}

TEST(CpuControl, BackwardLoop)
{
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        as.li(T0, 5);
        as.li(V0, 0);
        as.label("loop");
        as.addiu(V0, V0, 2);
        as.addiu(T0, T0, -1);
        as.bne(T0, Zero, "loop");
        as.nop();
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(V0), 10u);
}

TEST(CpuControl, ConditionalVariants)
{
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        as.li(V0, 0);
        as.li(T0, -1);

        as.bltz(T0, "l1");
        as.nop();
        as.addiu(V0, V0, 1);  // skipped
        as.label("l1");

        as.bgez(T0, "l2");    // not taken (-1 < 0)
        as.nop();
        as.addiu(V0, V0, 2);  // executed
        as.label("l2");

        as.blez(Zero, "l3");  // taken (0 <= 0)
        as.nop();
        as.addiu(V0, V0, 4);  // skipped
        as.label("l3");

        as.bgtz(Zero, "l4");  // not taken
        as.nop();
        as.addiu(V0, V0, 8);  // executed
        as.label("l4");
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(V0), 10u);
}

TEST(CpuControl, JalSetsRaPastDelaySlot)
{
    BareMachine m;
    Program p = m.loadAsm([&](Assembler &as) {
        as.label("start");
        as.jal("func");
        as.li(A0, 55);        // delay slot
        as.label("after");
        as.hcall(0);
        as.label("func");
        as.move(V0, A0);
        as.jr(RA);
        as.nop();
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(V0), 55u);
    EXPECT_EQ(m.cpu().reg(RA), p.symbol("after"));
}

TEST(CpuControl, JalrLinksThroughChosenRegister)
{
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        as.la(T9, "func");
        as.jalr(T8, T9);
        as.nop();
        as.hcall(0);
        as.label("func");
        as.li(V0, 7);
        as.jr(T8);
        as.nop();
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(V0), 7u);
}

TEST(CpuControl, BltzalBgezalLink)
{
    BareMachine m;
    Program p = m.loadAsm([&](Assembler &as) {
        as.li(T0, -5);
        as.bltzal(T0, "sub");
        as.nop();
        as.label("ret_here");
        as.hcall(0);
        as.label("sub");
        as.li(V0, 1);
        as.jr(RA);
        as.nop();
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(V0), 1u);
    EXPECT_EQ(m.cpu().reg(RA), p.symbol("ret_here"));
}

TEST(CpuControl, BranchInDelaySlotTargetAppliesAfterSlot)
{
    // j target; delay slot increments -- classic pattern
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        as.li(V0, 0);
        as.j("out");
        as.addiu(V0, V0, 1);
        as.addiu(V0, V0, 100);  // never executed
        as.label("out");
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(V0), 1u);
}

TEST(CpuControl, BranchToPcPlus8BehavesLikeFallThrough)
{
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        as.li(V0, 0);
        as.beq(Zero, Zero, "next");  // target is pc+8
        as.addiu(V0, V0, 1);         // delay slot
        as.label("next");
        as.addiu(V0, V0, 2);
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(V0), 3u);
}

TEST(CpuControl, BranchStatsCounted)
{
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        as.li(T0, 3);
        as.label("loop");
        as.addiu(T0, T0, -1);
        as.bne(T0, Zero, "loop");
        as.nop();
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().stats().branches, 3u);
}

TEST(CpuControl, RunStopsAtBreakpoint)
{
    BareMachine m;
    Program p = m.loadAsm([&](Assembler &as) {
        as.li(V0, 1);
        as.label("bp");
        as.li(V0, 2);
        as.hcall(0);
    });
    m.cpu().addBreakpoint(p.symbol("bp"));
    RunResult r = m.cpu().run(1000);
    EXPECT_EQ(r.reason, StopReason::Breakpoint);
    EXPECT_EQ(m.cpu().reg(V0), 1u);
    EXPECT_EQ(m.cpu().pc(), p.symbol("bp"));
    // continuing past the breakpoint works (first-step exemption)
    r = m.cpu().run(1000);
    EXPECT_EQ(r.reason, StopReason::Halted);
    EXPECT_EQ(m.cpu().reg(V0), 2u);
}

TEST(CpuControl, RunHonorsInstLimit)
{
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        as.label("spin");
        as.j("spin");
        as.nop();
    });
    RunResult r = m.cpu().run(100);
    EXPECT_EQ(r.reason, StopReason::InstLimit);
    EXPECT_EQ(r.instsExecuted, 100u);
}

} // namespace
} // namespace uexc::sim
