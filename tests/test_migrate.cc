/**
 * @file
 * Live-migration coverage, transport-up:
 *
 *  - the chunked seeded-lossy transfer: lossless identity, lossy
 *    convergence, the capped doubling retransmit timeout, typed
 *    partition errors with a resumable delivered-chunk set, and a
 *    100-seed in-flight bit-flip sweep proving a torn image is never
 *    accepted;
 *  - hostile restore targets: hart-count mismatch refused with a
 *    typed error (source untouched), scheduler mode proven to be
 *    host policy (cross-scheduler migration restores bit-identically),
 *    truncated images rejected before any restore;
 *  - the hard bit-identity oracle: a 200-seed sharded sweep over the
 *    lockstep fuzz corpus where a machine is migrated over a lossy
 *    link at a random cut and must finish byte-identical to the
 *    never-migrated reference — across both interpreters, 1 and 4
 *    harts, and live fault injectors whose pending events straddle
 *    the migration;
 *  - migration while a COP3 user-vectored handler is live on a
 *    multihart guest (cuts land inside the handler body);
 *  - chaos-rig migrations mid-campaign, including graceful
 *    degradation when the transfer partitions;
 *  - iterative pre-copy: the dirty-heavy downtime win over
 *    stop-and-copy, the give-up-after-maxRounds path, partitions
 *    leaving the source running, and (inside the 200-seed oracle)
 *    bit-identity for every third seed migrated live;
 *  - TransferSession::reconfigure() mid-session: a resumed session
 *    bit-matches an uninterrupted reference, weather changes between
 *    partitions heal the link, and a tightened retry budget applies
 *    to the chunks still in flight;
 *  - per-chunk failure diagnostics (chunk index, retries, charged
 *    timeout) surfaced through MigrationResult;
 *  - migration and host-crash as first-class chaos-campaign ops:
 *    deterministic seeded plans, clean migrations invisible to the
 *    campaign oracle, endpoint crashes diagnosed deterministically,
 *    and shrinkCampaign reducing a migration-triggered failure to a
 *    replayable <= 12-op repro window that round-trips through a
 *    repro file;
 *  - the fleet soak harness: healthy deterministic soaks, the
 *    all-partitions drill where every migration fails and every guest
 *    still converges, and the supervised self-healing soaks — a
 *    200-seed sharded sweep under injected host crashes, wedges,
 *    guest crashes, torn checkpoints, and mid-transfer source
 *    crashes, where every non-quarantined guest must converge
 *    bit-identically to its unfailed reference.
 */

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/fleet/fleet.h"
#include "common/guesterror.h"
#include "core/migrate.h"
#include "core/multihart.h"
#include "fuzz_util.h"
#include "os/layout.h"
#include "sim/faultinject.h"
#include "sim/snapshot.h"
#include "sim_test_util.h"

namespace uexc::sim {
namespace {

namespace migrate = rt::migrate;
namespace chaos = rt::chaos;
using migrate::MigrateError;
using migrate::MigrateErrorKind;
using migrate::TransportConfig;

/** A real mid-run machine image to push through the transport. */
std::vector<Byte>
sampleImage(unsigned seed = 11)
{
    MachineConfig cfg;
    cfg.memBytes = 1 << 18;
    Machine m(cfg);
    fuzzutil::installFuzzSkipHandlers(m);
    m.load(fuzzutil::buildFuzzProgram(seed));
    m.hart(0).setPc(testutil::kTestOrigin);
    m.run(1500);
    return m.checkpoint();
}

TransportConfig
lossyTransport(std::uint64_t seed)
{
    TransportConfig t;
    t.seed = seed;
    t.chunkBytes = 1024; // many chunks, so the weather gets chances
    t.lossPercent = 20;
    t.corruptPercent = 15;
    t.dupPercent = 10;
    t.delayPercent = 20;
    return t;
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

TEST(MigrateTransport, LosslessTransferIsIdentity)
{
    std::vector<Byte> image = sampleImage();
    migrate::TransportStats stats;
    TransportConfig clean;
    std::vector<Byte> out = migrate::transferImage(image, clean,
                                                   &stats);
    EXPECT_EQ(out, image);
    EXPECT_EQ(stats.chunksDelivered, stats.chunksTotal);
    EXPECT_EQ(stats.retries, 0u);
    EXPECT_EQ(stats.corruptDropped, 0u);
    EXPECT_EQ(stats.framesSent, stats.chunksTotal);
    // every chunk landed on its first attempt
    EXPECT_EQ(stats.retryHistogram[0], stats.chunksTotal);
}

TEST(MigrateTransport, LossyTransferConvergesBitIdentically)
{
    std::vector<Byte> image = sampleImage();
    TransportConfig t = lossyTransport(99);
    t.chunkBytes = 256; // plenty of chunks for every weather kind
    t.dupPercent = 30;
    migrate::TransportStats stats;
    std::vector<Byte> out = migrate::transferImage(image, t, &stats);
    EXPECT_EQ(out, image);
    // the weather actually happened
    EXPECT_GT(stats.retries, 0u);
    EXPECT_GT(stats.lostInFlight, 0u);
    EXPECT_GT(stats.corruptDropped, 0u);
    EXPECT_GT(stats.duplicatesSuppressed, 0u);
    EXPECT_GT(stats.framesSent, stats.chunksTotal);
    EXPECT_LE(stats.maxTimeoutCharged, t.timeoutCapCycles);
    std::uint64_t histogram_total = 0;
    for (std::uint64_t b : stats.retryHistogram)
        histogram_total += b;
    EXPECT_EQ(histogram_total, stats.chunksDelivered);
}

TEST(MigrateTransport, SameSeedIsDeterministic)
{
    std::vector<Byte> image = sampleImage();
    migrate::TransportStats a, b, c;
    migrate::transferImage(image, lossyTransport(5), &a);
    migrate::transferImage(image, lossyTransport(5), &b);
    EXPECT_EQ(a.framesSent, b.framesSent);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.cyclesCharged, b.cyclesCharged);
    migrate::transferImage(image, lossyTransport(6), &c);
    EXPECT_TRUE(a.framesSent != c.framesSent ||
                a.cyclesCharged != c.cyclesCharged)
        << "different seeds produced identical weather";
}

TEST(MigrateTransport, RetryTimeoutIsCapped)
{
    std::vector<Byte> image = sampleImage();
    TransportConfig t = lossyTransport(3);
    t.lossPercent = 60;
    t.corruptPercent = 0;
    t.maxRetries = 40;
    t.timeoutCapCycles = 2 * t.timeoutCycles; // tight cap
    migrate::TransportStats stats;
    std::vector<Byte> out = migrate::transferImage(image, t, &stats);
    EXPECT_EQ(out, image);
    EXPECT_GT(stats.timeouts, 0u);
    EXPECT_EQ(stats.maxTimeoutCharged, t.timeoutCapCycles);
}

TEST(MigrateTransport, PartitionIsTypedAndTheSessionResumes)
{
    std::vector<Byte> image = sampleImage();
    TransportConfig t;
    t.seed = 17;
    t.chunkBytes = 1024;
    t.lossPercent = 100;
    t.maxRetries = 3;
    migrate::TransferSession session(image, t);
    try {
        session.run();
        FAIL() << "a fully partitioned transfer completed";
    } catch (const MigrateError &e) {
        EXPECT_EQ(e.kind(), MigrateErrorKind::Partition);
        EXPECT_EQ(e.chunk(), 0u);
        EXPECT_NE(std::string(e.what()).find("partition"),
                  std::string::npos);
    }
    EXPECT_FALSE(session.complete());

    // a partial image is never observable as success
    try {
        session.receivedImage();
        FAIL() << "incomplete image reassembled";
    } catch (const MigrateError &e) {
        EXPECT_EQ(e.kind(), MigrateErrorKind::ImageRejected);
    }

    // the network heals: only the missing chunks move, and the
    // reassembled image is byte-identical
    TransportConfig healed = t;
    healed.lossPercent = 5;
    session.reconfigure(healed);
    session.run();
    EXPECT_TRUE(session.complete());
    EXPECT_EQ(session.receivedImage(), image);
}

TEST(MigrateTransport, ResumeRetransmitsOnlyMissingChunks)
{
    std::vector<Byte> image = sampleImage();
    TransportConfig flaky;
    flaky.seed = 23;
    flaky.chunkBytes = 512;
    flaky.lossPercent = 35;
    flaky.maxRetries = 1; // partitions quickly, mid-image
    migrate::TransferSession session(image, flaky);
    unsigned interruptions = 0;
    for (; interruptions < 10000 && !session.complete();
         interruptions++) {
        try {
            session.run();
        } catch (const MigrateError &e) {
            ASSERT_EQ(e.kind(), MigrateErrorKind::Partition);
            // delivered chunks survive the interruption
        }
    }
    ASSERT_TRUE(session.complete());
    EXPECT_GT(interruptions, 1u) << "test never exercised a resume";
    EXPECT_EQ(session.receivedImage(), image);
    EXPECT_EQ(session.stats().chunksDelivered,
              session.stats().chunksTotal);
}

TEST(MigrateTransport, HundredSeedBitFlipSweepNeverAcceptsATornImage)
{
    // 100 seeds of in-flight single-bit corruption (plus loss): every
    // transfer either converges to the exact source bytes or fails
    // with a typed error. A delivered-but-wrong image must never
    // escape the per-chunk CRC + whole-image validation.
    std::vector<Byte> image = sampleImage();
    std::uint64_t corrupt_total = 0;
    unsigned converged = 0;
    for (unsigned seed = 0; seed < 100; seed++) {
        SCOPED_TRACE(::testing::Message() << "bit-flip seed " << seed);
        TransportConfig t;
        t.seed = 0xb17f11b0ull + seed;
        t.chunkBytes = 2048;
        t.corruptPercent = 35;
        t.lossPercent = 10;
        migrate::TransportStats stats;
        try {
            std::vector<Byte> out =
                migrate::transferImage(image, t, &stats);
            ASSERT_EQ(out, image);
            converged++;
        } catch (const MigrateError &e) {
            EXPECT_EQ(e.kind(), MigrateErrorKind::Partition);
        }
        corrupt_total += stats.corruptDropped;
    }
    EXPECT_GT(converged, 90u); // retries absorb almost all weather
    EXPECT_GT(corrupt_total, 100u); // the sweep really flipped bits
}

TEST(MigrateTransport, EmptyAndTinyImagesTransfer)
{
    for (std::size_t n : {std::size_t(0), std::size_t(1),
                          std::size_t(4095), std::size_t(4096),
                          std::size_t(4097)}) {
        std::vector<Byte> blob(n, Byte(0x5a));
        TransportConfig t = lossyTransport(n + 1);
        migrate::TransferSession session(blob, t);
        session.run();
        EXPECT_TRUE(session.complete());
        // raw blobs are not snapshot images; bypass validation by
        // checking the stats grid instead
        EXPECT_EQ(session.stats().chunksDelivered,
                  session.stats().chunksTotal);
        EXPECT_EQ(session.stats().chunksTotal,
                  std::max<std::uint64_t>(
                      1, (n + t.chunkBytes - 1) / t.chunkBytes));
    }
}

// ---------------------------------------------------------------------------
// Hostile restore targets
// ---------------------------------------------------------------------------

TEST(MigrateHostile, TruncatedImageIsRejectedBeforeRestore)
{
    std::vector<Byte> image = sampleImage();
    image.resize(image.size() - 37); // torn mid-section
    bool restore_ran = false;
    migrate::MigrationResult result = migrate::migrateImage(
        image,
        [&restore_ran](const std::vector<Byte> &) {
            restore_ran = true;
        },
        {});
    EXPECT_FALSE(result.succeeded);
    EXPECT_EQ(result.errorKind, MigrateErrorKind::ImageRejected);
    EXPECT_FALSE(restore_ran) << "a torn image reached the restore";
}

TEST(MigrateHostile, HartCountMismatchIsRefusedAndSourceKeepsRunning)
{
    MachineConfig cfg;
    cfg.memBytes = 1 << 18;
    cfg.harts = 4;
    cfg.quantum = 512;
    Machine src(cfg);
    fuzzutil::installFuzzSkipHandlers(src);
    Program prog = fuzzutil::buildFuzzProgram(21);
    src.load(prog);
    for (unsigned h = 0; h < 4; h++)
        src.hart(h).setPc(testutil::kTestOrigin);
    src.run(1000);

    MachineConfig narrow = cfg;
    narrow.harts = 1;
    Machine dst(narrow);
    migrate::MigrationResult result =
        migrate::migrateMachine(src, dst, {});
    EXPECT_FALSE(result.succeeded);
    EXPECT_EQ(result.errorKind, MigrateErrorKind::RestoreRefused);

    // graceful degradation: the source was never stopped or mutated
    std::vector<Byte> before = src.checkpoint();
    EXPECT_NO_THROW(src.run(500));
    EXPECT_NE(src.checkpoint(), before) << "source stopped running";
}

TEST(MigrateHostile, SchedulerModeIsHostPolicyNotGuestState)
{
    // The scheduler is deliberately excluded from the checkpoint
    // config echo: Barrier is bit-identical to Serial, so migrating
    // between hosts with different scheduling policies is supported
    // and must be state-preserving (this is a design guarantee, not
    // a rejection case — asserted here so a future config-echo change
    // that breaks cross-scheduler migration fails loudly).
    MachineConfig cfg;
    cfg.memBytes = 1 << 18;
    cfg.harts = 4;
    cfg.quantum = 512;
    cfg.scheduler = SchedulerMode::Serial;
    Machine src(cfg);
    fuzzutil::installFuzzSkipHandlers(src);
    src.load(fuzzutil::buildFuzzProgram(33));
    for (unsigned h = 0; h < 4; h++)
        src.hart(h).setPc(testutil::kTestOrigin);
    src.run(1200);

    MachineConfig barrier = cfg;
    barrier.scheduler = SchedulerMode::Barrier;
    Machine dst(barrier);
    migrate::MigrationConfig mc;
    mc.transport = lossyTransport(77);
    migrate::MigrationResult result =
        migrate::migrateMachine(src, dst, mc);
    ASSERT_TRUE(result.succeeded) << result.error;
    EXPECT_GT(result.downtimeCycles, 0u);

    src.run(1800);
    dst.run(1800);
    EXPECT_EQ(src.checkpoint(), dst.checkpoint())
        << "cross-scheduler migration perturbed guest state";
}

// ---------------------------------------------------------------------------
// The bit-identity oracle: 200 seeds, both interpreters, 1 and 4
// harts, live injectors, lossy transport
// ---------------------------------------------------------------------------

constexpr unsigned kMigrateFuzzShards = 8;
constexpr unsigned kMigrateSeedsPerShard = 25; // 200-seed corpus

/**
 * One oracle run: twin machines T (reference, never migrated) and U.
 * Both run the same corpus program to a random cut; U is then
 * migrated over a seeded lossy link into a freshly built twin V, and
 * T and V run to the end. Their final serialized states must be
 * byte-identical — the migrated run converges to exactly the state
 * the unmigrated one reaches. Configuration rotates with the seed
 * exactly like the snapshot round-trip corpus, including fault
 * injectors with events pending across the cut (the resume-window
 * hazard: an event planned to fire just after the cut must defer and
 * fire identically on the migrated guest).
 *
 * The migration mode also rotates: every third seed migrates with
 * iterative pre-copy (the guest keeps running while dirty pages
 * ship; the reference mirrors the same host run() slices), the rest
 * with single-shot stop-and-copy — so the 200-seed corpus holds the
 * bit-identity bar for both modes.
 */
void
runMigrationOracleSeed(unsigned seed)
{
    SCOPED_TRACE(::testing::Message() << "migrate fuzz seed " << seed);

    const bool fast = seed % 2 != 0;
    const unsigned harts = seed % 4 == 3 ? 4 : 1;
    const bool injected = seed % 5 == 0;
    const bool precopy = seed % 3 == 2;

    MachineConfig cfg;
    cfg.memBytes = 1 << 18;
    cfg.harts = harts;
    cfg.quantum = 512;
    cfg.cpu.fastInterpreter = fast;

    FaultInjector inj_t, inj_u, inj_v;
    MachineConfig cfg_t = cfg, cfg_u = cfg, cfg_v = cfg;
    if (injected) {
        cfg_t.cpu.faultInjector = &inj_t;
        cfg_u.cpu.faultInjector = &inj_u;
        cfg_v.cpu.faultInjector = &inj_v;
    }

    Machine t(cfg_t), u(cfg_u), v(cfg_v);
    Program prog = fuzzutil::buildFuzzProgram(seed);
    for (Machine *m : {&t, &u, &v}) {
        fuzzutil::installFuzzSkipHandlers(*m);
        m->load(prog);
        for (unsigned h = 0; h < harts; h++)
            m->hart(h).setPc(testutil::kTestOrigin);
    }
    auto attach = [](Machine &m, FaultInjector &inj) {
        m.registerSnapshotSection(
            snapshotTag('F', 'I', 'N', 'J'),
            [&inj](SnapshotWriter &w) { inj.snapshotSave(w); },
            [&inj](SnapshotReader &r) { inj.snapshotLoad(r); });
    };
    if (injected) {
        attach(t, inj_t);
        attach(u, inj_u);
        attach(v, inj_v);
    }

    std::mt19937 rng(seed * 2654435761u + 23);
    const InstCount cut = 200 + rng() % 3000;
    if (injected) {
        // identical plans on reference and source; one event lands
        // BEFORE the cut, one lands in the first instructions AFTER
        // resume on the destination (the migration resume window)
        Addr buf_pa = Machine::unmappedToPhys(t.symbol("buf"));
        FaultEvent flip{FaultKind::MemBitFlip, 0, cut / 2,
                        buf_pa + 4 * Addr(rng() % 32),
                        unsigned(rng() % 32), 0};
        FaultEvent miss{FaultKind::TlbSpuriousMiss, harts - 1,
                        cut + 5 + seed % 40, 0, 0,
                        unsigned(rng() % 64)};
        for (FaultInjector *inj : {&inj_t, &inj_u}) {
            inj->addEvent(flip);
            inj->addEvent(miss);
        }
    }

    const InstCount total = fuzzutil::kFuzzInstLimit;
    t.run(cut);
    u.run(cut);

    migrate::MigrationConfig mc;
    mc.transport = lossyTransport(0xfee7 + seed);
    mc.transport.chunkBytes = 4096;
    migrate::MigrationResult result;
    InstCount sliced = 0;
    if (precopy) {
        migrate::PreCopyConfig pc;
        pc.maxRounds = 3;
        pc.convergePages = 4;
        constexpr InstCount kSlice = 100;
        result = migrate::migrateMachinePreCopy(
            u, v, mc, pc, [&u, &sliced]() {
                u.run(kSlice);
                sliced += kSlice;
            });
        ASSERT_TRUE(result.succeeded) << result.error;
        EXPECT_TRUE(result.usedPreCopy);
        // the reference mirrors the source's host run() calls
        // exactly: the round-robin schedule position at an InstLimit
        // boundary is host policy, so the budget split must match
        for (InstCount s = 0; s < sliced; s += kSlice)
            t.run(kSlice);
    } else {
        result = migrate::migrateMachine(u, v, mc);
        ASSERT_TRUE(result.succeeded) << result.error;
    }
    if (injected && !precopy) {
        // the pending post-cut event travelled inside the image
        // (under pre-copy it may legitimately fire on the source
        // during a slice — bit-identity still holds, because the
        // reference mirrors the same slices)
        EXPECT_GT(inj_v.pendingCount(), 0u)
            << "pending injection lost in migration";
    }

    t.run(total - cut - sliced);
    v.run(total - cut - sliced);

    std::vector<Byte> end_t = t.checkpoint();
    std::vector<Byte> end_v = v.checkpoint();
    EXPECT_EQ(end_t, end_v) << "migrated twin diverged";
    if (end_t != end_v) {
        // name the diverging sections and offsets for triage
        SnapshotImage a(end_t), b(end_v);
        for (const SnapshotSectionDiff &d : diffSnapshotImages(a, b))
            ADD_FAILURE() << snapshotDiffLine(d);
        if (harts == 1)
            fuzzutil::expectLockstepState(t, v);
    }
}

class MigrateFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(MigrateFuzz, MigratedRunIsBitIdenticalToUnmigratedReference)
{
    const unsigned base = GetParam() * kMigrateSeedsPerShard;
    for (unsigned s = 0; s < kMigrateSeedsPerShard; s++) {
        runMigrationOracleSeed(base + s);
        if (::testing::Test::HasNonfatalFailure())
            break;
    }
}

INSTANTIATE_TEST_SUITE_P(Shards, MigrateFuzz,
                         ::testing::Range(0u, kMigrateFuzzShards));

// ---------------------------------------------------------------------------
// Migration while a user-vectored handler is live
// ---------------------------------------------------------------------------

/** The multihart COP3 user-vectored guest (mirrors test_multihart's
 *  rig) — exceptions vector directly to user code, so a migration cut
 *  can land with a hart mid-handler. */
struct UvGuest
{
    explicit UvGuest(unsigned n)
    {
        MachineConfig cfg;
        cfg.harts = n;
        cfg.quantum = 100;
        cfg.cpu.userVectorHw = true;
        m = std::make_unique<Machine>(cfg);
        m->load(rt::multihart::buildKernelImage(n));
        worker = rt::multihart::buildWorkerProgram(n);
        constexpr Addr kWorkerPhys = 0x00210000;
        constexpr unsigned kAsid = 1;
        m->mem().writeBlock(kWorkerPhys, worker.words.data(),
                            4 * worker.words.size());
        for (unsigned i = 0; i < n; i++) {
            Hart &h = m->hart(i);
            h.tlb().setEntry(0,
                             (os::kUserTextBase & entryhi::VpnMask) |
                                 (kAsid << entryhi::AsidShift),
                             (kWorkerPhys & entrylo::PfnMask) |
                                 entrylo::V);
            h.cp0().setStatusReg(h.cp0().statusReg() | status::KUc |
                                 status::UV);
            h.cp0().setUxReg(UxReg::Target,
                             worker.symbol("mh_uv_handler"));
            h.cp0().write(cp0reg::EntryHi,
                          kAsid << entryhi::AsidShift);
            h.setPc(worker.symbol("mh_hart" + std::to_string(i) +
                                  "_entry"));
        }
    }

    std::unique_ptr<Machine> m;
    Program worker;
};

TEST(MigrateUserVectored, CutsInsideALiveHandlerMigrateBitIdentically)
{
    constexpr unsigned kHarts = 2;
    constexpr InstCount kTotal = 4000;

    unsigned in_handler_cuts = 0;

    for (InstCount cut = 250; cut < kTotal; cut += 250) {
        SCOPED_TRACE(::testing::Message() << "cut at " << cut);
        // The never-migrated reference makes the *same* host run()
        // calls as the migrated guest: the round-robin schedule
        // position at an InstLimit boundary depends on the budget
        // split, which is host policy, not guest state.
        UvGuest ref(kHarts), src(kHarts), dst(kHarts);
        Addr handler = ref.worker.symbol("mh_uv_handler");
        ref.m->run(cut);
        ref.m->run(kTotal - cut);

        src.m->run(cut);
        for (unsigned h = 0; h < kHarts; h++) {
            Addr pc = src.m->hart(h).pc();
            // generous bound: the worker handler body is tiny
            if (pc >= handler && pc < handler + 256)
                in_handler_cuts++;
        }
        migrate::MigrationConfig mc;
        mc.transport = lossyTransport(0xc0b3 + unsigned(cut));
        migrate::MigrationResult result =
            migrate::migrateMachine(*src.m, *dst.m, mc);
        ASSERT_TRUE(result.succeeded) << result.error;
        dst.m->run(kTotal - cut);
        EXPECT_EQ(dst.m->checkpoint(), ref.m->checkpoint())
            << "migration at cut " << cut << " diverged";
    }
    // the exception rate is high enough that the sweep must have
    // caught harts mid-handler; otherwise the test proves nothing
    EXPECT_GT(in_handler_cuts, 0u)
        << "no cut landed inside the user-vectored handler";
}

// ---------------------------------------------------------------------------
// Chaos-rig migrations mid-campaign
// ---------------------------------------------------------------------------

TEST(MigrateRig, MidCampaignMigrationConvergesToUnmigratedReference)
{
    for (std::uint64_t seed : {3ull, 9ull, 14ull, 27ull}) {
        SCOPED_TRACE(::testing::Message() << "campaign seed " << seed);
        chaos::Reference ref = chaos::makeReference();

        // unmigrated reference run of the same seeded campaign
        FaultInjector inj_a;
        chaos::Rig a(&inj_a);
        bool may_a = false;
        for (const FaultEvent &e :
             chaos::planEvents(seed, ref.window, a, &may_a))
            inj_a.addEvent(e);

        // source, identically seeded
        FaultInjector inj_b;
        chaos::Rig b(&inj_b);
        bool may_b = false;
        for (const FaultEvent &e :
             chaos::planEvents(seed, ref.window, b, &may_b))
            inj_b.addEvent(e);

        std::mt19937 rng(unsigned(seed) * 40503u + 3);
        unsigned cut = 10 + rng() % (chaos::kChaosOps - 10);
        auto runToEnd = [](chaos::Rig &rig) -> bool {
            try {
                rig.run();
                return true;
            } catch (const GuestError &) {
                return false; // diagnosed (legal when planned)
            }
        };

        bool a_threw_early = false;
        try {
            a.runTo(cut);
            b.runTo(cut);
        } catch (const GuestError &) {
            a_threw_early = true; // both rigs behave identically
        }
        if (a_threw_early)
            continue;

        FaultInjector inj_c;
        chaos::Rig c(&inj_c);
        migrate::MigrationConfig mc;
        mc.transport = lossyTransport(seed * 31 + 7);
        migrate::MigrationResult result =
            migrate::migrateRig(b, c, mc);
        ASSERT_TRUE(result.succeeded) << result.error;
        EXPECT_EQ(c.cursor(), cut);

        bool a_done = runToEnd(a);
        bool c_done = runToEnd(c);
        ASSERT_EQ(a_done, c_done)
            << "migrated campaign classified differently";
        if (a_done) {
            EXPECT_EQ(c.words(), a.words());
            EXPECT_EQ(c.checkpoint(), a.checkpoint())
                << "migrated rig state diverged";
        }
    }
}

TEST(MigrateRig, PartitionedMigrationLeavesTheSourceCampaignRunning)
{
    chaos::Reference ref = chaos::makeReference();
    FaultInjector inj_src, inj_dst;
    chaos::Rig src(&inj_src);
    src.runTo(chaos::kChaosOps / 2);

    chaos::Rig dst(&inj_dst);
    migrate::MigrationConfig mc;
    mc.transport.lossPercent = 100;
    mc.transport.maxRetries = 3;
    migrate::MigrationResult result =
        migrate::migrateRig(src, dst, mc);
    EXPECT_FALSE(result.succeeded);
    EXPECT_EQ(result.errorKind, MigrateErrorKind::Partition);
    EXPECT_GT(result.transport.retries, 0u);

    // graceful degradation: the source finishes and converges
    src.run();
    EXPECT_EQ(src.words(), ref.words);
}

// ---------------------------------------------------------------------------
// Fleet soaks
// ---------------------------------------------------------------------------

apps::fleet::FleetConfig
smallFleet(std::uint64_t seed)
{
    apps::fleet::FleetConfig cfg;
    cfg.seed = seed;
    cfg.hosts = 3;
    cfg.guests = 5;
    cfg.dsmGuests = 1;
    cfg.targetMigrations = 8;
    cfg.opsPerTick = 8;
    cfg.cooldownTicks = 2;
    return cfg;
}

TEST(FleetSoak, SmallSoakIsHealthy)
{
    apps::fleet::Fleet fleet(smallFleet(101));
    const apps::fleet::FleetStats &s = fleet.run();
    EXPECT_EQ(s.hostFailures, 0u);
    EXPECT_TRUE(s.failureNotes.empty());
    EXPECT_EQ(s.migrationsAttempted, 8u);
    EXPECT_GT(s.migrationsSucceeded, 0u);
    // every failure is diagnosed into exactly one taxonomy bucket
    EXPECT_EQ(s.migrationsFailed(),
              s.migrationsAttempted - s.migrationsSucceeded);
    // the deliberate-partition drill ran and was absorbed
    EXPECT_GT(s.partitionsInjected, 0u);
    EXPECT_GE(s.migrationsFailedByKind[0], s.partitionsInjected);
    EXPECT_GT(s.campaignsConverged, 0u);
    EXPECT_GT(s.dsmReadsVerified, 0u);
    EXPECT_EQ(s.downtimeCycles.size(), s.migrationsSucceeded);
    EXPECT_GE(s.downtimeP99(), s.downtimeP50());
}

TEST(FleetSoak, SameSeedYieldsAnIdenticalLedger)
{
    apps::fleet::Fleet a(smallFleet(77)), b(smallFleet(77));
    const apps::fleet::FleetStats &sa = a.run();
    const apps::fleet::FleetStats &sb = b.run();
    EXPECT_EQ(sa.chaosOpsRun, sb.chaosOpsRun);
    EXPECT_EQ(sa.dsmOpsRun, sb.dsmOpsRun);
    EXPECT_EQ(sa.campaignsConverged, sb.campaignsConverged);
    EXPECT_EQ(sa.campaignsDiagnosed, sb.campaignsDiagnosed);
    EXPECT_EQ(sa.migrationsSucceeded, sb.migrationsSucceeded);
    EXPECT_EQ(sa.migrationsFailedByKind, sb.migrationsFailedByKind);
    EXPECT_EQ(sa.downtimeCycles, sb.downtimeCycles);
    EXPECT_EQ(sa.framesSent, sb.framesSent);
    EXPECT_EQ(sa.perHostArrivals, sb.perHostArrivals);
    EXPECT_EQ(sa.hostFailures, sb.hostFailures);
}

TEST(FleetSoak, AllPartitionsDrillDegradesGracefullyEverywhere)
{
    apps::fleet::FleetConfig cfg = smallFleet(55);
    cfg.partitionEvery = 1; // every migration hits a dead link
    apps::fleet::Fleet fleet(cfg);
    const apps::fleet::FleetStats &s = fleet.run();
    EXPECT_EQ(s.migrationsSucceeded, 0u);
    EXPECT_EQ(s.migrationsFailedByKind[0], s.migrationsAttempted);
    EXPECT_EQ(s.partitionsInjected, s.migrationsAttempted);
    // and yet: zero host failures — every guest kept running on its
    // source and converged
    EXPECT_EQ(s.hostFailures, 0u);
    EXPECT_GT(s.campaignsConverged, 0u);
}

// ---------------------------------------------------------------------------
// Iterative pre-copy
// ---------------------------------------------------------------------------

TEST(MigratePreCopy, DirtyGuestPreCopyShrinksTheDowntimeWindow)
{
    // Same guest state, same weather seed, both modes: pre-copy must
    // pause the guest for strictly less than the full-image window,
    // paying for it in total bytes (every round re-ships dirty pages).
    migrate::MigrationConfig mc;
    mc.transport.seed = 0xD1517;
    mc.transport.lossPercent = 4;
    mc.transport.corruptPercent = 2;
    mc.transport.delayPercent = 8;

    chaos::Rig src_stop;
    src_stop.runTo(chaos::kChaosOps / 2);
    chaos::Rig dst_stop;
    migrate::MigrationResult stopcopy =
        migrate::migrateRig(src_stop, dst_stop, mc);
    ASSERT_TRUE(stopcopy.succeeded) << stopcopy.error;
    EXPECT_FALSE(stopcopy.usedPreCopy);

    chaos::Rig src_pre;
    src_pre.runTo(chaos::kChaosOps / 2);
    chaos::Rig dst_pre;
    migrate::PreCopyConfig pc;
    pc.maxRounds = 2;
    pc.convergePages = 8;
    migrate::MigrationResult precopy =
        migrate::migrateRigPreCopy(src_pre, dst_pre, mc, pc, 4);
    ASSERT_TRUE(precopy.succeeded) << precopy.error;
    EXPECT_TRUE(precopy.usedPreCopy);
    EXPECT_GT(precopy.precopy.pagesSentPreCopy, 0u);
    EXPECT_LT(precopy.downtimeCycles, stopcopy.downtimeCycles);
    EXPECT_GT(precopy.bytesMoved, stopcopy.bytesMoved);
    EXPECT_EQ(precopy.bytesMoved,
              precopy.precopy.bytesMovedPreCopy +
                  precopy.precopy.bytesMovedStopCopy);

    // the migrated guest finishes the campaign and converges
    chaos::Reference ref = chaos::makeReference();
    dst_pre.run();
    EXPECT_EQ(dst_pre.words(), ref.words);
}

TEST(MigratePreCopy, GiveUpAfterMaxRoundsStillRestoresBitIdentically)
{
    // convergePages = 0 with a chaos guest dirtying pages every op:
    // the loop can never converge, spends its round budget, and falls
    // back to stop-and-copy on the residual — still bit-identical.
    chaos::Rig src;
    src.runTo(chaos::kChaosOps / 2);
    chaos::Rig dst;
    migrate::MigrationConfig mc;
    mc.transport = lossyTransport(0x61FE);
    migrate::PreCopyConfig pc;
    pc.maxRounds = 2;
    pc.convergePages = 0;
    migrate::MigrationResult result =
        migrate::migrateRigPreCopy(src, dst, mc, pc, 4);
    ASSERT_TRUE(result.succeeded) << result.error;
    EXPECT_TRUE(result.usedPreCopy);
    EXPECT_FALSE(result.precopy.converged);
    EXPECT_EQ(result.precopy.roundsRun, 2u);
    // the give-up round shipped its dirty set live, so only what was
    // dirtied after that last send is residual
    EXPECT_GT(result.precopy.pagesSentPreCopy, 0u);

    // reference: a fresh rig run straight to the destination's cursor
    chaos::Rig a;
    a.runTo(dst.cursor());
    a.run();
    dst.run();
    EXPECT_EQ(dst.words(), a.words());
    EXPECT_EQ(dst.checkpoint(), a.checkpoint());
}

TEST(MigratePreCopy, PartitionLeavesTheSourceCampaignRunning)
{
    chaos::Reference ref = chaos::makeReference();
    chaos::Rig src;
    src.runTo(chaos::kChaosOps / 2);
    chaos::Rig dst;
    migrate::MigrationConfig mc;
    mc.transport.lossPercent = 100;
    mc.transport.maxRetries = 2;
    migrate::PreCopyConfig pc;
    migrate::MigrationResult result =
        migrate::migrateRigPreCopy(src, dst, mc, pc, 4);
    EXPECT_FALSE(result.succeeded);
    EXPECT_EQ(result.errorKind, MigrateErrorKind::Partition);
    // graceful degradation: the source finishes and converges (it may
    // have advanced by the slices already run — that is what "live"
    // means)
    src.run();
    EXPECT_EQ(src.words(), ref.words);
}

// ---------------------------------------------------------------------------
// TransferSession::reconfigure() mid-session
// ---------------------------------------------------------------------------

TEST(TransportReconfigure, ResumedSessionBitMatchesUninterruptedRun)
{
    // The RNG roll order is per-chunk-attempt, independent of where
    // run() calls are split — so interrupting after 5 chunks and
    // resuming (reconfigure with identical knobs) must replay the
    // same weather and land the same ledger, bit for bit.
    std::vector<Byte> image = sampleImage(21);
    TransportConfig cfg = lossyTransport(0xC0FFEE);

    migrate::TransferSession ref(image, cfg);
    ref.run();
    std::vector<Byte> want = ref.receivedImage();

    migrate::TransferSession s(image, cfg);
    EXPECT_EQ(s.runSome(5), 5u);
    EXPECT_EQ(s.chunksDelivered(), 5u);
    s.reconfigure(cfg);
    s.run();
    EXPECT_TRUE(s.complete());
    EXPECT_EQ(s.receivedImage(), want);
    EXPECT_EQ(s.stats().framesSent, ref.stats().framesSent);
    EXPECT_EQ(s.stats().retries, ref.stats().retries);
    EXPECT_EQ(s.stats().cyclesCharged, ref.stats().cyclesCharged);
    EXPECT_EQ(s.stats().retryHistogram, ref.stats().retryHistogram);
}

TEST(TransportReconfigure, WeatherChangeBetweenPartitionsHealsTheLink)
{
    std::vector<Byte> image = sampleImage(22);
    TransportConfig dead;
    dead.seed = 5;
    dead.chunkBytes = 1024;
    dead.lossPercent = 100;
    dead.maxRetries = 3;
    migrate::TransferSession s(image, dead);
    try {
        s.run();
        FAIL() << "a fully partitioned link delivered";
    } catch (const MigrateError &e) {
        EXPECT_EQ(e.kind(), MigrateErrorKind::Partition);
        EXPECT_EQ(e.retries(), 3u);
        EXPECT_GT(e.chargedTimeout(), 0u);
    }
    EXPECT_EQ(s.chunksDelivered(), 0u);

    TransportConfig healed = dead;
    healed.lossPercent = 10;
    s.reconfigure(healed);
    s.run();
    EXPECT_TRUE(s.complete());
    EXPECT_EQ(s.receivedImage(), image);
}

TEST(TransportReconfigure, TightenedRetryBudgetAppliesMidSession)
{
    std::vector<Byte> image = sampleImage(23);
    TransportConfig cfg;
    cfg.seed = 9;
    cfg.chunkBytes = 1024;
    migrate::TransferSession s(image, cfg);
    EXPECT_EQ(s.runSome(3), 3u);

    TransportConfig dead = cfg;
    dead.lossPercent = 100;
    dead.maxRetries = 2;
    s.reconfigure(dead);
    try {
        s.run();
        FAIL() << "a fully partitioned link delivered";
    } catch (const MigrateError &e) {
        EXPECT_EQ(e.kind(), MigrateErrorKind::Partition);
        // the failure names the first chunk still in flight, under
        // the *tightened* budget
        EXPECT_EQ(e.chunk(), 3u);
        EXPECT_EQ(e.retries(), 2u);
    }
    // the delivered set survived the failed epoch
    EXPECT_EQ(s.chunksDelivered(), 3u);
}

// ---------------------------------------------------------------------------
// Per-chunk failure diagnostics
// ---------------------------------------------------------------------------

TEST(MigrateDiagnostics, FailureCarriesChunkRetriesAndChargedTimeout)
{
    chaos::Rig src;
    src.runTo(chaos::kChaosOps / 3);
    chaos::Rig dst;
    migrate::MigrationConfig mc;
    mc.transport.lossPercent = 100;
    mc.transport.maxRetries = 4;
    migrate::MigrationResult result = migrate::migrateRig(src, dst, mc);
    ASSERT_FALSE(result.succeeded);
    EXPECT_EQ(result.errorKind, MigrateErrorKind::Partition);
    EXPECT_EQ(result.errorChunk, 0u);
    EXPECT_EQ(result.errorRetries, 4u);
    EXPECT_GT(result.errorTimeoutCharged, 0u);
    EXPECT_LE(result.errorTimeoutCharged,
              mc.transport.timeoutCapCycles);
}

// ---------------------------------------------------------------------------
// Migration and host-crash as first-class chaos-campaign ops
// ---------------------------------------------------------------------------

TEST(ChaosMigrateOps, PlannedOpsAreSeededDeterministicAndSorted)
{
    chaos::MigrationPlan a = chaos::planMigrationOps(1234, 6);
    chaos::MigrationPlan b = chaos::planMigrationOps(1234, 6);
    ASSERT_EQ(a.size(), 6u);
    ASSERT_EQ(b.size(), 6u);
    for (std::size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].atOp, b[i].atOp);
        EXPECT_EQ(a[i].crash, b[i].crash);
        EXPECT_EQ(a[i].crashAfterPercent, b[i].crashAfterPercent);
        EXPECT_EQ(a[i].weather.seed, b[i].weather.seed);
        EXPECT_EQ(a[i].weather.lossPercent, b[i].weather.lossPercent);
        EXPECT_LT(a[i].atOp, chaos::kTotalOps);
        if (i != 0)
            EXPECT_GE(a[i].atOp, a[i - 1].atOp) << "plan not sorted";
    }
}

TEST(ChaosMigrateOps, CleanMigrationOpIsInvisibleToTheCampaignOracle)
{
    chaos::Reference ref = chaos::makeReference();
    chaos::MigrationPlan plan(1);
    plan[0].kind = chaos::MigrateOp::Kind::Migrate;
    plan[0].atOp = 30;
    plan[0].weather.seed = 99;
    plan[0].weather.lossPercent = 15;
    plan[0].weather.corruptPercent = 10;

    for (std::uint64_t seed : {2ull, 5ull, 12ull}) {
        SCOPED_TRACE(::testing::Message() << "campaign seed " << seed);
        chaos::CampaignOutcome with = chaos::runCampaign(
            seed, ref.window, ref.words, {}, 0, nullptr, &plan);
        chaos::CampaignOutcome without =
            chaos::runCampaign(seed, ref.window, ref.words, {});
        // a successful migration swapped onto a bit-identical twin; a
        // typed transfer failure kept the source — either way the
        // campaign outcome is exactly the no-migration outcome
        EXPECT_EQ(with.diagnosed, without.diagnosed);
        EXPECT_EQ(with.hostFailure, without.hostFailure);
        EXPECT_EQ(with.what, without.what);
        EXPECT_EQ(with.words, without.words);
        EXPECT_FALSE(with.hostFailure);
    }
}

TEST(ChaosMigrateOps, DestCrashMidTransferDegradesGracefully)
{
    chaos::Reference ref = chaos::makeReference();
    chaos::MigrationPlan plan(1);
    plan[0].atOp = 44;
    plan[0].crash = chaos::MigrateOp::Crash::Dest;
    plan[0].crashAfterPercent = 50;
    const std::uint64_t seed = 2;
    chaos::CampaignOutcome with = chaos::runCampaign(
        seed, ref.window, ref.words, {}, 0, nullptr, &plan);
    chaos::CampaignOutcome without =
        chaos::runCampaign(seed, ref.window, ref.words, {});
    // the half-staged image died with the destination; the source
    // never paused, so the campaign is oblivious
    EXPECT_EQ(with.diagnosed, without.diagnosed);
    EXPECT_EQ(with.what, without.what);
    EXPECT_EQ(with.words, without.words);
    EXPECT_FALSE(with.hostFailure);
}

TEST(ChaosMigrateOps, SourceCrashMidTransferIsADeterministicDiagnosis)
{
    chaos::Reference ref = chaos::makeReference();
    chaos::MigrationPlan plan(1);
    plan[0].atOp = 37;
    plan[0].crash = chaos::MigrateOp::Crash::Source;
    plan[0].crashAfterPercent = 40;
    const std::uint64_t seed = 2;
    chaos::CampaignOutcome out = chaos::runCampaign(
        seed, ref.window, ref.words, {}, 0, nullptr, &plan);
    EXPECT_TRUE(out.diagnosed);
    EXPECT_FALSE(out.hostFailure);
    EXPECT_NE(out.what.find(
                  "source host crashed mid-migration at op 37"),
              std::string::npos)
        << out.what;
    EXPECT_NE(out.what.find("chunks delivered"), std::string::npos)
        << out.what;

    chaos::CampaignOutcome again = chaos::runCampaign(
        seed, ref.window, ref.words, {}, 0, nullptr, &plan);
    EXPECT_EQ(out.what, again.what);
    EXPECT_EQ(out.failOp, again.failOp);
}

TEST(ChaosMigrateOps, HostCrashOpIsADeterministicDiagnosis)
{
    chaos::Reference ref = chaos::makeReference();
    chaos::MigrationPlan plan(1);
    plan[0].kind = chaos::MigrateOp::Kind::HostCrash;
    plan[0].atOp = 21;
    const std::uint64_t seed = 2;
    chaos::CampaignOutcome out = chaos::runCampaign(
        seed, ref.window, ref.words, {}, 0, nullptr, &plan);
    EXPECT_TRUE(out.diagnosed);
    EXPECT_FALSE(out.hostFailure);
    EXPECT_NE(
        out.what.find("host crashed under the campaign at op 21"),
        std::string::npos)
        << out.what;
    chaos::CampaignOutcome again = chaos::runCampaign(
        seed, ref.window, ref.words, {}, 0, nullptr, &plan);
    EXPECT_EQ(out.what, again.what);
}

TEST(ChaosMigrateOps, ShrinkerReducesAMigrationFailureToATinyWindow)
{
    chaos::Reference ref = chaos::makeReference();
    chaos::MigrationPlan plan(1);
    plan[0].atOp = 50;
    plan[0].crash = chaos::MigrateOp::Crash::Source;
    plan[0].crashAfterPercent = 35;
    const std::uint64_t seed = 3;

    chaos::ReproWindow repro = chaos::shrinkCampaign(
        seed, ref.window, ref.words, {}, 8, &plan);
    ASSERT_TRUE(repro.found);
    EXPECT_LE(repro.endOp - repro.startOp, 12u)
        << "migration failure did not minimize to a tiny window";
    EXPECT_LE(repro.startOp, 50u);
    EXPECT_GE(repro.endOp, 50u);
    EXPECT_NE(repro.failure.find("crashed mid-migration"),
              std::string::npos)
        << repro.failure;

    chaos::CampaignOutcome replay =
        chaos::replayRepro(repro, ref.words);
    EXPECT_TRUE(replay.diagnosed);
    EXPECT_EQ(replay.what, repro.failure);

    // round-trip through the crash-consistent repro file
    std::string path =
        ::testing::TempDir() + "uexc_migrate_repro.uxsn";
    chaos::writeReproFile(repro, path);
    chaos::ReproWindow loaded = chaos::readReproFile(path);
    std::remove(path.c_str());
    EXPECT_EQ(loaded.seed, repro.seed);
    EXPECT_EQ(loaded.startOp, repro.startOp);
    EXPECT_EQ(loaded.endOp, repro.endOp);
    EXPECT_EQ(loaded.snapshot, repro.snapshot);
    ASSERT_EQ(loaded.migrations.size(), repro.migrations.size());
    EXPECT_EQ(loaded.migrations[0].atOp, repro.migrations[0].atOp);
    EXPECT_EQ(loaded.migrations[0].crash, repro.migrations[0].crash);
    chaos::CampaignOutcome replay2 =
        chaos::replayRepro(loaded, ref.words);
    EXPECT_EQ(replay2.what, repro.failure);
}

// ---------------------------------------------------------------------------
// Supervised self-healing fleet
// ---------------------------------------------------------------------------

apps::fleet::FleetConfig
supervisedFleet(std::uint64_t seed)
{
    apps::fleet::FleetConfig cfg;
    cfg.seed = seed;
    cfg.hosts = 3;
    cfg.guests = 4;
    cfg.dsmGuests = 1;
    cfg.targetMigrations = 4;
    cfg.opsPerTick = 8;
    cfg.cooldownTicks = 2;
    cfg.supervise = true;
    cfg.failEvery = 2;
    cfg.checkpointEveryTicks = 2;
    return cfg;
}

TEST(FleetSupervised, DrilledSoakSelfHealsWithZeroHostFailures)
{
    apps::fleet::FleetConfig cfg = supervisedFleet(404);
    cfg.precopyRounds = 2;
    apps::fleet::Fleet fleet(cfg);
    const apps::fleet::FleetStats &s = fleet.run();
    EXPECT_EQ(s.hostFailures, 0u);
    for (const std::string &note : s.failureNotes)
        ADD_FAILURE() << note;
    EXPECT_GT(s.drillsHostCrash + s.drillsWedge + s.drillsGuestCrash +
                  s.drillsCorruptImage + s.drillsSourceCrash,
              0u);
    EXPECT_GT(s.recoveriesRestart + s.recoveriesRemigrate, 0u);

    const rt::supervise::Supervisor *sup = fleet.supervisor();
    ASSERT_NE(sup, nullptr);
    EXPECT_GT(sup->stats().heartbeats, 0u);
    EXPECT_EQ(sup->stats().recoveries,
              s.recoveriesRestart + s.recoveriesRemigrate);
    EXPECT_EQ(sup->stats().mttrTicks.size(),
              sup->stats().recoveries);
    EXPECT_GE(sup->stats().mttrTicksPercentile(99),
              sup->stats().mttrTicksPercentile(50));
    if (s.drillsCorruptImage != 0) {
        // every deliberately torn checkpoint was refused by
        // validation before touching any guest state
        EXPECT_GE(s.corruptImagesRejected, s.drillsCorruptImage);
    }
}

TEST(FleetSupervised, SameSeedYieldsAnIdenticalDecisionLog)
{
    apps::fleet::Fleet a(supervisedFleet(505));
    apps::fleet::Fleet b(supervisedFleet(505));
    const apps::fleet::FleetStats &sa = a.run();
    const apps::fleet::FleetStats &sb = b.run();
    ASSERT_NE(a.supervisor(), nullptr);
    ASSERT_NE(b.supervisor(), nullptr);
    EXPECT_EQ(a.supervisor()->decisionLogText(),
              b.supervisor()->decisionLogText());
    EXPECT_EQ(a.supervisor()->stats().mttrTicks,
              b.supervisor()->stats().mttrTicks);
    EXPECT_EQ(a.supervisor()->stats().mttrCycles,
              b.supervisor()->stats().mttrCycles);
    EXPECT_EQ(sa.recoveriesRestart, sb.recoveriesRestart);
    EXPECT_EQ(sa.recoveriesRemigrate, sb.recoveriesRemigrate);
    EXPECT_EQ(sa.corruptImagesRejected, sb.corruptImagesRejected);
    EXPECT_EQ(sa.guestsQuarantined, sb.guestsQuarantined);
    EXPECT_EQ(sa.chaosOpsRun, sb.chaosOpsRun);
    EXPECT_EQ(sa.downtimeCycles, sb.downtimeCycles);
    EXPECT_EQ(sa.hostFailures, sb.hostFailures);
}

TEST(FleetSupervised, RepeatedFailuresQuarantineWithoutBreakingTheSoak)
{
    apps::fleet::FleetConfig cfg = supervisedFleet(666);
    cfg.supervisor.quarantineAfter = 1; // first failure quarantines
    apps::fleet::Fleet fleet(cfg);
    const apps::fleet::FleetStats &s = fleet.run();
    EXPECT_GT(s.guestsQuarantined, 0u);
    // quarantined guests are excluded from the convergence oracles;
    // everyone else still converges
    EXPECT_EQ(s.hostFailures, 0u);
    for (const std::string &note : s.failureNotes)
        ADD_FAILURE() << note;
}

// The acceptance sweep: 200 seeded supervised soaks under injected
// host crashes, wedges, guest crashes, torn checkpoints, and
// mid-transfer source crashes — every non-quarantined guest must end
// converged and bit-identical to its unfailed reference, with zero
// torn images accepted.
constexpr unsigned kFleetFuzzShards = 8;
constexpr unsigned kFleetSeedsPerShard = 25;

void
runSupervisedSoakSeed(unsigned seed)
{
    SCOPED_TRACE(::testing::Message()
                 << "supervised fleet seed " << seed);
    apps::fleet::FleetConfig cfg =
        supervisedFleet(0x5EED0000ull + seed);
    cfg.guests = 3;
    cfg.dsmGuests = 1;
    cfg.targetMigrations = 3;
    cfg.cooldownTicks = 1;
    cfg.precopyRounds = seed % 2 ? 2 : 0; // both migration modes
    apps::fleet::Fleet fleet(cfg);
    const apps::fleet::FleetStats &s = fleet.run();
    EXPECT_EQ(s.hostFailures, 0u);
    for (const std::string &note : s.failureNotes)
        ADD_FAILURE() << note;
    EXPECT_EQ(s.migrationsFailed(),
              s.migrationsAttempted - s.migrationsSucceeded);
    if (s.drillsCorruptImage != 0)
        EXPECT_GE(s.corruptImagesRejected, s.drillsCorruptImage);
}

class FleetSupervisedFuzz : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FleetSupervisedFuzz, EveryNonQuarantinedGuestSelfHeals)
{
    const unsigned base = GetParam() * kFleetSeedsPerShard;
    for (unsigned s = 0; s < kFleetSeedsPerShard; s++) {
        runSupervisedSoakSeed(base + s);
        if (::testing::Test::HasNonfatalFailure())
            break;
    }
}

INSTANTIATE_TEST_SUITE_P(Shards, FleetSupervisedFuzz,
                         ::testing::Range(0u, kFleetFuzzShards));

} // namespace
} // namespace uexc::sim
