/**
 * @file
 * Tests for the trace observer and the typed-handler dispatch of the
 * UserEnv facade.
 */

#include <gtest/gtest.h>

#include "os_test_util.h"
#include "sim/trace.h"
#include "sim_test_util.h"

namespace uexc {
namespace {

using namespace sim;
using namespace os::testutil;
using sim::testutil::BareMachine;

TEST(Trace, EmitsOneLinePerInstruction)
{
    BareMachine m;
    m.loadAsm([](Assembler &a) {
        a.li(T0, 1);
        a.addu(T1, T0, T0);
        a.hcall(0);
    });
    std::vector<std::string> lines;
    TraceObserver trace(m.cpu(), [&](const std::string &l) {
        lines.push_back(l);
    });
    m.cpu().setObserver(&trace);
    m.runToHalt();
    m.cpu().setObserver(nullptr);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_NE(lines[0].find("addiu t0, zero, 1"), std::string::npos);
    EXPECT_NE(lines[1].find("addu t1, t0, t0"), std::string::npos);
    EXPECT_EQ(lines[0].rfind("[K]", 0), 0u) << "kseg0 code is kernel";
}

TEST(Trace, ExceptionLinesAndFiltering)
{
    BareMachine m;
    // halting vectors
    Assembler v(Cpu::RefillVector);
    v.hcall(0);
    v.align(0x80);
    v.hcall(0);
    m.machine.load(v.finalize());
    m.loadAsm([](Assembler &a) {
        a.syscall();
        a.nop();
    });
    std::vector<std::string> lines;
    TraceObserver trace(m.cpu(), [&](const std::string &l) {
        lines.push_back(l);
    });
    m.cpu().setObserver(&trace);
    m.runToHalt();
    m.cpu().setObserver(nullptr);
    bool saw_exception = false;
    for (const auto &l : lines)
        if (l.find("exception Sys") != std::string::npos)
            saw_exception = true;
    EXPECT_TRUE(saw_exception);
}

TEST(Trace, LimitStopsEmission)
{
    BareMachine m;
    m.loadAsm([](Assembler &a) {
        for (int i = 0; i < 50; i++)
            a.nop();
        a.hcall(0);
    });
    unsigned count = 0;
    TraceObserver trace(m.cpu(), [&](const std::string &) { count++; });
    trace.setLimit(10);
    m.cpu().setObserver(&trace);
    m.runToHalt();
    m.cpu().setObserver(nullptr);
    EXPECT_EQ(count, 10u);
    EXPECT_EQ(trace.linesEmitted(), 10u);
}

TEST(TypedHandlers, DispatchByExceptionType)
{
    BootedKernel bk(osMachineConfig(true));
    rt::UserEnv env(bk.kernel, rt::DeliveryMode::FastSoftware);
    env.install(kAllExcMask);
    env.allocate(0x10000000, os::kPageBytes);

    unsigned mod_hits = 0, adel_hits = 0, default_hits = 0;
    env.setHandler([&](rt::Fault &f) {
        default_hits++;
        f.setReg(T6, f.badVaddr() & ~Addr(3));
    });
    env.setHandler(ExcCode::Mod, [&](rt::Fault &) {
        mod_hits++;
        env.protect(0x10000000, os::kPageBytes,
                    os::kProtRead | os::kProtWrite);
    });
    env.setHandler(ExcCode::AdEL, [&](rt::Fault &f) {
        adel_hits++;
        f.setReg(T6, f.badVaddr() & ~Addr(3));
    });

    env.protect(0x10000000, os::kPageBytes, os::kProtRead);
    env.store(0x10000000, 1);      // Mod -> typed handler
    env.load(0x10000002);          // AdEL -> typed handler
    env.store(0x10000006, 2);      // AdES -> default handler

    EXPECT_EQ(mod_hits, 1u);
    EXPECT_EQ(adel_hits, 1u);
    EXPECT_EQ(default_hits, 1u);
    EXPECT_EQ(env.load(0x10000004), 2u);
}

} // namespace
} // namespace uexc
