/**
 * @file
 * Unit tests for common/logging.h.
 */

#include <gtest/gtest.h>

#include "common/logging.h"

namespace uexc {
namespace {

class LoggingQuiet : public ::testing::Test
{
  protected:
    void SetUp() override { setLoggingEnabled(false); }
    void TearDown() override { setLoggingEnabled(true); }
};

TEST_F(LoggingQuiet, PanicThrowsPanicError)
{
    EXPECT_THROW(UEXC_PANIC("boom %d", 42), PanicError);
}

TEST_F(LoggingQuiet, FatalThrowsFatalError)
{
    EXPECT_THROW(UEXC_FATAL("bad config %s", "x"), FatalError);
}

TEST_F(LoggingQuiet, PanicMessageContainsTextAndLocation)
{
    try {
        UEXC_PANIC("value was %d", 7);
        FAIL() << "expected PanicError";
    } catch (const PanicError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("value was 7"), std::string::npos);
        EXPECT_NE(msg.find("test_logging.cc"), std::string::npos);
    }
}

TEST_F(LoggingQuiet, FatalIsNotPanic)
{
    try {
        UEXC_FATAL("user error");
        FAIL() << "expected FatalError";
    } catch (const PanicError &) {
        FAIL() << "FatalError must not be a PanicError";
    } catch (const FatalError &) {
        SUCCEED();
    }
}

TEST_F(LoggingQuiet, FormatStringHandlesLongOutput)
{
    std::string big(500, 'x');
    std::string out = detail::formatString("%s", big.c_str());
    EXPECT_EQ(out, big);
}

TEST_F(LoggingQuiet, WarnAndInformDoNotThrow)
{
    EXPECT_NO_THROW(UEXC_WARN("warning %d", 1));
    EXPECT_NO_THROW(UEXC_INFORM("info %d", 2));
}

} // namespace
} // namespace uexc
