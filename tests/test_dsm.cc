/**
 * @file
 * Tests for the page-based DSM cluster: coherence of the
 * write-invalidate protocol (reads see the latest write, ownership
 * migrates, copysets invalidate), fault accounting, and the
 * exception-cost contribution to page-miss latency.
 */

#include <gtest/gtest.h>

#include "apps/dsm/dsm.h"
#include "common/guesterror.h"

namespace uexc::apps {
namespace {

using rt::DeliveryMode;

constexpr Addr kBase = 0x40000000;

DsmCluster::Config
smallCluster(DeliveryMode mode = DeliveryMode::FastSoftware,
             unsigned nodes = 2)
{
    DsmCluster::Config cfg;
    cfg.nodes = nodes;
    cfg.bytes = 4 * os::kPageBytes;
    cfg.mode = mode;
    cfg.networkLatencyCycles = 1000;   // fast fabric for tests
    return cfg;
}

TEST(Dsm, InitialOwnerReadsAndWritesWithoutFaults)
{
    DsmCluster dsm(smallCluster());
    dsm.write(0, kBase, 42);
    EXPECT_EQ(dsm.read(0, kBase), 42u);
    EXPECT_EQ(dsm.stats().readFaults, 0u);
    EXPECT_EQ(dsm.stats().writeFaults, 0u);
}

TEST(Dsm, RemoteReadFetchesPageAndSeesData)
{
    DsmCluster dsm(smallCluster());
    dsm.write(0, kBase + 0x10, 1234);
    EXPECT_EQ(dsm.read(1, kBase + 0x10), 1234u);
    EXPECT_EQ(dsm.stats().readFaults, 1u);
    EXPECT_EQ(dsm.stats().pageTransfers, 1u);
    EXPECT_EQ(dsm.state(1, kBase), DsmPageState::ReadShared);
    // the former owner dropped to read-shared
    EXPECT_EQ(dsm.state(0, kBase), DsmPageState::ReadShared);
    // further reads on node 1 are local
    EXPECT_EQ(dsm.read(1, kBase + 0x10), 1234u);
    EXPECT_EQ(dsm.stats().readFaults, 1u);
}

TEST(Dsm, RemoteWriteTakesOwnershipAndInvalidates)
{
    DsmCluster dsm(smallCluster());
    dsm.write(0, kBase, 1);
    EXPECT_EQ(dsm.read(1, kBase), 1u);       // node 1 joins copyset
    dsm.write(1, kBase, 2);                  // node 1 takes ownership
    EXPECT_EQ(dsm.ownerOf(kBase), 1u);
    EXPECT_EQ(dsm.state(0, kBase), DsmPageState::Invalid);
    EXPECT_EQ(dsm.state(1, kBase), DsmPageState::Writable);
    EXPECT_GE(dsm.stats().invalidations, 1u);
    // node 0 reading again sees node 1's write
    EXPECT_EQ(dsm.read(0, kBase), 2u);
}

TEST(Dsm, SequentialConsistencyUnderPingPong)
{
    DsmCluster dsm(smallCluster());
    for (Word i = 0; i < 20; i++) {
        unsigned writer = i % 2;
        unsigned reader = 1 - writer;
        dsm.write(writer, kBase + 0x20, i);
        EXPECT_EQ(dsm.read(reader, kBase + 0x20), i) << "iteration " << i;
    }
}

TEST(Dsm, IndependentPagesDoNotInterfere)
{
    DsmCluster dsm(smallCluster());
    dsm.write(0, kBase, 10);                     // page 0
    dsm.write(1, kBase + os::kPageBytes, 20);    // page 1
    EXPECT_EQ(dsm.ownerOf(kBase), 0u);
    EXPECT_EQ(dsm.ownerOf(kBase + os::kPageBytes), 1u);
    EXPECT_EQ(dsm.read(0, kBase), 10u);
    EXPECT_EQ(dsm.read(1, kBase + os::kPageBytes), 20u);
}

TEST(Dsm, ThreeNodeCopysetInvalidation)
{
    DsmCluster dsm(smallCluster(DeliveryMode::FastSoftware, 3));
    dsm.write(0, kBase, 5);
    EXPECT_EQ(dsm.read(1, kBase), 5u);
    EXPECT_EQ(dsm.read(2, kBase), 5u);
    // all three share the page read-only now
    dsm.write(2, kBase, 6);
    EXPECT_EQ(dsm.state(0, kBase), DsmPageState::Invalid);
    EXPECT_EQ(dsm.state(1, kBase), DsmPageState::Invalid);
    EXPECT_EQ(dsm.state(2, kBase), DsmPageState::Writable);
    EXPECT_EQ(dsm.read(0, kBase), 6u);
    EXPECT_EQ(dsm.read(1, kBase), 6u);
}

TEST(Dsm, WholePageContentTransfers)
{
    DsmCluster dsm(smallCluster());
    for (unsigned i = 0; i < 32; i++)
        dsm.write(0, kBase + 4 * i, 100 + i);
    // one read miss transfers the whole page
    EXPECT_EQ(dsm.read(1, kBase), 100u);
    for (unsigned i = 1; i < 32; i++)
        EXPECT_EQ(dsm.read(1, kBase + 4 * i), 100 + i);
    EXPECT_EQ(dsm.stats().pageTransfers, 1u);
}

TEST(Dsm, ExceptionMechanismMattersOnFastNetworks)
{
    // with a fast interconnect, the dispatch path is a visible
    // fraction of a page miss: the fast mechanism beats signals
    auto pingpong = [](DeliveryMode mode, Cycles latency) {
        DsmCluster::Config cfg = smallCluster(mode);
        cfg.networkLatencyCycles = latency;
        DsmCluster dsm(cfg);
        dsm.write(0, kBase, 0);   // establish ownership
        Cycles before = dsm.totalCycles();
        for (Word i = 0; i < 10; i++)
            dsm.write(i % 2, kBase, i);
        return dsm.totalCycles() - before;
    };

    Cycles fast_net_fast_exc =
        pingpong(DeliveryMode::FastSoftware, 500);
    Cycles fast_net_ultrix =
        pingpong(DeliveryMode::UltrixSignal, 500);
    EXPECT_LT(fast_net_fast_exc, fast_net_ultrix);

    // on a slow 1994 network the mechanism matters relatively less
    double slow_ratio =
        static_cast<double>(pingpong(DeliveryMode::UltrixSignal, 50000)) /
        pingpong(DeliveryMode::FastSoftware, 50000);
    double fast_ratio = static_cast<double>(fast_net_ultrix) /
                        fast_net_fast_exc;
    EXPECT_GT(fast_ratio, slow_ratio);
}

TEST(Dsm, SharedMachinePlacementRunsTheSameProtocol)
{
    // Nodes placed on harts of one machine instead of one machine
    // each: same coherence behaviour, same fault accounting.
    DsmCluster::Config cfg = smallCluster();
    cfg.sharedMachine = true;
    DsmCluster dsm(cfg);
    dsm.write(0, kBase, 77);
    EXPECT_EQ(dsm.read(1, kBase), 77u);
    EXPECT_EQ(dsm.stats().readFaults, 1u);
    EXPECT_EQ(dsm.state(0, kBase), DsmPageState::ReadShared);
    EXPECT_EQ(dsm.state(1, kBase), DsmPageState::ReadShared);
    dsm.write(1, kBase, 78);
    EXPECT_EQ(dsm.state(1, kBase), DsmPageState::Writable);
    EXPECT_EQ(dsm.state(0, kBase), DsmPageState::Invalid);
    EXPECT_EQ(dsm.read(0, kBase), 78u);
}

TEST(Dsm, SharedMachinePlacementMatchesSeparateMachines)
{
    auto faults = [](bool shared) {
        DsmCluster::Config cfg = smallCluster();
        cfg.sharedMachine = shared;
        DsmCluster dsm(cfg);
        dsm.write(0, kBase, 0);
        for (Word i = 0; i < 8; i++)
            dsm.write(i % 2, kBase, i);
        return dsm.stats().writeFaults;
    };
    EXPECT_EQ(faults(true), faults(false));
}

// -- unreliable network --------------------------------------------------

/** A deterministic workload; returns the final shared contents. */
std::vector<Word>
runWorkload(DsmCluster &dsm)
{
    for (Word i = 0; i < 24; i++) {
        unsigned writer = i % 2;
        dsm.write(writer, kBase + 4 * (i % 16), i * 3 + 1);
        dsm.write(writer, kBase + os::kPageBytes + 4 * (i % 16), i);
        (void)dsm.read(1 - writer, kBase + 4 * (i % 16));
    }
    std::vector<Word> words;
    for (Word off = 0; off < 16 * 4; off += 4) {
        words.push_back(dsm.read(0, kBase + off));
        words.push_back(dsm.read(0, kBase + os::kPageBytes + off));
    }
    return words;
}

DsmCluster::Config
lossyCluster(unsigned loss, unsigned dup, unsigned delay,
             std::uint64_t seed = 42)
{
    DsmCluster::Config cfg = smallCluster();
    cfg.unreliableNetwork = true;
    cfg.networkSeed = seed;
    cfg.lossPercent = loss;
    cfg.dupPercent = dup;
    cfg.delayPercent = delay;
    return cfg;
}

TEST(DsmUnreliable, LossyRunConvergesToLosslessContents)
{
    DsmCluster reliable(smallCluster());
    std::vector<Word> want = runWorkload(reliable);

    DsmCluster lossy(lossyCluster(20, 10, 10));
    EXPECT_EQ(runWorkload(lossy), want);

    // the retry machinery actually engaged
    EXPECT_GT(lossy.stats().retries, 0u);
    EXPECT_GT(lossy.stats().timeouts, 0u);
    EXPECT_GT(lossy.stats().duplicatesSuppressed, 0u);
    EXPECT_GT(lossy.stats().messages, reliable.stats().messages);
    // and cost simulated time: timeouts charge the waiting node
    EXPECT_GT(lossy.totalCycles(), reliable.totalCycles());
}

TEST(DsmUnreliable, ReliableModeIsUnchangedByTheNewPlumbing)
{
    // unreliableNetwork=false must be bit-identical to the old
    // chargeMessage accounting: no retries, no timeouts, no dups
    DsmCluster dsm(smallCluster());
    runWorkload(dsm);
    EXPECT_EQ(dsm.stats().retries, 0u);
    EXPECT_EQ(dsm.stats().timeouts, 0u);
    EXPECT_EQ(dsm.stats().duplicatesSuppressed, 0u);
}

TEST(DsmUnreliable, FixedSeedIsDeterministic)
{
    DsmCluster a(lossyCluster(25, 15, 10, 7));
    DsmCluster b(lossyCluster(25, 15, 10, 7));
    EXPECT_EQ(runWorkload(a), runWorkload(b));
    EXPECT_EQ(a.stats().messages, b.stats().messages);
    EXPECT_EQ(a.stats().retries, b.stats().retries);
    EXPECT_EQ(a.stats().timeouts, b.stats().timeouts);
    EXPECT_EQ(a.stats().duplicatesSuppressed,
              b.stats().duplicatesSuppressed);
    EXPECT_EQ(a.totalCycles(), b.totalCycles());

    DsmCluster c(lossyCluster(25, 15, 10, 8));
    EXPECT_NE(a.stats().messages, c.stats().messages);
    EXPECT_EQ(runWorkload(c), runWorkload(a));  // contents still agree
}

TEST(DsmUnreliable, TotalLossIsDiagnosedAsPartition)
{
    DsmCluster dsm(lossyCluster(100, 0, 0));
    dsm.write(0, kBase, 1);                  // owner: no messages
    EXPECT_THROW(dsm.read(1, kBase), GuestError);

    // Even a full partition (16 retries of doubling timeouts) never
    // charges a single wait beyond the configured ceiling — the
    // 2^16 tail the cap exists to bound.
    const DsmStats &s = dsm.stats();
    EXPECT_EQ(s.timeoutCapCycles, lossyCluster(100, 0, 0).timeoutCapCycles);
    EXPECT_GT(s.maxTimeoutCharged, 0u);
    EXPECT_LE(s.maxTimeoutCharged, s.timeoutCapCycles);
}

TEST(DsmUnreliable, RetryTimeoutCapBoundsThePartitionWait)
{
    // With the cap, a declared partition costs at most
    // initial + sum(min(2^i * t, cap)) cycles; compare a tight cap
    // against a loose one on the same seed to see the bound bite.
    DsmCluster::Config tight = lossyCluster(100, 0, 0);
    tight.timeoutCapCycles = tight.timeoutCycles;   // never doubles
    DsmCluster a(tight);
    a.write(0, kBase, 1);
    EXPECT_THROW(a.read(1, kBase), GuestError);
    EXPECT_EQ(a.stats().maxTimeoutCharged, tight.timeoutCycles);

    DsmCluster b(lossyCluster(100, 0, 0));
    b.write(0, kBase, 1);
    EXPECT_THROW(b.read(1, kBase), GuestError);
    EXPECT_GT(b.stats().maxTimeoutCharged,
              a.stats().maxTimeoutCharged);
    EXPECT_GT(b.totalCycles(), a.totalCycles());
}

TEST(DsmUnreliable, PerLinkRetryHistogramAccountsEveryRetry)
{
    DsmCluster dsm(lossyCluster(20, 10, 10));
    runWorkload(dsm);
    const DsmStats &s = dsm.stats();
    ASSERT_EQ(s.perLinkRetries.size(),
              std::size_t(dsm.nodes()) * dsm.nodes());
    std::uint64_t total = 0;
    for (std::uint64_t r : s.perLinkRetries)
        total += r;
    // every retransmission is attributed to exactly one ordered link
    EXPECT_EQ(total, s.retries);
    EXPECT_GT(total, 0u);
    // a node never retransmits to itself
    for (unsigned n = 0; n < dsm.nodes(); n++)
        EXPECT_EQ(s.perLinkRetries[n * dsm.nodes() + n], 0u);
}

} // namespace
} // namespace uexc::apps
