/**
 * @file
 * Tests for the incremental collector: bounded pauses, correctness
 * of the protection-based retrace barrier (a mutator writing into
 * scanned territory cannot hide live objects from the marker), and
 * pause behaviour across delivery mechanisms.
 */

#include <gtest/gtest.h>

#include "apps/gc/incremental.h"
#include "os_test_util.h"

namespace uexc::apps {
namespace {

using namespace os::testutil;
using rt::DeliveryMode;
using rt::UserEnv;

struct IncSetup
{
    explicit IncSetup(DeliveryMode mode = DeliveryMode::FastSoftware,
                      unsigned slice = 64)
        : booted(osMachineConfig(true)), env(booted.kernel, mode)
    {
        env.install(kAllExcMask);
        IncrementalCollector::Config cfg;
        cfg.sliceBudget = slice;
        gc = std::make_unique<IncrementalCollector>(env, cfg);
    }

    BootedKernel booted;
    UserEnv env;
    std::unique_ptr<IncrementalCollector> gc;
};

TEST(IncGc, BasicAllocReadWrite)
{
    IncSetup s;
    Addr a = s.gc->alloc(4);
    s.gc->writeWord(a, 1, 0x77);
    EXPECT_EQ(s.gc->readWord(a, 1), 0x77u);
    EXPECT_EQ(s.gc->readWord(a, 0), 0u);
}

TEST(IncGc, FullCycleReclaimsGarbageKeepsLive)
{
    IncSetup s;
    Addr keep = s.gc->alloc(2);
    Addr child = s.gc->alloc(2);
    s.gc->writeWord(keep, 0, child);
    s.gc->setRoot(0, keep);
    for (int i = 0; i < 200; i++)
        s.gc->alloc(2);
    s.gc->startCycle();
    s.gc->finishCycle();
    EXPECT_TRUE(s.gc->isObject(keep));
    EXPECT_TRUE(s.gc->isObject(child));
    EXPECT_EQ(s.gc->liveObjects(), 2u);
    EXPECT_GE(s.gc->stats().objectsSwept, 200u);
}

TEST(IncGc, MarkingProceedsInBoundedSlices)
{
    IncSetup s(DeliveryMode::FastSoftware, /*slice=*/8);
    // a chain of 100 objects: marking needs many slices
    Addr prev = 0;
    for (int i = 0; i < 100; i++) {
        Addr cell = s.gc->alloc(2);
        s.gc->writeWord(cell, 1, prev);
        prev = cell;
    }
    s.gc->setRoot(0, prev);
    s.gc->startCycle();
    unsigned steps = 0;
    while (s.gc->collecting()) {
        s.gc->step();
        steps++;
        ASSERT_LT(steps, 1000u);
    }
    EXPECT_GT(steps, 5u);  // genuinely incremental
    EXPECT_EQ(s.gc->liveObjects(), 100u);
}

TEST(IncGc, MutatorWriteIntoScannedObjectIsRetraced)
{
    IncSetup s(DeliveryMode::FastSoftware, /*slice=*/4);
    // a long chain keeps marking busy across many slices
    Addr prev = 0;
    for (int i = 0; i < 50; i++) {
        Addr cell = s.gc->alloc(2);
        s.gc->writeWord(cell, 1, prev);
        prev = cell;
    }
    Addr chain_head = prev;
    s.gc->setRoot(0, chain_head);
    // a white object reachable from nothing (yet)
    Addr hidden = s.gc->alloc(2);
    s.gc->writeWord(hidden, 0, 0xbeef);

    s.gc->startCycle();
    s.gc->step();   // scans the chain head; its page is now protected
    ASSERT_TRUE(s.gc->collecting());

    // hide the white object behind the already-scanned chain head:
    // without the retrace barrier the marker would never see it
    std::uint64_t faults_before = s.gc->stats().retraceFaults;
    s.gc->writeWord(chain_head, 0, hidden);
    EXPECT_GT(s.gc->stats().retraceFaults, faults_before);

    s.gc->finishCycle();
    EXPECT_TRUE(s.gc->isObject(hidden));
    EXPECT_EQ(s.gc->readWord(hidden, 0), 0xbeefu);
    EXPECT_GT(s.gc->stats().retracedObjects, 0u);
}

TEST(IncGc, AllocationTriggersCyclesAutomatically)
{
    IncSetup s;
    Addr keep = s.gc->alloc(2);
    s.gc->setRoot(0, keep);
    for (int i = 0; i < 30000; i++)
        s.gc->alloc(2);
    s.gc->finishCycle();
    EXPECT_GE(s.gc->stats().cycles, 1u);
    EXPECT_GT(s.gc->stats().objectsSwept, 0u);
    EXPECT_TRUE(s.gc->isObject(keep));
}

TEST(IncGc, SmallerSlicesGiveSmallerMaxPause)
{
    auto max_pause = [](unsigned slice) {
        IncSetup s(DeliveryMode::FastSoftware, slice);
        Addr prev = 0;
        for (int i = 0; i < 400; i++) {
            Addr cell = s.gc->alloc(3);
            s.gc->writeWord(cell, 2, prev);
            prev = cell;
        }
        s.gc->setRoot(0, prev);
        s.gc->startCycle();
        s.gc->finishCycle();
        return s.gc->stats().maxPauseCycles;
    };
    Cycles small = max_pause(8);
    Cycles big = max_pause(512);
    EXPECT_LT(small, big / 4);
}

class IncModes : public ::testing::TestWithParam<DeliveryMode> {};

TEST_P(IncModes, RetraceBarrierCorrectUnderEveryMechanism)
{
    IncSetup s(GetParam(), 4);
    Addr prev = 0;
    for (int i = 0; i < 40; i++) {
        Addr cell = s.gc->alloc(2);
        s.gc->writeWord(cell, 1, prev);
        prev = cell;
    }
    s.gc->setRoot(0, prev);
    Addr hidden = s.gc->alloc(2);   // white, unreferenced

    s.gc->startCycle();
    s.gc->step();
    ASSERT_TRUE(s.gc->collecting());
    s.gc->writeWord(prev, 0, hidden);   // into scanned territory
    s.gc->finishCycle();
    EXPECT_TRUE(s.gc->isObject(hidden));
    EXPECT_GT(s.gc->stats().retraceFaults, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, IncModes,
    ::testing::Values(DeliveryMode::UltrixSignal,
                      DeliveryMode::FastSoftware,
                      DeliveryMode::FastHardwareVector),
    [](const ::testing::TestParamInfo<DeliveryMode> &info) {
        switch (info.param) {
          case DeliveryMode::UltrixSignal: return "Ultrix";
          case DeliveryMode::FastSoftware: return "FastSw";
          default: return "FastHw";
        }
    });

} // namespace
} // namespace uexc::apps
