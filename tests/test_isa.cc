/**
 * @file
 * Encode/decode round-trip and disassembly tests for the ISA.
 */

#include <gtest/gtest.h>

#include "sim/encoding.h"
#include "sim/isa.h"

namespace uexc::sim {
namespace {

using namespace enc;

struct EncodedCase
{
    const char *name;
    Word raw;
    Op op;
    unsigned rs, rt, rd;
};

class DecodeRoundTrip : public ::testing::TestWithParam<EncodedCase> {};

TEST_P(DecodeRoundTrip, OpAndFieldsSurvive)
{
    const EncodedCase &c = GetParam();
    DecodedInst inst = decode(c.raw);
    EXPECT_EQ(inst.op, c.op) << c.name;
    EXPECT_EQ(inst.rs, c.rs) << c.name;
    EXPECT_EQ(inst.rt, c.rt) << c.name;
    EXPECT_EQ(inst.rd, c.rd) << c.name;
    EXPECT_EQ(inst.raw, c.raw) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, DecodeRoundTrip,
    ::testing::Values(
        EncodedCase{"sll", sll(T0, T1, 4), Op::Sll, 0, T1, T0},
        EncodedCase{"srl", srl(T0, T1, 4), Op::Srl, 0, T1, T0},
        EncodedCase{"sra", sra(V0, A0, 31), Op::Sra, 0, A0, V0},
        EncodedCase{"sllv", sllv(T0, T1, T2), Op::Sllv, T2, T1, T0},
        EncodedCase{"srlv", srlv(T0, T1, T2), Op::Srlv, T2, T1, T0},
        EncodedCase{"srav", srav(T0, T1, T2), Op::Srav, T2, T1, T0},
        EncodedCase{"add", add(S0, S1, S2), Op::Add, S1, S2, S0},
        EncodedCase{"addu", addu(S0, S1, S2), Op::Addu, S1, S2, S0},
        EncodedCase{"sub", sub(S0, S1, S2), Op::Sub, S1, S2, S0},
        EncodedCase{"subu", subu(S0, S1, S2), Op::Subu, S1, S2, S0},
        EncodedCase{"and", and_(S0, S1, S2), Op::And, S1, S2, S0},
        EncodedCase{"or", or_(S0, S1, S2), Op::Or, S1, S2, S0},
        EncodedCase{"xor", xor_(S0, S1, S2), Op::Xor, S1, S2, S0},
        EncodedCase{"nor", nor(S0, S1, S2), Op::Nor, S1, S2, S0},
        EncodedCase{"slt", slt(V0, A0, A1), Op::Slt, A0, A1, V0},
        EncodedCase{"sltu", sltu(V0, A0, A1), Op::Sltu, A0, A1, V0},
        EncodedCase{"mult", mult(A0, A1), Op::Mult, A0, A1, 0},
        EncodedCase{"multu", multu(A0, A1), Op::Multu, A0, A1, 0},
        EncodedCase{"div", div(A0, A1), Op::Div, A0, A1, 0},
        EncodedCase{"divu", divu(A0, A1), Op::Divu, A0, A1, 0},
        EncodedCase{"mfhi", mfhi(V0), Op::Mfhi, 0, 0, V0},
        EncodedCase{"mthi", mthi(V0), Op::Mthi, V0, 0, 0},
        EncodedCase{"mflo", mflo(V0), Op::Mflo, 0, 0, V0},
        EncodedCase{"mtlo", mtlo(V0), Op::Mtlo, V0, 0, 0},
        EncodedCase{"jr", jr(RA), Op::Jr, RA, 0, 0},
        EncodedCase{"jalr", jalr(T9, RA), Op::Jalr, RA, 0, T9},
        EncodedCase{"syscall", syscall(), Op::Syscall, 0, 0, 0},
        EncodedCase{"tlbr", tlbr(), Op::Tlbr, 16, 0, 0},
        EncodedCase{"tlbwi", tlbwi(), Op::Tlbwi, 16, 0, 0},
        EncodedCase{"tlbwr", tlbwr(), Op::Tlbwr, 16, 0, 0},
        EncodedCase{"tlbp", tlbp(), Op::Tlbp, 16, 0, 0},
        EncodedCase{"rfe", rfe(), Op::Rfe, 16, 0, 0},
        EncodedCase{"xret", xret(), Op::Xret, 16, 0, 0}),
    [](const ::testing::TestParamInfo<EncodedCase> &info) {
        return info.param.name;
    });

struct ImmCase
{
    const char *name;
    Word raw;
    Op op;
    Word imm;
    Word simm;
};

class ImmediateDecode : public ::testing::TestWithParam<ImmCase> {};

TEST_P(ImmediateDecode, ImmediateFields)
{
    const ImmCase &c = GetParam();
    DecodedInst inst = decode(c.raw);
    EXPECT_EQ(inst.op, c.op) << c.name;
    EXPECT_EQ(inst.imm, c.imm) << c.name;
    EXPECT_EQ(inst.simm, c.simm) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ImmediateDecode,
    ::testing::Values(
        ImmCase{"addi_neg", addi(T0, T1, -1), Op::Addi, 0xffffu,
                0xffffffffu},
        ImmCase{"addiu_pos", addiu(T0, T1, 0x7fff), Op::Addiu, 0x7fffu,
                0x7fffu},
        ImmCase{"slti", slti(T0, T1, -32768), Op::Slti, 0x8000u,
                0xffff8000u},
        ImmCase{"sltiu", sltiu(T0, T1, 1), Op::Sltiu, 1u, 1u},
        ImmCase{"andi", andi(T0, T1, 0xff00), Op::Andi, 0xff00u,
                0xffffff00u},
        ImmCase{"ori", ori(T0, T1, 0xabcd), Op::Ori, 0xabcdu,
                0xffffabcdu},
        ImmCase{"xori", xori(T0, T1, 0x00ff), Op::Xori, 0x00ffu,
                0x00ffu},
        ImmCase{"lui", lui(T0, 0x8000), Op::Lui, 0x8000u, 0xffff8000u},
        ImmCase{"lw", lw(T0, -4, SP), Op::Lw, 0xfffcu, 0xfffffffcu},
        ImmCase{"sw", sw(T0, 8, SP), Op::Sw, 8u, 8u},
        ImmCase{"lb", lb(T0, 1, A0), Op::Lb, 1u, 1u},
        ImmCase{"lbu", lbu(T0, 2, A0), Op::Lbu, 2u, 2u},
        ImmCase{"lh", lh(T0, -2, A0), Op::Lh, 0xfffeu, 0xfffffffeu},
        ImmCase{"lhu", lhu(T0, 4, A0), Op::Lhu, 4u, 4u},
        ImmCase{"sb", sb(T0, 3, A0), Op::Sb, 3u, 3u},
        ImmCase{"sh", sh(T0, 6, A0), Op::Sh, 6u, 6u}),
    [](const ::testing::TestParamInfo<ImmCase> &info) {
        return info.param.name;
    });

TEST(Decode, BranchOffsets)
{
    DecodedInst inst = decode(enc::beq(T0, T1, -5));
    EXPECT_EQ(inst.op, Op::Beq);
    EXPECT_EQ(static_cast<SWord>(inst.simm), -5);

    inst = decode(enc::bne(T0, T1, 100));
    EXPECT_EQ(inst.op, Op::Bne);
    EXPECT_EQ(inst.simm, 100u);

    inst = decode(enc::bltz(A0, 12));
    EXPECT_EQ(inst.op, Op::Bltz);
    inst = decode(enc::bgez(A0, 12));
    EXPECT_EQ(inst.op, Op::Bgez);
    inst = decode(enc::bltzal(A0, 12));
    EXPECT_EQ(inst.op, Op::Bltzal);
    inst = decode(enc::bgezal(A0, 12));
    EXPECT_EQ(inst.op, Op::Bgezal);
}

TEST(Decode, JumpTarget)
{
    DecodedInst inst = decode(enc::j(0x0123456));
    EXPECT_EQ(inst.op, Op::J);
    EXPECT_EQ(inst.target, 0x0123456u);

    inst = decode(enc::jal(0x3ffffff));
    EXPECT_EQ(inst.op, Op::Jal);
    EXPECT_EQ(inst.target, 0x3ffffffu);
}

TEST(Decode, Cop0Moves)
{
    DecodedInst inst = decode(enc::mfc0(T0, 12));
    EXPECT_EQ(inst.op, Op::Mfc0);
    EXPECT_EQ(inst.rt, unsigned{T0});
    EXPECT_EQ(inst.rd, 12u);

    inst = decode(enc::mtc0(T1, 14));
    EXPECT_EQ(inst.op, Op::Mtc0);
    EXPECT_EQ(inst.rd, 14u);
}

TEST(Decode, Extensions)
{
    DecodedInst inst = decode(enc::mfux(T0, UxReg::Cond));
    EXPECT_EQ(inst.op, Op::Mfux);
    EXPECT_EQ(inst.rd, static_cast<unsigned>(UxReg::Cond));

    inst = decode(enc::mtux(T1, UxReg::Target));
    EXPECT_EQ(inst.op, Op::Mtux);
    EXPECT_EQ(inst.rd, static_cast<unsigned>(UxReg::Target));

    inst = decode(enc::tlbmp(A0, A1));
    EXPECT_EQ(inst.op, Op::Tlbmp);
    EXPECT_EQ(inst.rs, unsigned{A0});
    EXPECT_EQ(inst.rt, unsigned{A1});

    inst = decode(enc::hcall(0x1234));
    EXPECT_EQ(inst.op, Op::Hcall);
    EXPECT_EQ(inst.target, 0x1234u);
}

TEST(Decode, InvalidEncodings)
{
    // unassigned SPECIAL funct
    EXPECT_EQ(decode(0x0000003fu).op, Op::Invalid);
    // unassigned primary opcode (0x3c)
    EXPECT_EQ(decode(0xf0000000u).op, Op::Invalid);
    // COP0 with bad rs
    EXPECT_EQ(decode(enc::mfc0(T0, 12) | (0x1fu << 21)).op, Op::Invalid);
}

TEST(Decode, NopIsSllZero)
{
    DecodedInst inst = decode(enc::nop());
    EXPECT_EQ(inst.op, Op::Sll);
    EXPECT_EQ(inst.raw, 0u);
    EXPECT_EQ(disassemble(inst), "nop");
}

TEST(Decode, Classification)
{
    EXPECT_TRUE(decode(enc::beq(T0, T1, 4)).isControl());
    EXPECT_TRUE(decode(enc::j(0)).isControl());
    EXPECT_TRUE(decode(enc::jr(RA)).isControl());
    EXPECT_FALSE(decode(enc::addu(T0, T1, T2)).isControl());
    EXPECT_FALSE(decode(enc::syscall()).isControl());

    EXPECT_TRUE(decode(enc::lw(T0, 0, SP)).isMemory());
    EXPECT_TRUE(decode(enc::sb(T0, 0, SP)).isMemory());
    EXPECT_FALSE(decode(enc::addu(T0, T1, T2)).isMemory());

    EXPECT_TRUE(decode(enc::sw(T0, 0, SP)).isStore());
    EXPECT_FALSE(decode(enc::lw(T0, 0, SP)).isStore());

    EXPECT_TRUE(decode(enc::mtc0(T0, 12)).isPrivileged());
    EXPECT_TRUE(decode(enc::rfe()).isPrivileged());
    EXPECT_TRUE(decode(enc::tlbwi()).isPrivileged());
    EXPECT_FALSE(decode(enc::mfux(T0, UxReg::Cond)).isPrivileged());
    EXPECT_FALSE(decode(enc::syscall()).isPrivileged());
}

TEST(Disassemble, RepresentativeFormats)
{
    EXPECT_EQ(disassemble(decode(enc::addu(V0, A0, A1))),
              "addu v0, a0, a1");
    EXPECT_EQ(disassemble(decode(enc::addiu(SP, SP, -32))),
              "addiu sp, sp, -32");
    EXPECT_EQ(disassemble(decode(enc::lw(RA, 28, SP))),
              "lw ra, 28(sp)");
    EXPECT_EQ(disassemble(decode(enc::jr(RA))), "jr ra");
    EXPECT_EQ(disassemble(decode(enc::syscall())), "syscall");
    EXPECT_EQ(disassemble(decode(enc::rfe())), "rfe");
    // branch target rendered PC-relative
    EXPECT_EQ(disassemble(decode(enc::beq(T0, T1, 1)), 0x1000),
              "beq t0, t1, 0x00001008");
}

TEST(Disassemble, NoCrashOnAllOpcodeSpace)
{
    // property: every 1-in-65536 sampled word disassembles without
    // throwing (Invalid decodes render as .word)
    for (std::uint64_t raw = 0; raw <= 0xffffffffull; raw += 65537) {
        DecodedInst inst = decode(static_cast<Word>(raw));
        EXPECT_FALSE(disassemble(inst).empty());
    }
}

TEST(RegNames, Canonical)
{
    EXPECT_STREQ(regName(0), "zero");
    EXPECT_STREQ(regName(V0), "v0");
    EXPECT_STREQ(regName(SP), "sp");
    EXPECT_STREQ(regName(RA), "ra");
}

} // namespace
} // namespace uexc::sim
