/**
 * @file
 * Tests for the watchpoint engine: hit detection, conditional
 * predicates, false-fault accounting, subpage granularity, and
 * cross-mechanism cost ordering.
 */

#include <gtest/gtest.h>

#include "apps/watch/watch.h"
#include "os_test_util.h"

namespace uexc::apps {
namespace {

using namespace os::testutil;
using rt::DeliveryMode;
using rt::UserEnv;

constexpr Addr kRegion = 0x10000000;

struct WatchSetup
{
    explicit WatchSetup(DeliveryMode mode = DeliveryMode::FastSoftware,
                        bool subpages = false)
        : booted(osMachineConfig(true)), env(booted.kernel, mode)
    {
        env.install(kAllExcMask);
        env.allocate(kRegion, os::kPageBytes);
        WatchpointEngine::Config cfg;
        cfg.useSubpages = subpages;
        engine = std::make_unique<WatchpointEngine>(env, cfg);
    }

    BootedKernel booted;
    UserEnv env;
    std::unique_ptr<WatchpointEngine> engine;
};

TEST(Watch, TriggersOnWatchedWordWithOldAndNewValues)
{
    WatchSetup s;
    s.engine->store(kRegion + 0x40, 7);   // before watching: no fault
    EXPECT_EQ(s.engine->stats().faults, 0u);

    Addr seen_addr = 0;
    Word seen_old = 0, seen_new = 0;
    s.engine->watch(kRegion + 0x40,
                    [&](Addr a, Word o, Word n) {
                        seen_addr = a;
                        seen_old = o;
                        seen_new = n;
                    });
    s.engine->store(kRegion + 0x40, 99);
    EXPECT_EQ(seen_addr, kRegion + 0x40);
    EXPECT_EQ(seen_old, 7u);
    EXPECT_EQ(seen_new, 99u);
    EXPECT_EQ(s.engine->stats().triggers, 1u);
    EXPECT_EQ(s.engine->load(kRegion + 0x40), 99u);
}

TEST(Watch, ReArmsAfterEachWrite)
{
    WatchSetup s;
    unsigned count = 0;
    s.engine->watch(kRegion, [&](Addr, Word, Word) { count++; });
    for (unsigned i = 0; i < 5; i++)
        s.engine->store(kRegion, i);
    EXPECT_EQ(count, 5u);
    EXPECT_EQ(s.engine->stats().faults, 5u);
}

TEST(Watch, ConditionalPredicateGatesCallback)
{
    WatchSetup s;
    unsigned count = 0;
    s.engine->watch(kRegion + 8,
                    [&](Addr, Word, Word) { count++; },
                    [](Word v) { return v > 100; });
    s.engine->store(kRegion + 8, 50);    // fault, no trigger
    s.engine->store(kRegion + 8, 150);   // fault + trigger
    s.engine->store(kRegion + 8, 70);    // fault, no trigger
    EXPECT_EQ(count, 1u);
    EXPECT_EQ(s.engine->stats().hits, 3u);
    EXPECT_EQ(s.engine->stats().triggers, 1u);
}

TEST(Watch, SamePageUnwatchedWriteIsFalseFault)
{
    WatchSetup s;   // page granularity
    s.engine->watch(kRegion, [](Addr, Word, Word) {});
    s.engine->store(kRegion + 0x800, 1);  // same page, unwatched word
    EXPECT_EQ(s.engine->stats().falseFaults, 1u);
    EXPECT_EQ(s.engine->stats().hits, 0u);
    EXPECT_EQ(s.engine->load(kRegion + 0x800), 1u);
}

TEST(Watch, SubpageGranularityAvoidsUserFalseFaults)
{
    WatchSetup s(DeliveryMode::FastSoftware, /*subpages=*/true);
    s.engine->watch(kRegion, [](Addr, Word, Word) {});
    // write in a different 1 KB subpage of the same 4 KB page: the
    // kernel emulates it; no user-level fault at all
    s.engine->store(kRegion + 0x800, 42);
    EXPECT_EQ(s.engine->stats().falseFaults, 0u);
    EXPECT_EQ(s.engine->stats().faults, 0u);
    EXPECT_EQ(s.booted.kernel.subpageEmulations(), 1u);
    EXPECT_EQ(s.engine->load(kRegion + 0x800), 42u);
    // while a write in the watched subpage still triggers
    unsigned hits = 0;
    int id = s.engine->watch(kRegion + 4,
                             [&](Addr, Word, Word) { hits++; });
    s.engine->store(kRegion + 4, 1);
    EXPECT_EQ(hits, 1u);
    s.engine->unwatch(id);
}

TEST(Watch, UnwatchDisarms)
{
    WatchSetup s;
    unsigned count = 0;
    int id = s.engine->watch(kRegion, [&](Addr, Word, Word) { count++; });
    s.engine->store(kRegion, 1);
    s.engine->unwatch(id);
    s.engine->store(kRegion, 2);   // no fault, no trigger
    EXPECT_EQ(count, 1u);
    EXPECT_EQ(s.engine->stats().faults, 1u);
    EXPECT_EQ(s.engine->active(), 0u);
}

TEST(Watch, MultipleWatchpointsSharingARegion)
{
    WatchSetup s;
    unsigned a = 0, b = 0;
    s.engine->watch(kRegion, [&](Addr, Word, Word) { a++; });
    int idb = s.engine->watch(kRegion + 4,
                              [&](Addr, Word, Word) { b++; });
    s.engine->store(kRegion, 1);
    s.engine->store(kRegion + 4, 2);
    EXPECT_EQ(a, 1u);
    EXPECT_EQ(b, 1u);
    // removing one keeps the region armed for the other
    s.engine->unwatch(idb);
    s.engine->store(kRegion, 3);
    EXPECT_EQ(a, 2u);
}

class WatchModes : public ::testing::TestWithParam<DeliveryMode> {};

TEST_P(WatchModes, WorksUnderEveryDeliveryMechanism)
{
    WatchSetup s(GetParam());
    Word seen = 0;
    s.engine->watch(kRegion + 16, [&](Addr, Word, Word n) { seen = n; });
    s.engine->store(kRegion + 16, 1234);
    EXPECT_EQ(seen, 1234u);
    EXPECT_EQ(s.engine->load(kRegion + 16), 1234u);
    // repeated writes keep working
    s.engine->store(kRegion + 16, 5678);
    EXPECT_EQ(seen, 5678u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, WatchModes,
    ::testing::Values(DeliveryMode::UltrixSignal,
                      DeliveryMode::FastSoftware,
                      DeliveryMode::FastHardwareVector),
    [](const ::testing::TestParamInfo<DeliveryMode> &info) {
        switch (info.param) {
          case DeliveryMode::UltrixSignal: return "Ultrix";
          case DeliveryMode::FastSoftware: return "FastSw";
          default: return "FastHw";
        }
    });

TEST(WatchCost, FastMechanismsReduceWatchOverhead)
{
    auto cost = [](DeliveryMode mode) {
        WatchSetup s(mode);
        s.engine->watch(kRegion, [](Addr, Word, Word) {});
        s.engine->store(kRegion, 0);   // warm
        Cycles before = s.env.cycles();
        for (unsigned i = 0; i < 10; i++)
            s.engine->store(kRegion, i);
        return s.env.cycles() - before;
    };
    Cycles ultrix = cost(DeliveryMode::UltrixSignal);
    Cycles fast = cost(DeliveryMode::FastSoftware);
    Cycles hw = cost(DeliveryMode::FastHardwareVector);
    EXPECT_LT(fast, ultrix);
    EXPECT_LT(hw, fast);
}

} // namespace
} // namespace uexc::apps
