/**
 * @file
 * Randomized differential tests: the simulated CPU's arithmetic,
 * logical, shift, multiply/divide and comparison results are checked
 * against host-computed reference semantics over hundreds of random
 * operand pairs, and random straight-line programs must retire
 * exactly as many instructions as they contain.
 */

#include <gtest/gtest.h>

#include <random>

#include "sim_test_util.h"

namespace uexc::sim {
namespace {

using testutil::BareMachine;

struct BinOp
{
    const char *name;
    Word (*encode)(unsigned, unsigned, unsigned);
    Word (*eval)(Word, Word);
};

const BinOp kBinOps[] = {
    {"addu", enc::addu, [](Word a, Word b) { return a + b; }},
    {"subu", enc::subu, [](Word a, Word b) { return a - b; }},
    {"and", enc::and_, [](Word a, Word b) { return a & b; }},
    {"or", enc::or_, [](Word a, Word b) { return a | b; }},
    {"xor", enc::xor_, [](Word a, Word b) { return a ^ b; }},
    {"nor", enc::nor, [](Word a, Word b) { return ~(a | b); }},
    {"slt", enc::slt,
     [](Word a, Word b) {
         return Word(static_cast<SWord>(a) < static_cast<SWord>(b));
     }},
    {"sltu", enc::sltu, [](Word a, Word b) { return Word(a < b); }},
    {"sllv", enc::sllv,
     [](Word a, Word b) { return a << (b & 31); }},
    {"srlv", enc::srlv,
     [](Word a, Word b) { return a >> (b & 31); }},
    {"srav", enc::srav,
     [](Word a, Word b) {
         return static_cast<Word>(static_cast<SWord>(a) >> (b & 31));
     }},
};

class RandomAlu : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomAlu, MatchesHostSemantics)
{
    std::mt19937 rng(GetParam());
    for (int trial = 0; trial < 40; trial++) {
        Word a = rng();
        Word b = rng();
        const BinOp &op = kBinOps[rng() % std::size(kBinOps)];

        BareMachine m;
        m.loadAsm([&](Assembler &as) {
            as.li32(T0, a);
            as.li32(T1, b);
            // note: sllv/srlv/srav take (rd, rt=value, rs=amount);
            // the encode helpers below expect (rd, rs, rt) for the
            // arithmetic group, so dispatch accordingly
            if (op.encode == enc::sllv || op.encode == enc::srlv ||
                op.encode == enc::srav) {
                as.emit(op.encode(V0, T0, T1));  // rd, rt, rs
            } else {
                as.emit(op.encode(V0, T0, T1));  // rd, rs, rt
            }
            as.hcall(0);
        });
        m.runToHalt();
        Word expected;
        if (op.encode == enc::sllv || op.encode == enc::srlv ||
            op.encode == enc::srav) {
            // encoded as (rd=V0, rt=T0, rs=T1): value in T0 (= a),
            // shift amount in T1 (= b)
            expected = op.eval(a, b);
        } else {
            expected = op.eval(a, b);
        }
        EXPECT_EQ(m.cpu().reg(V0), expected)
            << op.name << "(" << a << ", " << b << ")";
    }
}

TEST_P(RandomAlu, MultDivAgainstHost64Bit)
{
    std::mt19937 rng(GetParam() ^ 0x9e3779b9u);
    for (int trial = 0; trial < 20; trial++) {
        Word a = rng();
        Word b = rng() | 1;   // avoid divide-by-zero UNPREDICTABLE
        BareMachine m;
        m.loadAsm([&](Assembler &as) {
            as.li32(T0, a);
            as.li32(T1, b);
            as.multu(T0, T1);
            as.mfhi(V0);
            as.mflo(V1);
            as.divu(T0, T1);
            as.mfhi(A0);
            as.mflo(A1);
            as.hcall(0);
        });
        m.runToHalt();
        std::uint64_t prod = static_cast<std::uint64_t>(a) * b;
        EXPECT_EQ(m.cpu().reg(V0), Word(prod >> 32));
        EXPECT_EQ(m.cpu().reg(V1), Word(prod));
        EXPECT_EQ(m.cpu().reg(A0), a % b);
        EXPECT_EQ(m.cpu().reg(A1), a / b);
    }
}

TEST_P(RandomAlu, StraightLineProgramsRetireExactly)
{
    std::mt19937 rng(GetParam() ^ 0x1234567u);
    unsigned n = 20 + rng() % 100;
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        for (unsigned i = 0; i < n; i++) {
            switch (rng() % 4) {
              case 0: as.addiu(T0, T0, SWord(rng() % 1000)); break;
              case 1: as.ori(T1, T0, rng() & 0xffff); break;
              case 2: as.sll(T2, T1, rng() % 32); break;
              default: as.xor_(T3, T0, T1); break;
            }
        }
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().instret(), n + 1);
    EXPECT_EQ(m.cpu().stats().exceptionsTaken, 0u);
}

TEST_P(RandomAlu, MemoryPatternRoundTrip)
{
    std::mt19937 rng(GetParam() ^ 0xabcdefu);
    // write a random pattern through guest stores, read it back
    // through guest loads: verifies address computation end to end
    std::vector<Word> pattern(32);
    for (Word &w : pattern)
        w = rng();
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        as.la(T0, "buf");
        for (unsigned i = 0; i < pattern.size(); i++) {
            as.li32(T1, pattern[i]);
            as.sw(T1, SWord(4 * i), T0);
        }
        Word checksum = 0;
        as.li(V0, 0);
        for (unsigned i = 0; i < pattern.size(); i++) {
            as.lw(T1, SWord(4 * i), T0);
            as.xor_(V0, V0, T1);
            checksum ^= pattern[i];
        }
        as.li32(V1, checksum);
        as.hcall(0);
        as.align(8);
        as.label("buf");
        as.space(4 * static_cast<unsigned>(pattern.size()));
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(V0), m.cpu().reg(V1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAlu,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u,
                                           21u, 34u));

// -- lockstep differential fuzz ----------------------------------------------
//
// Seeded random guest programs executed on the reference interpreter
// and on the predecoded fast path (CpuConfig::fastInterpreter), then
// compared architecturally bit-for-bit: registers, CP0, TLB, memory
// and the cycle/statistics counters. The generator deliberately
// produces the sequences the fast path must invalidate on: faulting
// loads and stores (including in branch delay slots), TLB-modifying
// instruction sequences with mapped kuseg accesses through the fresh
// entries, and stores into the instruction stream ahead of execution.
// A failure prints the seed and a disassembly of the whole program.

constexpr unsigned kFuzzShards = 8;
constexpr unsigned kSeedsPerShard = 125; // 1000 seeds total

constexpr Addr kMapVa = 0x2000;      // kuseg page accessed via the TLB
constexpr Addr kMapFrame = 0x30000;  // physical frame it maps to
constexpr InstCount kFuzzInstLimit = 30'000;

const unsigned kDataRegs[] = {T0, T1, T2, T3, T4, T5, T6, T7,
                              S0, S1, S2, S3, V0, V1, A0, A1, A2, A3};

/** Emits one random program; block labels keep all branches forward
 *  except the explicitly bounded backward loops. */
struct FuzzGen
{
    Assembler &as;
    std::mt19937 &rng;
    unsigned patches = 0;
    unsigned loops = 0;
    std::vector<std::string> pendingPatches; // placed at next block start

    unsigned reg() { return kDataRegs[rng() % std::size(kDataRegs)]; }

    /** Exception-free non-control filler, safe in a delay slot. */
    void safeOp()
    {
        unsigned r = reg(), a = reg(), b = reg();
        switch (rng() % 8) {
          case 0: as.addu(r, a, b); break;
          case 1: as.subu(r, a, b); break;
          case 2: as.xor_(r, a, b); break;
          case 3: as.and_(r, a, b); break;
          case 4: as.or_(r, a, b); break;
          case 5: as.sll(r, a, rng() % 32); break;
          case 6: as.addiu(r, a, SWord(rng() % 4096) - 2048); break;
          default: as.sltu(r, a, b); break;
        }
    }

    /** Mostly safe; sometimes a misaligned load so exceptions are
     *  raised from branch delay slots. */
    void delaySlot()
    {
        if (rng() % 5 == 0)
            as.lw(reg(), SWord(1 + 2 * (rng() % 2)), T9);
        else
            safeOp();
    }

    void memOp()
    {
        unsigned r = reg();
        SWord off = SWord(4 * (rng() % 60));
        if (rng() % 8 == 0)
            off += 1 + SWord(rng() % 3); // misaligned word/half access
        switch (rng() % 8) {
          case 0: as.lw(r, off, T9); break;
          case 1: as.sw(r, off, T9); break;
          case 2: as.lh(r, off & ~1, T9); break;
          case 3: as.lhu(r, off, T9); break;
          case 4: as.lb(r, off, T9); break;
          case 5: as.lbu(r, off, T9); break;
          case 6: as.sh(r, off, T9); break;
          default: as.sb(r, off, T9); break;
        }
    }

    void multDiv()
    {
        unsigned a = reg(), b = reg();
        switch (rng() % 8) {
          case 0: as.mult(a, b); break;
          case 1: as.multu(a, b); break;
          case 2: as.div(a, b); break;
          case 3: as.divu(a, b); break;
          case 4: as.mfhi(reg()); break;
          case 5: as.mflo(reg()); break;
          case 6: as.mthi(a); break;
          default: as.mtlo(a); break;
        }
    }

    void branchTo(const std::string &target)
    {
        unsigned a = reg(), b = reg();
        switch (rng() % 6) {
          case 0: as.beq(a, b, target); break;
          case 1: as.bne(a, b, target); break;
          case 2: as.blez(a, target); break;
          case 3: as.bgtz(a, target); break;
          case 4: as.bltz(a, target); break;
          default: as.bgez(a, target); break;
        }
        delaySlot();
    }

    /** A bounded counted loop: the only backward control flow. */
    void boundedLoop()
    {
        std::string head = "loop" + std::to_string(loops++);
        as.li(S7, 2 + rng() % 5);
        as.label(head);
        unsigned n = 1 + rng() % 3;
        for (unsigned i = 0; i < n; i++)
            safeOp();
        as.addiu(S7, S7, -1);
        as.bne(S7, Zero, head);
        delaySlot();
    }

    /** Rewrite a random TLB entry, then access kuseg through it. The
     *  entry is sometimes read-only (store -> Mod fault) and
     *  sometimes invalid (access faults); the skip handlers step
     *  over the faulting access either way. */
    void tlbSequence()
    {
        unsigned t = reg(), u = reg();
        Word lo = (kMapFrame & entrylo::PfnMask) | entrylo::V;
        if (rng() % 2)
            lo |= entrylo::D;
        if (rng() % 4 == 0)
            lo &= ~Word(entrylo::V);
        as.li32(t, kMapVa & entryhi::VpnMask); // asid 0 = current
        as.mtc0(t, cp0reg::EntryHi);
        as.li32(t, lo);
        as.mtc0(t, cp0reg::EntryLo);
        if (rng() % 4 == 0) {
            as.tlbwr();
        } else {
            as.li32(t, (8 + rng() % 56) << 8);
            as.mtc0(t, cp0reg::Index);
            as.tlbwi();
        }
        if (rng() % 4 == 0) {
            as.tlbp();
            as.tlbr();
        }
        as.li32(u, kMapVa);
        if (rng() % 2)
            as.sw(reg(), SWord(4 * (rng() % 16)), u);
        else
            as.lw(reg(), SWord(4 * (rng() % 16)), u);
    }

    /** Store a fresh (harmless) instruction over a nop a few blocks
     *  ahead, inside the page currently being executed: the fast
     *  path must re-decode before reaching it. */
    void patchAhead()
    {
        std::string site = "patch" + std::to_string(patches++);
        unsigned r = reg();
        as.la(T8, site);
        as.li32(r, enc::addiu(reg(), reg(), SWord(rng() % 64)));
        as.sw(r, 0, T8);
        pendingPatches.push_back(site);
    }

    void emitBlock(const std::string &next)
    {
        for (const std::string &site : pendingPatches) {
            as.label(site);
            as.nop(); // overwritten by the earlier store
        }
        pendingPatches.clear();

        unsigned n = 2 + rng() % 5;
        for (unsigned i = 0; i < n; i++) {
            unsigned kind = rng() % 100;
            if (kind < 40) {
                safeOp();
            } else if (kind < 55) {
                memOp();
            } else if (kind < 65) {
                multDiv();
            } else if (kind < 72) {
                // overflow-prone signed arithmetic (Ov is skipped)
                unsigned a = reg(), b = reg();
                as.li32(a, 0x7fffff00u + rng() % 512);
                as.li32(b, rng() % 1024);
                if (rng() % 2)
                    as.add(reg(), a, b);
                else
                    as.addi(reg(), a, SWord(rng() % 2048));
            } else if (kind < 79) {
                boundedLoop();
            } else if (kind < 86) {
                tlbSequence();
            } else if (kind < 93) {
                patchAhead();
            } else if (i > 0) {
                break; // end the block early
            } else {
                safeOp(); // keep every block non-empty
            }
        }
        if (rng() % 3 == 0) {
            as.j(next);
            delaySlot();
        } else {
            branchTo(next);
        }
    }
};

Program
buildFuzzProgram(unsigned seed)
{
    std::mt19937 rng(seed);
    Assembler as(testutil::kTestOrigin);
    FuzzGen gen{as, rng, 0, 0, {}};

    as.la(T9, "buf");
    for (unsigned r : kDataRegs)
        as.li32(r, rng());

    unsigned blocks = 6 + rng() % 10;
    for (unsigned b = 0; b < blocks; b++) {
        as.label("B" + std::to_string(b));
        gen.emitBlock("B" + std::to_string(b + 1));
    }
    as.label("B" + std::to_string(blocks));
    for (const std::string &site : gen.pendingPatches) {
        as.label(site);
        as.nop();
    }
    as.hcall(0);
    as.align(8);
    as.label("buf");
    as.space(256);
    return as.finalize();
}

void
installFuzzSkipHandlers(Machine &m)
{
    for (Addr vector : {Cpu::RefillVector, Cpu::GeneralVector}) {
        Assembler a(vector);
        a.mfc0(K0, cp0reg::Epc);
        a.addiu(K0, K0, 4);
        a.jr(K0);
        a.rfe(); // delay slot
        m.load(a.finalize());
    }
}

void
expectLockstepState(Machine &ref, Machine &fst)
{
    const Cpu &rc = ref.cpu();
    const Cpu &fc = fst.cpu();
    for (unsigned r = 0; r < NumRegs; r++)
        EXPECT_EQ(rc.reg(r), fc.reg(r)) << "GPR " << regName(r);
    EXPECT_EQ(rc.hi(), fc.hi());
    EXPECT_EQ(rc.lo(), fc.lo());
    EXPECT_EQ(rc.pc(), fc.pc());
    EXPECT_EQ(rc.npc(), fc.npc());

    static const unsigned cp0_regs[] = {
        cp0reg::Index, cp0reg::Random, cp0reg::EntryLo, cp0reg::Context,
        cp0reg::BadVAddr, cp0reg::EntryHi, cp0reg::Status, cp0reg::Cause,
        cp0reg::Epc,
    };
    for (unsigned r : cp0_regs)
        EXPECT_EQ(rc.cp0().read(r), fc.cp0().read(r)) << "CP0 reg " << r;

    for (unsigned i = 0; i < Tlb::NumEntries; i++) {
        EXPECT_EQ(rc.tlb().entry(i).hi, fc.tlb().entry(i).hi)
            << "TLB entry " << i;
        EXPECT_EQ(rc.tlb().entry(i).lo, fc.tlb().entry(i).lo)
            << "TLB entry " << i;
    }

    const CpuStats &rs = rc.stats();
    const CpuStats &fs = fc.stats();
    EXPECT_EQ(rs.instructions, fs.instructions);
    EXPECT_EQ(rs.cycles, fs.cycles);
    EXPECT_EQ(rs.branches, fs.branches);
    EXPECT_EQ(rs.exceptionsTaken, fs.exceptionsTaken);
    for (unsigned c = 0; c < NumExcCodes; c++)
        EXPECT_EQ(rs.perExcCode[c], fs.perExcCode[c]) << "exc code " << c;
    EXPECT_EQ(rc.tlb().stats().lookups, fc.tlb().stats().lookups);
    EXPECT_EQ(rc.tlb().stats().misses, fc.tlb().stats().misses);

    ASSERT_EQ(ref.mem().size(), fst.mem().size());
    std::vector<Word> rmem(ref.mem().size() / 4);
    std::vector<Word> fmem(fst.mem().size() / 4);
    ref.mem().readBlock(0, rmem.data(), ref.mem().size());
    fst.mem().readBlock(0, fmem.data(), fst.mem().size());
    unsigned reported = 0;
    for (std::size_t i = 0; i < rmem.size() && reported < 4; i++) {
        if (rmem[i] != fmem[i]) {
            ADD_FAILURE() << "memory differs at paddr 0x" << std::hex
                          << (i * 4) << ": ref 0x" << rmem[i]
                          << " fast 0x" << fmem[i];
            reported++;
        }
    }
}

void
runLockstepSeed(unsigned seed)
{
    SCOPED_TRACE(::testing::Message() << "fuzz seed " << seed);

    MachineConfig ref_cfg;
    ref_cfg.memBytes = 1 << 18;
    MachineConfig fst_cfg = ref_cfg;
    fst_cfg.cpu.fastInterpreter = true;
    testutil::BareMachine ref(ref_cfg);
    testutil::BareMachine fst(fst_cfg);

    Program prog = buildFuzzProgram(seed);
    for (testutil::BareMachine *m : {&ref, &fst}) {
        installFuzzSkipHandlers(m->machine);
        m->machine.load(prog);
        m->cpu().setPc(testutil::kTestOrigin);
    }

    RunResult r = ref.cpu().run(kFuzzInstLimit);
    RunResult f = fst.cpu().run(kFuzzInstLimit);
    EXPECT_EQ(static_cast<int>(r.reason), static_cast<int>(f.reason));
    EXPECT_EQ(r.instsExecuted, f.instsExecuted);
    expectLockstepState(ref.machine, fst.machine);

    if (::testing::Test::HasNonfatalFailure()) {
        ::testing::Message dump;
        dump << "program for failing seed " << seed << ":\n";
        for (std::size_t i = 0; i < prog.words.size(); i++) {
            Addr pc = prog.origin + 4 * static_cast<Addr>(i);
            dump << "  " << std::hex << pc << ": "
                 << disassemble(decode(prog.words[i]), pc) << "\n";
        }
        ADD_FAILURE() << dump;
    }
}

class LockstepFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(LockstepFuzz, RandomProgramsAgreeAcrossInterpreters)
{
    const unsigned base = GetParam() * kSeedsPerShard;
    for (unsigned s = 0; s < kSeedsPerShard; s++) {
        runLockstepSeed(base + s);
        if (::testing::Test::HasNonfatalFailure())
            break; // first failing seed is dumped; stop the shard
    }
}

INSTANTIATE_TEST_SUITE_P(Shards, LockstepFuzz,
                         ::testing::Range(0u, kFuzzShards));

} // namespace
} // namespace uexc::sim
