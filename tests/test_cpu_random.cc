/**
 * @file
 * Randomized differential tests: the simulated CPU's arithmetic,
 * logical, shift, multiply/divide and comparison results are checked
 * against host-computed reference semantics over hundreds of random
 * operand pairs, and random straight-line programs must retire
 * exactly as many instructions as they contain.
 */

#include <gtest/gtest.h>

#include <random>

#include "fuzz_util.h"
#include "sim_test_util.h"

namespace uexc::sim {
namespace {

using testutil::BareMachine;
using namespace fuzzutil;

struct BinOp
{
    const char *name;
    Word (*encode)(unsigned, unsigned, unsigned);
    Word (*eval)(Word, Word);
};

const BinOp kBinOps[] = {
    {"addu", enc::addu, [](Word a, Word b) { return a + b; }},
    {"subu", enc::subu, [](Word a, Word b) { return a - b; }},
    {"and", enc::and_, [](Word a, Word b) { return a & b; }},
    {"or", enc::or_, [](Word a, Word b) { return a | b; }},
    {"xor", enc::xor_, [](Word a, Word b) { return a ^ b; }},
    {"nor", enc::nor, [](Word a, Word b) { return ~(a | b); }},
    {"slt", enc::slt,
     [](Word a, Word b) {
         return Word(static_cast<SWord>(a) < static_cast<SWord>(b));
     }},
    {"sltu", enc::sltu, [](Word a, Word b) { return Word(a < b); }},
    {"sllv", enc::sllv,
     [](Word a, Word b) { return a << (b & 31); }},
    {"srlv", enc::srlv,
     [](Word a, Word b) { return a >> (b & 31); }},
    {"srav", enc::srav,
     [](Word a, Word b) {
         return static_cast<Word>(static_cast<SWord>(a) >> (b & 31));
     }},
};

class RandomAlu : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomAlu, MatchesHostSemantics)
{
    std::mt19937 rng(GetParam());
    for (int trial = 0; trial < 40; trial++) {
        Word a = rng();
        Word b = rng();
        const BinOp &op = kBinOps[rng() % std::size(kBinOps)];

        BareMachine m;
        m.loadAsm([&](Assembler &as) {
            as.li32(T0, a);
            as.li32(T1, b);
            // note: sllv/srlv/srav take (rd, rt=value, rs=amount);
            // the encode helpers below expect (rd, rs, rt) for the
            // arithmetic group, so dispatch accordingly
            if (op.encode == enc::sllv || op.encode == enc::srlv ||
                op.encode == enc::srav) {
                as.emit(op.encode(V0, T0, T1));  // rd, rt, rs
            } else {
                as.emit(op.encode(V0, T0, T1));  // rd, rs, rt
            }
            as.hcall(0);
        });
        m.runToHalt();
        Word expected;
        if (op.encode == enc::sllv || op.encode == enc::srlv ||
            op.encode == enc::srav) {
            // encoded as (rd=V0, rt=T0, rs=T1): value in T0 (= a),
            // shift amount in T1 (= b)
            expected = op.eval(a, b);
        } else {
            expected = op.eval(a, b);
        }
        EXPECT_EQ(m.cpu().reg(V0), expected)
            << op.name << "(" << a << ", " << b << ")";
    }
}

TEST_P(RandomAlu, MultDivAgainstHost64Bit)
{
    std::mt19937 rng(GetParam() ^ 0x9e3779b9u);
    for (int trial = 0; trial < 20; trial++) {
        Word a = rng();
        Word b = rng() | 1;   // avoid divide-by-zero UNPREDICTABLE
        BareMachine m;
        m.loadAsm([&](Assembler &as) {
            as.li32(T0, a);
            as.li32(T1, b);
            as.multu(T0, T1);
            as.mfhi(V0);
            as.mflo(V1);
            as.divu(T0, T1);
            as.mfhi(A0);
            as.mflo(A1);
            as.hcall(0);
        });
        m.runToHalt();
        std::uint64_t prod = static_cast<std::uint64_t>(a) * b;
        EXPECT_EQ(m.cpu().reg(V0), Word(prod >> 32));
        EXPECT_EQ(m.cpu().reg(V1), Word(prod));
        EXPECT_EQ(m.cpu().reg(A0), a % b);
        EXPECT_EQ(m.cpu().reg(A1), a / b);
    }
}

TEST_P(RandomAlu, StraightLineProgramsRetireExactly)
{
    std::mt19937 rng(GetParam() ^ 0x1234567u);
    unsigned n = 20 + rng() % 100;
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        for (unsigned i = 0; i < n; i++) {
            switch (rng() % 4) {
              case 0: as.addiu(T0, T0, SWord(rng() % 1000)); break;
              case 1: as.ori(T1, T0, rng() & 0xffff); break;
              case 2: as.sll(T2, T1, rng() % 32); break;
              default: as.xor_(T3, T0, T1); break;
            }
        }
        as.hcall(0);
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().instret(), n + 1);
    EXPECT_EQ(m.cpu().stats().exceptionsTaken, 0u);
}

TEST_P(RandomAlu, MemoryPatternRoundTrip)
{
    std::mt19937 rng(GetParam() ^ 0xabcdefu);
    // write a random pattern through guest stores, read it back
    // through guest loads: verifies address computation end to end
    std::vector<Word> pattern(32);
    for (Word &w : pattern)
        w = rng();
    BareMachine m;
    m.loadAsm([&](Assembler &as) {
        as.la(T0, "buf");
        for (unsigned i = 0; i < pattern.size(); i++) {
            as.li32(T1, pattern[i]);
            as.sw(T1, SWord(4 * i), T0);
        }
        Word checksum = 0;
        as.li(V0, 0);
        for (unsigned i = 0; i < pattern.size(); i++) {
            as.lw(T1, SWord(4 * i), T0);
            as.xor_(V0, V0, T1);
            checksum ^= pattern[i];
        }
        as.li32(V1, checksum);
        as.hcall(0);
        as.align(8);
        as.label("buf");
        as.space(4 * static_cast<unsigned>(pattern.size()));
    });
    m.runToHalt();
    EXPECT_EQ(m.cpu().reg(V0), m.cpu().reg(V1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAlu,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u,
                                           21u, 34u));

// -- lockstep differential fuzz ----------------------------------------------
//
// Seeded random guest programs executed on the reference interpreter
// and on the predecoded fast path (CpuConfig::fastInterpreter), then
// compared architecturally bit-for-bit: registers, CP0, TLB, memory
// and the cycle/statistics counters. The generator deliberately
// produces the sequences the fast path must invalidate on: faulting
// loads and stores (including in branch delay slots), TLB-modifying
// instruction sequences with mapped kuseg accesses through the fresh
// entries, and stores into the instruction stream ahead of execution.
// A failure prints the seed and a disassembly of the whole program.

constexpr unsigned kFuzzShards = 8;
constexpr unsigned kSeedsPerShard = 125; // 1000 seeds total

void
runLockstepSeed(unsigned seed)
{
    SCOPED_TRACE(::testing::Message() << "fuzz seed " << seed);

    MachineConfig ref_cfg;
    ref_cfg.memBytes = 1 << 18;
    MachineConfig fst_cfg = ref_cfg;
    fst_cfg.cpu.fastInterpreter = true;
    testutil::BareMachine ref(ref_cfg);
    testutil::BareMachine fst(fst_cfg);

    Program prog = buildFuzzProgram(seed);
    for (testutil::BareMachine *m : {&ref, &fst}) {
        installFuzzSkipHandlers(m->machine);
        m->machine.load(prog);
        m->cpu().setPc(testutil::kTestOrigin);
    }

    RunResult r = ref.cpu().run(kFuzzInstLimit);
    RunResult f = fst.cpu().run(kFuzzInstLimit);
    EXPECT_EQ(static_cast<int>(r.reason), static_cast<int>(f.reason));
    EXPECT_EQ(r.instsExecuted, f.instsExecuted);
    expectLockstepState(ref.machine, fst.machine);

    if (::testing::Test::HasNonfatalFailure()) {
        ::testing::Message dump;
        dump << "program for failing seed " << seed << ":\n";
        for (std::size_t i = 0; i < prog.words.size(); i++) {
            Addr pc = prog.origin + 4 * static_cast<Addr>(i);
            dump << "  " << std::hex << pc << ": "
                 << disassemble(decode(prog.words[i]), pc) << "\n";
        }
        ADD_FAILURE() << dump;
    }
}

class LockstepFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(LockstepFuzz, RandomProgramsAgreeAcrossInterpreters)
{
    const unsigned base = GetParam() * kSeedsPerShard;
    for (unsigned s = 0; s < kSeedsPerShard; s++) {
        runLockstepSeed(base + s);
        if (::testing::Test::HasNonfatalFailure())
            break; // first failing seed is dumped; stop the shard
    }
}

INSTANTIATE_TEST_SUITE_P(Shards, LockstepFuzz,
                         ::testing::Range(0u, kFuzzShards));

} // namespace
} // namespace uexc::sim
