/**
 * @file
 * Tests for the generational conservative collector: allocation,
 * reachability, promotion, and all three write-barrier strategies
 * across delivery mechanisms.
 */

#include <gtest/gtest.h>

#include "apps/gc/gc.h"
#include "apps/gc/workloads.h"
#include "os_test_util.h"

namespace uexc::apps {
namespace {

using namespace os::testutil;
using rt::DeliveryMode;
using rt::UserEnv;

struct GcSetup
{
    explicit GcSetup(DeliveryMode mode = DeliveryMode::FastSoftware,
                     BarrierKind barrier = BarrierKind::PageProtection)
        : booted(osMachineConfig(true)), env(booted.kernel, mode)
    {
        env.install(kAllExcMask);
        Collector::Config cfg;
        cfg.barrier = barrier;
        gc = std::make_unique<Collector>(env, cfg);
    }

    BootedKernel booted;
    UserEnv env;
    std::unique_ptr<Collector> gc;
};

TEST(Gc, AllocReturnsZeroedDistinctObjects)
{
    GcSetup s;
    Addr a = s.gc->alloc(4);
    Addr b = s.gc->alloc(4);
    EXPECT_NE(a, b);
    for (unsigned i = 0; i < 4; i++) {
        EXPECT_EQ(s.gc->readWord(a, i), 0u);
    }
    s.gc->writeWord(a, 2, 0x1234);
    EXPECT_EQ(s.gc->readWord(a, 2), 0x1234u);
    EXPECT_EQ(s.gc->readWord(b, 2), 0u);
    EXPECT_EQ(s.gc->stats().allocations, 2u);
}

TEST(Gc, CollectionReclaimsUnreachable)
{
    GcSetup s;
    Addr kept = s.gc->alloc(2);
    s.gc->setRoot(0, kept);
    for (int i = 0; i < 100; i++)
        s.gc->alloc(2);  // garbage
    EXPECT_EQ(s.gc->liveObjects(), 101u);
    s.gc->collect();
    EXPECT_EQ(s.gc->liveObjects(), 1u);
    EXPECT_TRUE(s.gc->isObject(kept));
    EXPECT_EQ(s.gc->stats().objectsSwept, 100u);
}

TEST(Gc, ReachabilityThroughPointerChains)
{
    GcSetup s;
    // a chain root -> a -> b -> c
    Addr c = s.gc->alloc(2);
    Addr b = s.gc->alloc(2);
    Addr a = s.gc->alloc(2);
    s.gc->writeWord(a, 0, b);
    s.gc->writeWord(b, 0, c);
    s.gc->setRoot(0, a);
    for (int i = 0; i < 50; i++)
        s.gc->alloc(2);
    s.gc->collect();
    EXPECT_TRUE(s.gc->isObject(a));
    EXPECT_TRUE(s.gc->isObject(b));
    EXPECT_TRUE(s.gc->isObject(c));
    EXPECT_EQ(s.gc->readWord(a, 0), b);
}

TEST(Gc, SurvivorsArePromotedToOld)
{
    GcSetup s;
    Addr kept = s.gc->alloc(2);
    s.gc->setRoot(0, kept);
    EXPECT_FALSE(s.gc->isOld(kept));
    s.gc->collect();
    EXPECT_TRUE(s.gc->isOld(kept));
    EXPECT_GE(s.gc->stats().blocksPromoted, 1u);
}

TEST(Gc, AllocationBudgetTriggersCollections)
{
    GcSetup s;
    for (int i = 0; i < 30000; i++)
        s.gc->alloc(2);  // 12 bytes each, budget 256 KB
    EXPECT_GE(s.gc->stats().collections, 1u);
}

TEST(Gc, OldToYoungPointerKeepsYoungAliveViaPageBarrier)
{
    GcSetup s;
    Addr old_obj = s.gc->alloc(2);
    s.gc->setRoot(0, old_obj);
    s.gc->collect();                   // promotes old_obj
    ASSERT_TRUE(s.gc->isOld(old_obj));

    // store a fresh young object into the (protected) old object:
    // this is the barrier fault
    Addr young = s.gc->alloc(2);
    s.gc->writeWord(young, 1, 0xbeef);
    s.gc->writeWord(old_obj, 0, young);
    EXPECT_GE(s.gc->stats().barrierFaults, 1u);

    // young is reachable only through the old object
    s.gc->collect();
    EXPECT_TRUE(s.gc->isObject(young));
    EXPECT_EQ(s.gc->readWord(young, 1), 0xbeefu);
}

TEST(Gc, UnrecordedYoungIsCollectedDespiteOldStore)
{
    GcSetup s;
    Addr old_obj = s.gc->alloc(2);
    s.gc->setRoot(0, old_obj);
    s.gc->collect();
    // no store into old: a young object with no root dies
    Addr young = s.gc->alloc(2);
    s.gc->collect();
    EXPECT_FALSE(s.gc->isObject(young));
    (void)old_obj;
}

TEST(Gc, SoftwareCheckBarrierTracksOldToYoung)
{
    GcSetup s(DeliveryMode::FastSoftware, BarrierKind::SoftwareCheck);
    Addr old_obj = s.gc->alloc(2);
    s.gc->setRoot(0, old_obj);
    s.gc->collect();
    ASSERT_TRUE(s.gc->isOld(old_obj));

    Addr young = s.gc->alloc(2);
    s.gc->writeWord(old_obj, 0, young);
    EXPECT_GE(s.gc->stats().barrierChecks, 1u);
    EXPECT_EQ(s.gc->stats().barrierFaults, 0u);
    EXPECT_EQ(s.env.stats().faultsDelivered, 0u);

    s.gc->collect();
    EXPECT_TRUE(s.gc->isObject(young));
}

TEST(Gc, LargeOldObjectSpansBlocks)
{
    GcSetup s;
    Addr big = s.gc->allocOld(4000);   // ~16 KB: 4+ blocks
    s.gc->setRoot(0, big);
    EXPECT_TRUE(s.gc->isOld(big));
    s.gc->writeWord(big, 3999, 42);    // last word, other block
    EXPECT_EQ(s.gc->readWord(big, 3999), 42u);
    // the store faulted (old blocks are protected after allocOld)
    EXPECT_GE(s.gc->stats().barrierFaults, 1u);

    // a young object stored deep into the large object is found by
    // the dirty-page scan
    Addr young = s.gc->alloc(2);
    s.gc->writeWord(big, 3000, young);
    s.gc->collect();
    EXPECT_TRUE(s.gc->isObject(young));
}

class GcModes : public ::testing::TestWithParam<DeliveryMode> {};

TEST_P(GcModes, BarrierWorksUnderEveryDeliveryMechanism)
{
    GcSetup s(GetParam(), BarrierKind::PageProtection);
    Addr old_obj = s.gc->alloc(2);
    s.gc->setRoot(0, old_obj);
    s.gc->collect();

    Addr young = s.gc->alloc(2);
    s.gc->writeWord(young, 0, 7u);
    s.gc->writeWord(old_obj, 1, young);
    EXPECT_GE(s.gc->stats().barrierFaults, 1u);
    s.gc->collect();
    EXPECT_TRUE(s.gc->isObject(young));
    EXPECT_EQ(s.gc->readWord(young, 0), 7u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, GcModes,
    ::testing::Values(DeliveryMode::UltrixSignal,
                      DeliveryMode::FastSoftware,
                      DeliveryMode::FastHardwareVector),
    [](const ::testing::TestParamInfo<DeliveryMode> &info) {
        switch (info.param) {
          case DeliveryMode::UltrixSignal: return "Ultrix";
          case DeliveryMode::FastSoftware: return "FastSw";
          default: return "FastHw";
        }
    });

TEST(GcWorkloads, LispOpsRunsInPaperRegime)
{
    BootedKernel bk(osMachineConfig(true));
    UserEnv env(bk.kernel, DeliveryMode::FastSoftware);
    env.install(kAllExcMask);
    GcWorkloadParams params;
    params.lispIterations = 30;   // shortened for the test suite
    params.lispTreeDepth = 8;
    params.youngBudgetBytes = 24 * 1024;
    GcRunResult r = runLispOps(env, BarrierKind::PageProtection, params);
    EXPECT_GT(r.gc.collections, 0u);
    EXPECT_GT(r.gc.barrierFaults, 0u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(GcWorkloads, ArrayTestFaultsOnOldArrayPages)
{
    BootedKernel bk(osMachineConfig(true));
    UserEnv env(bk.kernel, DeliveryMode::FastSoftware);
    env.install(kAllExcMask);
    GcWorkloadParams params;
    params.arrayWords = 32 * 1024;
    params.arrayReplacements = 12000;
    params.arrayYoungBudgetBytes = 32 * 1024;
    GcRunResult r = runArrayTest(env, BarrierKind::PageProtection,
                                 params);
    EXPECT_GT(r.gc.barrierFaults, 100u);
    EXPECT_GT(r.gc.collections, 0u);
}

TEST(GcWorkloads, FastExceptionsBeatUltrixOnArrayTest)
{
    GcWorkloadParams params;
    params.arrayWords = 32 * 1024;
    params.arrayReplacements = 6000;
    params.arrayYoungBudgetBytes = 24 * 1024;

    auto run = [&](DeliveryMode mode) {
        BootedKernel bk(osMachineConfig(true));
        UserEnv env(bk.kernel, mode);
        env.install(kAllExcMask);
        return runArrayTest(env, BarrierKind::PageProtection, params);
    };
    GcRunResult ultrix = run(DeliveryMode::UltrixSignal);
    GcRunResult fast = run(DeliveryMode::FastSoftware);
    // same work, same faults, less time: Table 4's claim
    EXPECT_NEAR(static_cast<double>(ultrix.gc.barrierFaults),
                static_cast<double>(fast.gc.barrierFaults),
                ultrix.gc.barrierFaults * 0.05 + 5.0);
    EXPECT_LT(fast.cycles, ultrix.cycles);
}

} // namespace
} // namespace uexc::apps
