/**
 * @file
 * CPU tests for the paper's architectural extensions: direct
 * user-mode exception vectoring (COP3 / user exception registers) and
 * user-level TLB protection modification (TLBMP with the U bit).
 */

#include <gtest/gtest.h>

#include "sim_test_util.h"

namespace uexc::sim {
namespace {

using testutil::enterUserMode;
using testutil::mapPage;

constexpr Addr kUserText = 0x00400000;
constexpr Addr kUserTextPhys = 0x00210000;
constexpr Addr kUserData = 0x00401000;
constexpr Addr kUserDataPhys = 0x00211000;
constexpr Word kGeneralMark = 0x2222;

MachineConfig
hwConfig()
{
    MachineConfig cfg;
    cfg.cpu.userVectorHw = true;
    cfg.cpu.tlbmpHw = true;
    return cfg;
}

void
installHaltingVectors(Machine &m)
{
    Assembler v(Cpu::RefillVector);
    v.li32(K0, 0x1111);
    v.hcall(0);
    v.align(0x80);
    v.li32(K0, kGeneralMark);
    v.hcall(0);
    m.load(v.finalize());
}

/** Load user-mode guest code at kUserText and map text+data pages. */
void
loadUser(Machine &m, const std::function<void(Assembler &)> &body,
         bool data_writable = true, bool data_user_modifiable = false)
{
    Assembler a(kUserText);
    body(a);
    Program p = a.finalize();
    m.mem().writeBlock(kUserTextPhys, p.words.data(),
                       4 * p.words.size());
    mapPage(m, kUserText, kUserTextPhys, 1, 0);
    mapPage(m, kUserData, kUserDataPhys, 1, 1, data_writable,
            data_user_modifiable);
    enterUserMode(m, 1);
    m.cpu().setPc(kUserText);
}

TEST(UserVector, ExceptionDeliveredDirectlyToUserHandler)
{
    Machine m(hwConfig());
    installHaltingVectors(m);
    // enable user vectoring for this "process"
    m.cpu().cp0().setStatusReg(m.cpu().cp0().statusReg() | status::UV);

    loadUser(m, [&](Assembler &a) {
        a.la(T0, "handler");
        a.mtux(T0, UxReg::Target);
        a.li32(T1, kUserData);
        a.lw(V0, 2, T1);        // unaligned: AdEL
        a.label("resume");
        a.li(V1, 7);            // reached only after handler return
        a.hcall(0);

        a.label("handler");
        a.mfux(T2, UxReg::Cond);      // condition register
        a.mfux(T3, UxReg::BadAddr);
        a.mfux(T4, UxReg::Epc);
        a.addiu(T4, T4, 4);           // skip the faulting load
        a.mtux(T4, UxReg::Epc);
        a.xret();
    });

    RunResult r = m.cpu().run(1000);
    EXPECT_EQ(r.reason, StopReason::Halted);
    EXPECT_EQ(m.cpu().reg(V1), 7u);
    // handler observed the right condition info
    EXPECT_EQ(m.cpu().reg(T2) >> 2,
              static_cast<Word>(ExcCode::AdEL));
    EXPECT_EQ(m.cpu().reg(T3), kUserData + 2);
    // the kernel was never entered
    EXPECT_EQ(m.cpu().reg(K0), 0u);
    EXPECT_EQ(m.cpu().stats().userVectoredExceptions, 1u);
    // UX cleared again after xret
    EXPECT_FALSE(m.cpu().cp0().statusReg() & status::UX);
}

TEST(UserVector, DisabledUvBitFallsBackToKernel)
{
    Machine m(hwConfig());
    installHaltingVectors(m);
    // UV not set: exceptions go to the kernel as usual
    loadUser(m, [&](Assembler &a) {
        a.li32(T1, kUserData);
        a.lw(V0, 2, T1);
        a.hcall(0);
    });
    m.cpu().run(1000);
    EXPECT_EQ(m.cpu().reg(K0), kGeneralMark);
    EXPECT_EQ(m.cpu().stats().userVectoredExceptions, 0u);
}

TEST(UserVector, RecursiveExceptionDemotesToKernel)
{
    Machine m(hwConfig());
    installHaltingVectors(m);
    m.cpu().cp0().setStatusReg(m.cpu().cp0().statusReg() | status::UV);

    loadUser(m, [&](Assembler &a) {
        a.la(T0, "handler");
        a.mtux(T0, UxReg::Target);
        a.li32(T1, kUserData);
        a.lw(V0, 2, T1);        // first exception -> user handler
        a.hcall(0);

        a.label("handler");
        a.lw(V0, 1, T1);        // second exception while UX set
        a.xret();
    });

    m.cpu().run(1000);
    EXPECT_EQ(m.cpu().reg(K0), kGeneralMark);
    EXPECT_EQ(m.cpu().stats().userVectoredExceptions, 1u);
    // the kernel sees the recursive exception with UX still set
    EXPECT_TRUE(m.cpu().cp0().statusReg() & status::UX);
}

TEST(UserVector, SyscallsNeverUserVector)
{
    Machine m(hwConfig());
    installHaltingVectors(m);
    m.cpu().cp0().setStatusReg(m.cpu().cp0().statusReg() | status::UV);
    loadUser(m, [&](Assembler &a) {
        a.la(T0, "handler");
        a.mtux(T0, UxReg::Target);
        a.syscall();
        a.hcall(0);
        a.label("handler");
        a.xret();
    });
    m.cpu().run(1000);
    EXPECT_EQ(m.cpu().reg(K0), kGeneralMark);
    EXPECT_EQ(m.cpu().stats().userVectoredExceptions, 0u);
}

TEST(UserVector, TlbRefillMissStillEntersKernel)
{
    Machine m(hwConfig());
    installHaltingVectors(m);
    m.cpu().cp0().setStatusReg(m.cpu().cp0().statusReg() | status::UV);
    loadUser(m, [&](Assembler &a) {
        a.la(T0, "handler");
        a.mtux(T0, UxReg::Target);
        a.li32(T1, 0x00500000u);  // unmapped page
        a.lw(V0, 0, T1);
        a.hcall(0);
        a.label("handler");
        a.xret();
    });
    m.cpu().run(1000);
    EXPECT_EQ(m.cpu().reg(K0), 0x1111u);  // refill vector
}

TEST(UserVector, BreakpointUserVectored)
{
    Machine m(hwConfig());
    installHaltingVectors(m);
    m.cpu().cp0().setStatusReg(m.cpu().cp0().statusReg() | status::UV);
    loadUser(m, [&](Assembler &a) {
        a.la(T0, "handler");
        a.mtux(T0, UxReg::Target);
        a.li(V1, 0);
        a.break_();
        a.li(V0, 5);
        a.hcall(0);
        a.label("handler");
        a.addiu(V1, V1, 1);
        a.mfux(T4, UxReg::Epc);
        a.addiu(T4, T4, 4);
        a.mtux(T4, UxReg::Epc);
        a.xret();
    });
    RunResult r = m.cpu().run(1000);
    EXPECT_EQ(r.reason, StopReason::Halted);
    EXPECT_EQ(m.cpu().reg(V0), 5u);
    EXPECT_EQ(m.cpu().reg(V1), 1u);
    EXPECT_EQ(m.cpu().stats().perExcCode[
                  static_cast<unsigned>(ExcCode::Bp)], 1u);
}

TEST(UserVector, DelaySlotFaultReportsBdInCond)
{
    Machine m(hwConfig());
    installHaltingVectors(m);
    m.cpu().cp0().setStatusReg(m.cpu().cp0().statusReg() | status::UV);
    loadUser(m, [&](Assembler &a) {
        a.la(T0, "handler");
        a.mtux(T0, UxReg::Target);
        a.li32(T1, kUserData);
        a.label("br");
        a.beq(Zero, Zero, "past");
        a.lw(V0, 2, T1);        // delay slot: unaligned
        a.label("past");
        a.li(V1, 3);
        a.hcall(0);
        a.label("handler");
        a.mfux(T2, UxReg::Cond);
        // resume past the whole branch pair: Epc (=branch) + 8
        a.mfux(T4, UxReg::Epc);
        a.addiu(T4, T4, 8);
        a.mtux(T4, UxReg::Epc);
        a.xret();
    });
    m.cpu().run(1000);
    EXPECT_EQ(m.cpu().reg(V1), 3u);
    EXPECT_EQ(m.cpu().reg(T2) & 1u, 1u);  // BD flag in Cond bit 0
}

/** Like loadUser, but keeps the Program so tests can query labels. */
Program
loadUserProg(Machine &m, const std::function<void(Assembler &)> &body,
             bool data_writable = true)
{
    Assembler a(kUserText);
    body(a);
    Program p = a.finalize();
    m.mem().writeBlock(kUserTextPhys, p.words.data(),
                       4 * p.words.size());
    mapPage(m, kUserText, kUserTextPhys, 1, 0);
    mapPage(m, kUserData, kUserDataPhys, 1, 1, data_writable);
    enterUserMode(m, 1);
    m.cpu().setPc(kUserText);
    return p;
}

/**
 * The handler's very first instruction faults (unaligned fetch at the
 * vector target): delivery must demote to the kernel immediately, with
 * UX still set so the kernel can tell it interrupted a user handler.
 */
TEST(UserVector, FaultAtHandlerFirstInstructionDemotes)
{
    Machine m(hwConfig());
    installHaltingVectors(m);
    m.cpu().cp0().setStatusReg(m.cpu().cp0().statusReg() | status::UV);

    loadUser(m, [&](Assembler &a) {
        a.la(T0, "handler");
        a.addiu(T0, T0, 2);     // misaligned vector target
        a.mtux(T0, UxReg::Target);
        a.li32(T1, kUserData);
        a.lw(V0, 2, T1);        // unaligned: AdEL -> user handler
        a.hcall(0);
        a.label("handler");
        a.xret();
    });

    m.cpu().run(1000);
    EXPECT_EQ(m.cpu().reg(K0), kGeneralMark);
    EXPECT_EQ(m.cpu().stats().userVectoredExceptions, 1u);
    EXPECT_TRUE(m.cpu().cp0().statusReg() & status::UX);
}

/**
 * The handler faults while saving state (its first store lands on a
 * write-protected page): the recursive fault demotes to the kernel
 * and the original fault's context in the UX registers is intact for
 * the kernel to inspect.
 */
TEST(UserVector, FaultOnSaveAreaDemotesWithContextIntact)
{
    Machine m(hwConfig());
    installHaltingVectors(m);
    m.cpu().cp0().setStatusReg(m.cpu().cp0().statusReg() | status::UV);

    Program p = loadUserProg(m, [&](Assembler &a) {
        a.la(T0, "handler");
        a.mtux(T0, UxReg::Target);
        a.li32(T1, kUserData);
        a.label("site");
        a.lw(V0, 2, T1);        // unaligned: AdEL -> user handler
        a.hcall(0);
        a.label("handler");
        a.sw(V0, 0, T1);        // save area is write-protected: Mod
        a.xret();
    }, /*data_writable=*/false);

    m.cpu().run(1000);
    EXPECT_EQ(m.cpu().reg(K0), kGeneralMark);
    EXPECT_EQ(m.cpu().stats().userVectoredExceptions, 1u);
    EXPECT_TRUE(m.cpu().cp0().statusReg() & status::UX);
    // the kernel sees the recursive fault...
    EXPECT_EQ((m.cpu().cp0().causeReg() >> 2) & 0x1fu,
              static_cast<Word>(ExcCode::Mod));
    EXPECT_EQ(m.cpu().cp0().epc(), p.symbol("handler"));
    // ...and the original one is still described by the UX registers
    EXPECT_EQ(m.cpu().cp0().uxReg(UxReg::Epc), p.symbol("site"));
    EXPECT_EQ(m.cpu().cp0().uxReg(UxReg::BadAddr), kUserData + 2);
    EXPECT_EQ(m.cpu().cp0().uxReg(UxReg::Cond) >> 2,
              static_cast<Word>(ExcCode::AdEL));
}

/**
 * A fault in the delay slot of the handler's resume jump: demotion
 * must report the branch PC (EPC = the jr) with Cause.BD set, the
 * state the kernel needs to restart the jump correctly.
 */
TEST(UserVector, FaultInResumeJumpDelaySlotDemotesWithBd)
{
    Machine m(hwConfig());
    installHaltingVectors(m);
    m.cpu().cp0().setStatusReg(m.cpu().cp0().statusReg() | status::UV);

    Program p = loadUserProg(m, [&](Assembler &a) {
        a.la(T0, "handler");
        a.mtux(T0, UxReg::Target);
        a.li32(T1, kUserData);
        a.lw(V0, 2, T1);        // unaligned: AdEL -> user handler
        a.label("resume");
        a.hcall(0);
        a.label("handler");
        a.la(T5, "resume");
        a.label("resume_jr");
        a.jr(T5);
        a.lw(V0, 1, T1);        // delay slot: unaligned, faults
    });

    m.cpu().run(1000);
    EXPECT_EQ(m.cpu().reg(K0), kGeneralMark);
    EXPECT_EQ(m.cpu().stats().userVectoredExceptions, 1u);
    EXPECT_TRUE(m.cpu().cp0().statusReg() & status::UX);
    EXPECT_TRUE(m.cpu().cp0().causeReg() & cause::BD);
    EXPECT_EQ(m.cpu().cp0().epc(), p.symbol("resume_jr"));
    EXPECT_EQ(m.cpu().cp0().badVAddr(), kUserData + 1);
}

TEST(UserVector, Cop3WithoutHardwareRaisesRi)
{
    Machine m;  // default: no user-vector hardware
    installHaltingVectors(m);
    loadUser(m, [&](Assembler &a) {
        a.mtux(T0, UxReg::Target);
        a.hcall(0);
    });
    m.cpu().run(1000);
    EXPECT_EQ(m.cpu().reg(K0), kGeneralMark);
    EXPECT_EQ(m.cpu().stats().perExcCode[
                  static_cast<unsigned>(ExcCode::Ri)], 1u);
}

TEST(UserVector, ScratchRegistersHoldValues)
{
    Machine m(hwConfig());
    installHaltingVectors(m);
    loadUser(m, [&](Assembler &a) {
        a.li(T0, 11);
        a.mtux(T0, UxReg::Scratch0);
        a.li(T0, 22);
        a.mtux(T0, UxReg::Scratch5);
        a.mfux(V0, UxReg::Scratch0);
        a.mfux(V1, UxReg::Scratch5);
        a.hcall(0);
    });
    m.cpu().run(1000);
    EXPECT_EQ(m.cpu().reg(V0), 11u);
    EXPECT_EQ(m.cpu().reg(V1), 22u);
}

TEST(UserVector, VectorTableDispatchesByExceptionType)
{
    MachineConfig cfg = hwConfig();
    cfg.cpu.userVectorTable = true;
    Machine m(cfg);
    installHaltingVectors(m);
    m.cpu().cp0().setStatusReg(m.cpu().cp0().statusReg() | status::UV);

    loadUser(m, [&](Assembler &a) {
        // a table whose AdEL and Bp entries go to distinct stubs
        a.la(T0, "table");
        a.mtux(T0, UxReg::Target);
        a.li32(T1, kUserData);
        a.lw(V0, 2, T1);         // AdEL -> adel_stub
        a.break_();              // Bp -> bp_stub
        a.li(V1, 5);
        a.hcall(0);

        a.label("adel_stub");
        a.li(S0, 0xad);
        a.mfux(T4, UxReg::Epc);
        a.addiu(T4, T4, 4);
        a.mtux(T4, UxReg::Epc);
        a.xret();
        a.label("bp_stub");
        a.li(S1, 0xb9);
        a.mfux(T4, UxReg::Epc);
        a.addiu(T4, T4, 4);
        a.mtux(T4, UxReg::Epc);
        a.xret();

        a.align(64);
        a.label("table");
        for (unsigned i = 0; i < NumExcCodes; i++) {
            if (i == static_cast<unsigned>(ExcCode::AdEL))
                a.wordAddr("adel_stub");
            else if (i == static_cast<unsigned>(ExcCode::Bp))
                a.wordAddr("bp_stub");
            else
                a.wordAddr("adel_stub");
        }
    });
    RunResult r = m.cpu().run(1000);
    EXPECT_EQ(r.reason, StopReason::Halted);
    EXPECT_EQ(m.cpu().reg(S0), 0xadu);
    EXPECT_EQ(m.cpu().reg(S1), 0xb9u);
    EXPECT_EQ(m.cpu().reg(V1), 5u);
    EXPECT_EQ(m.cpu().stats().userVectoredExceptions, 2u);
}

TEST(UserVector, UnmappedVectorTableDemotesToKernel)
{
    MachineConfig cfg = hwConfig();
    cfg.cpu.userVectorTable = true;
    Machine m(cfg);
    installHaltingVectors(m);
    m.cpu().cp0().setStatusReg(m.cpu().cp0().statusReg() | status::UV);
    loadUser(m, [&](Assembler &a) {
        a.li32(T0, 0x00600000);   // unmapped page as "table"
        a.mtux(T0, UxReg::Target);
        a.li32(T1, kUserData);
        a.lw(V0, 2, T1);          // AdEL, table slot unmapped
        a.hcall(0);
    });
    m.cpu().run(1000);
    EXPECT_EQ(m.cpu().reg(K0), kGeneralMark);   // kernel got it
    EXPECT_EQ(m.cpu().stats().userVectoredExceptions, 0u);
}

// -- TLBMP ---------------------------------------------------------------

TEST(Tlbmp, UserAmplifiesWritePermissionWithUBit)
{
    Machine m(hwConfig());
    installHaltingVectors(m);
    // data page write-protected but user-modifiable
    loadUser(m, [&](Assembler &a) {
        a.li32(T1, kUserData);
        a.li(T2, 3);            // D=1 (bit0), V=1 (bit1)
        a.tlbmp(T1, T2);
        a.li(T3, 88);
        a.sw(T3, 0, T1);        // now succeeds
        a.lw(V0, 0, T1);
        a.hcall(0);
    }, /*data_writable=*/false, /*data_user_modifiable=*/true);
    RunResult r = m.cpu().run(1000);
    EXPECT_EQ(r.reason, StopReason::Halted);
    EXPECT_EQ(m.cpu().reg(V0), 88u);
    EXPECT_EQ(m.cpu().stats().exceptionsTaken, 0u);
}

TEST(Tlbmp, UserRestrictsProtection)
{
    Machine m(hwConfig());
    installHaltingVectors(m);
    loadUser(m, [&](Assembler &a) {
        a.li32(T1, kUserData);
        a.li(T2, 2);            // D=0, V=1: revoke write
        a.tlbmp(T1, T2);
        a.sw(Zero, 0, T1);      // Mod fault -> kernel
        a.hcall(0);
    }, /*data_writable=*/true, /*data_user_modifiable=*/true);
    m.cpu().run(1000);
    EXPECT_EQ(m.cpu().reg(K0), kGeneralMark);
    EXPECT_EQ(m.cpu().stats().perExcCode[
                  static_cast<unsigned>(ExcCode::Mod)], 1u);
}

TEST(Tlbmp, WithoutUBitRaisesRiForKernelEmulation)
{
    Machine m(hwConfig());
    installHaltingVectors(m);
    loadUser(m, [&](Assembler &a) {
        a.li32(T1, kUserData);
        a.li(T2, 3);
        a.tlbmp(T1, T2);        // U bit clear: RI
        a.hcall(0);
    }, /*data_writable=*/false, /*data_user_modifiable=*/false);
    m.cpu().run(1000);
    EXPECT_EQ(m.cpu().reg(K0), kGeneralMark);
    EXPECT_EQ(m.cpu().stats().perExcCode[
                  static_cast<unsigned>(ExcCode::Ri)], 1u);
}

TEST(Tlbmp, WithoutHardwareRaisesRi)
{
    MachineConfig cfg;
    cfg.cpu.userVectorHw = false;
    cfg.cpu.tlbmpHw = false;
    Machine m(cfg);
    installHaltingVectors(m);
    loadUser(m, [&](Assembler &a) {
        a.li32(T1, kUserData);
        a.li(T2, 3);
        a.tlbmp(T1, T2);
        a.hcall(0);
    }, false, true);
    m.cpu().run(1000);
    EXPECT_EQ(m.cpu().reg(K0), kGeneralMark);
    EXPECT_EQ(m.cpu().stats().perExcCode[
                  static_cast<unsigned>(ExcCode::Ri)], 1u);
}

TEST(Tlbmp, CannotChangeTranslation)
{
    // TLBMP only touches V/D: the PFN is unchanged afterwards.
    Machine m(hwConfig());
    installHaltingVectors(m);
    loadUser(m, [&](Assembler &a) {
        a.li32(T1, kUserData);
        a.li(T2, 3);
        a.tlbmp(T1, T2);
        a.hcall(0);
    }, false, true);
    m.cpu().run(1000);
    auto hit = m.cpu().tlb().probeQuiet(kUserData, 1);
    ASSERT_TRUE(hit);
    EXPECT_EQ(m.cpu().tlb().entry(*hit).pfn(), kUserDataPhys);
    EXPECT_TRUE(m.cpu().tlb().entry(*hit).dirty());
    EXPECT_TRUE(m.cpu().tlb().entry(*hit).userModifiable());
}

} // namespace
} // namespace uexc::sim
