/**
 * @file
 * Unit tests for the TLB: probing, ASID tagging, global entries,
 * invalidation, and the U (user-modifiable) extension bit.
 */

#include <gtest/gtest.h>

#include "sim/tlb.h"

namespace uexc::sim {
namespace {

Word
makeHi(Addr vaddr, unsigned asid)
{
    return (vaddr & entryhi::VpnMask) | (asid << entryhi::AsidShift);
}

Word
makeLo(Addr paddr, Word flags)
{
    return (paddr & entrylo::PfnMask) | flags;
}

TEST(Tlb, EmptyTlbMissesEverywhere)
{
    Tlb tlb;
    EXPECT_FALSE(tlb.probe(0x00400000, 0));
    EXPECT_FALSE(tlb.probe(0x00000000, 0));
    EXPECT_EQ(tlb.stats().lookups, 2u);
    EXPECT_EQ(tlb.stats().misses, 2u);
}

TEST(Tlb, HitAfterFill)
{
    Tlb tlb;
    tlb.setEntry(0, makeHi(0x00400000, 3),
                 makeLo(0x00100000, entrylo::V | entrylo::D));
    auto hit = tlb.probe(0x00400abc, 3);
    ASSERT_TRUE(hit);
    EXPECT_EQ(*hit, 0u);
    const TlbEntry &e = tlb.entry(*hit);
    EXPECT_EQ(e.pfn(), 0x00100000u);
    EXPECT_TRUE(e.valid());
    EXPECT_TRUE(e.dirty());
    EXPECT_FALSE(e.global());
    EXPECT_FALSE(e.userModifiable());
    EXPECT_TRUE(e.cacheable());
}

TEST(Tlb, AsidMismatchMisses)
{
    Tlb tlb;
    tlb.setEntry(0, makeHi(0x00400000, 3), makeLo(0x00100000, entrylo::V));
    EXPECT_FALSE(tlb.probe(0x00400000, 4));
    EXPECT_TRUE(tlb.probe(0x00400000, 3));
}

TEST(Tlb, GlobalEntryIgnoresAsid)
{
    Tlb tlb;
    tlb.setEntry(1, makeHi(0x00400000, 3),
                 makeLo(0x00100000, entrylo::V | entrylo::G));
    EXPECT_TRUE(tlb.probe(0x00400000, 7));
    EXPECT_TRUE(tlb.probe(0x00400000, 3));
}

TEST(Tlb, DifferentPagesDoNotAlias)
{
    Tlb tlb;
    tlb.setEntry(0, makeHi(0x00400000, 0), makeLo(0x00100000, entrylo::V));
    EXPECT_FALSE(tlb.probe(0x00401000, 0));
    EXPECT_TRUE(tlb.probe(0x00400ffc, 0));  // same page, high offset
}

TEST(Tlb, InvalidateRemovesMapping)
{
    Tlb tlb;
    tlb.setEntry(5, makeHi(0x00400000, 2),
                 makeLo(0x00100000, entrylo::V | entrylo::D));
    tlb.invalidate(0x00400000, 2);
    EXPECT_FALSE(tlb.probe(0x00400000, 2));
    // invalidate of an absent page is a no-op
    tlb.invalidate(0x00999000, 2);
}

TEST(Tlb, InvalidateAsidSparesGlobalAndOtherAsids)
{
    Tlb tlb;
    tlb.setEntry(0, makeHi(0x00400000, 2), makeLo(0x00100000, entrylo::V));
    tlb.setEntry(1, makeHi(0x00401000, 3), makeLo(0x00101000, entrylo::V));
    tlb.setEntry(2, makeHi(0x00402000, 2),
                 makeLo(0x00102000, entrylo::V | entrylo::G));
    tlb.invalidateAsid(2);
    EXPECT_FALSE(tlb.probe(0x00400000, 2));
    EXPECT_TRUE(tlb.probe(0x00401000, 3));
    EXPECT_TRUE(tlb.probe(0x00402000, 2));  // global survives
}

TEST(Tlb, FlushClearsAll)
{
    Tlb tlb;
    for (unsigned i = 0; i < Tlb::NumEntries; i++)
        tlb.setEntry(i, makeHi(0x00400000 + (i << 12), 0),
                     makeLo(0x00100000 + (i << 12), entrylo::V));
    tlb.flush();
    for (unsigned i = 0; i < Tlb::NumEntries; i++)
        EXPECT_FALSE(tlb.probe(0x00400000 + (i << 12), 0));
}

TEST(Tlb, UserModifiableBit)
{
    Tlb tlb;
    tlb.setEntry(0, makeHi(0x00400000, 0),
                 makeLo(0x00100000, entrylo::V | entrylo::U));
    EXPECT_TRUE(tlb.entry(0).userModifiable());
    tlb.setEntry(1, makeHi(0x00401000, 0), makeLo(0x00101000, entrylo::V));
    EXPECT_FALSE(tlb.entry(1).userModifiable());
}

TEST(Tlb, NonCacheableBit)
{
    Tlb tlb;
    tlb.setEntry(0, makeHi(0x00400000, 0),
                 makeLo(0x00100000, entrylo::V | entrylo::N));
    EXPECT_FALSE(tlb.entry(0).cacheable());
}

TEST(Tlb, ProbeQuietDoesNotTouchStats)
{
    Tlb tlb;
    tlb.probeQuiet(0x00400000, 0);
    EXPECT_EQ(tlb.stats().lookups, 0u);
}

class TlbFillSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(TlbFillSweep, EveryIndexIsUsable)
{
    unsigned index = GetParam();
    Tlb tlb;
    Addr va = 0x01000000 + (index << 12);
    tlb.setEntry(index, makeHi(va, 1),
                 makeLo(0x00200000, entrylo::V | entrylo::D));
    auto hit = tlb.probe(va, 1);
    ASSERT_TRUE(hit);
    EXPECT_EQ(*hit, index);
}

INSTANTIATE_TEST_SUITE_P(AllEntries, TlbFillSweep,
                         ::testing::Range(0u, Tlb::NumEntries, 7u));

} // namespace
} // namespace uexc::sim
