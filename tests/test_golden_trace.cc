/**
 * @file
 * Golden-trace regression tests for the kernel's fast exception
 * handler (paper Table 3: 65 instructions across six phases).
 *
 * Three layers of pinning:
 *
 *  - the static code layout: word counts between the fast-path
 *    kernel symbols must match Table 3 exactly (6/11/31/6/8/3);
 *  - the dynamic execution: one delivered fault must retire the
 *    Table 3 dynamic profile (the FP check falls through after two
 *    instructions when the process has no FP state);
 *  - the interpreter: the per-instruction (pc, cost) trace of a
 *    full fault delivery must be bit-identical between the reference
 *    interpreter and the predecoded fast path, so any future fast-path
 *    change that perturbs fetch, decode or cost accounting fails here
 *    with the first diverging instruction.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "analysis/vsa.h"
#include "analysis/wcet.h"
#include "core/env.h"
#include "core/microbench.h"
#include "os/kernelimage.h"
#include "os_test_util.h"
#include "sim/profile.h"

namespace uexc {
namespace {

using os::ksym::FastCompat;
using os::ksym::FastDecode;
using os::ksym::FastEnd;
using os::ksym::FastFp;
using os::ksym::FastSave;
using os::ksym::FastTlbCheck;
using os::ksym::FastVector;
using os::testutil::BootedKernel;
using os::testutil::kAllExcMask;
using rt::DeliveryMode;
using rt::UserEnv;

constexpr Addr kDataVa = 0x10000000;

/** One retired instruction as the observer saw it. */
struct TraceEntry
{
    Addr pc = 0;
    Cycles cost = 0;

    bool operator==(const TraceEntry &o) const
    {
        return pc == o.pc && cost == o.cost;
    }
};

/** Records (pc, cost) for every retired instruction in [begin, end). */
class TraceRecorder : public sim::InstObserver
{
  public:
    TraceRecorder(Addr begin, Addr end) : begin_(begin), end_(end) {}

    void onInst(Addr pc, const sim::DecodedInst &, Cycles cost) override
    {
        if (pc >= begin_ && pc < end_)
            trace_.push_back({pc, cost});
    }

    void onException(sim::ExcCode, Addr, Addr) override { exceptions_++; }

    const std::vector<TraceEntry> &trace() const { return trace_; }
    std::uint64_t exceptions() const { return exceptions_; }

  private:
    Addr begin_;
    Addr end_;
    std::vector<TraceEntry> trace_;
    std::uint64_t exceptions_ = 0;
};

/**
 * Booted kernel + fast-software environment with one read/write data
 * page. fault() executes a guest load at an unaligned address, which
 * raises AdEL and takes the whole delivery path: fast kernel handler,
 * vector to the user stub, upcall bridge, and resume.
 */
struct GoldenHarness
{
    explicit GoldenHarness(bool fast, bool caches = true)
        : bk(makeConfig(fast, caches)),
          env(bk.kernel, DeliveryMode::FastSoftware)
    {
        env.install(kAllExcMask);
        env.allocate(kDataVa, os::kPageBytes);
        env.setHandler([this](rt::Fault &f) {
            faults++;
            f.resumeAt(f.pc() + 4); // skip the faulting load
        });
    }

    static sim::MachineConfig makeConfig(bool fast, bool caches = true)
    {
        sim::MachineConfig cfg = rt::micro::paperMachineConfig();
        cfg.cpu.fastInterpreter = fast;
        cfg.cpu.cachesEnabled = caches;
        return cfg;
    }

    Addr sym(const char *name) const { return bk.machine.symbol(name); }

    void fault() { (void)env.load(kDataVa + 2); }

    BootedKernel bk;
    UserEnv env;
    unsigned faults = 0;
};

TEST(GoldenTrace, StaticPhaseWordCountsMatchTable3)
{
    GoldenHarness h(false);
    auto words = [&](const char *begin, const char *end) {
        return (h.sym(end) - h.sym(begin)) / 4;
    };
    EXPECT_EQ(words(FastDecode, FastCompat), 6u);
    EXPECT_EQ(words(FastCompat, FastSave), 11u);
    EXPECT_EQ(words(FastSave, FastFp), 31u);
    EXPECT_EQ(words(FastFp, FastTlbCheck), 6u);
    EXPECT_EQ(words(FastTlbCheck, FastVector), 8u);
    EXPECT_EQ(words(FastVector, FastEnd), 3u);
    EXPECT_EQ(words(FastDecode, FastEnd), 65u);
}

/** Dynamic per-phase instruction counts for one delivered fault, in
 *  both interpreter modes. */
class GoldenTraceDynamic : public ::testing::TestWithParam<bool> {};

TEST_P(GoldenTraceDynamic, PhaseCountsMatchTable3)
{
    GoldenHarness h(GetParam());
    h.fault(); // warm: uframe mapped, stub paged in, TLB primed
    ASSERT_EQ(h.faults, 1u);

    sim::PhaseProfiler prof;
    prof.addPhase("Decode Exception", h.sym(FastDecode), h.sym(FastCompat));
    prof.addPhase("Compatibility Check", h.sym(FastCompat), h.sym(FastSave));
    prof.addPhase("Save Partial State", h.sym(FastSave), h.sym(FastFp));
    prof.addPhase("Floating Point Check", h.sym(FastFp),
                  h.sym(FastTlbCheck));
    prof.addPhase("Check for TLB Fault", h.sym(FastTlbCheck),
                  h.sym(FastVector));
    prof.addPhase("Vector to User", h.sym(FastVector), h.sym(FastEnd));

    h.bk.machine.cpu().setObserver(&prof);
    h.fault();
    h.bk.machine.cpu().setObserver(nullptr);
    ASSERT_EQ(h.faults, 2u);

    const auto &p = prof.phases();
    ASSERT_EQ(p.size(), 6u);
    EXPECT_EQ(p[0].instructions, 6u);
    EXPECT_EQ(p[1].instructions, 11u);
    // The save phase stores the Ultrix-equivalent partial state: all
    // 31 instructions retire.
    EXPECT_EQ(p[2].instructions, 31u);
    // No FP state in the test process: the check branches out after
    // two of its six instructions.
    EXPECT_EQ(p[3].instructions, 4u);
    EXPECT_EQ(p[4].instructions, 8u);
    EXPECT_EQ(p[5].instructions, 3u);

    InstCount total = 0;
    for (const auto &ph : p)
        total += ph.instructions;
    EXPECT_EQ(total, 63u);
}

TEST_P(GoldenTraceDynamic, HandlerTraceWalksForwardOnce)
{
    GoldenHarness h(GetParam());
    h.fault();

    TraceRecorder rec(h.sym(FastDecode), h.sym(FastEnd));
    h.bk.machine.cpu().setObserver(&rec);
    h.fault();
    h.bk.machine.cpu().setObserver(nullptr);

    const auto &t = rec.trace();
    ASSERT_EQ(t.size(), 63u);
    EXPECT_EQ(t.front().pc, h.sym(FastDecode));
    for (std::size_t i = 1; i < t.size(); i++) {
        EXPECT_LT(t[i - 1].pc, t[i].pc)
            << "fast handler trace not monotonic at entry " << i;
    }
    // Exactly the two untaken FP-check words are skipped.
    EXPECT_EQ((h.sym(FastEnd) - h.sym(FastDecode)) / 4 - t.size(), 2u);
    EXPECT_EQ(rec.exceptions(), 1u);
}

INSTANTIATE_TEST_SUITE_P(BothInterpreters, GoldenTraceDynamic,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool> &info) {
                             return info.param ? "Fast" : "Reference";
                         });

/**
 * The WCET analyzer (analysis/wcet.h) charges instructions from the
 * same declarative cost table as the interpreter, so for a
 * straight-line phase with the cache model off its sequential cost
 * must EQUAL the cycles one measured delivery charges — not merely
 * bound it. The two phases excluded from the equality are the ones
 * that retire a taken control transfer (the FP check branches out,
 * the vector phase ends in the jr), where the measured trace pays
 * taken-branch extras that a straight-line cost deliberately assigns
 * to the edge, not the block. The whole-region longest-path bound
 * must still contain the measured total and fit the boot-gate budget.
 */
TEST(GoldenTrace, FastPathWcetIsExactForStraightLinePhases)
{
    GoldenHarness h(false, /*caches=*/false);
    h.fault(); // warm: uframe mapped, stub paged in, TLB primed

    TraceRecorder rec(h.sym(FastDecode), h.sym(FastEnd));
    h.bk.machine.cpu().setObserver(&rec);
    h.fault();
    h.bk.machine.cpu().setObserver(nullptr);
    const auto &t = rec.trace();
    ASSERT_EQ(t.size(), 63u);

    const sim::CostModel &cost =
        h.bk.machine.cpu().config().cost;

    struct Phase
    {
        const char *begin;
        const char *end;
        unsigned words;
        bool straight; ///< every retired instruction falls through
    };
    const Phase phases[] = {
        {FastDecode, FastCompat, 6, true},
        {FastCompat, FastSave, 11, true},
        {FastSave, FastFp, 31, true},
        {FastFp, FastTlbCheck, 6, false},
        {FastTlbCheck, FastVector, 8, true},
        {FastVector, FastEnd, 3, false},
    };

    // Walk the retired trace once with a single coster so the
    // write-buffer store-run length carries across phase boundaries
    // exactly as the interpreter's does.
    analysis::StraightLineCoster coster(cost);
    Cycles measured_total = 0;
    std::size_t i = 0;
    for (const Phase &ph : phases) {
        Addr begin = h.sym(ph.begin), end = h.sym(ph.end);
        Cycles measured = 0, modeled = 0;
        std::size_t retired = 0;
        for (; i < t.size() && t[i].pc >= begin && t[i].pc < end;
             i++) {
            measured += t[i].cost;
            modeled += coster.step(
                sim::decode(h.bk.machine.debugReadWord(t[i].pc)));
            retired++;
        }
        measured_total += measured;
        if (!ph.straight)
            continue;
        ASSERT_EQ(retired, ph.words) << "phase " << ph.begin;
        EXPECT_EQ(modeled, measured)
            << "static cycle model diverges from the interpreter in "
            << "phase " << ph.begin;
    }
    ASSERT_EQ(i, t.size());

    // Whole-region longest-path bound: contains the measurement,
    // fits the debug boot gate's budget.
    sim::Program kprog = os::buildKernelImage();
    analysis::CodeRegion region;
    region.begin = h.sym(FastDecode);
    region.end = h.sym(FastEnd);
    region.entries = {region.begin};
    analysis::Vsa vsa = analysis::Vsa::run(kprog, region);
    analysis::WcetResult w =
        analysis::computeWcet(vsa, {cost, /*cachesEnabled=*/false});
    ASSERT_TRUE(w.bounded);
    EXPECT_GE(w.worstCycles, measured_total);
    EXPECT_LE(w.worstCycles, os::kFastPathWcetBudget);
    EXPECT_GE(w.worstInsts, t.size());
}

TEST(GoldenTrace, FullDeliveryTraceIdenticalAcrossInterpreters)
{
    GoldenHarness ref(false);
    GoldenHarness fst(true);
    ref.fault();
    fst.fault();

    // Record everything the CPU retires — kernel fast path, refills,
    // user stub, upcall bridge — over three further deliveries.
    TraceRecorder ref_rec(0, 0xffffffffu);
    TraceRecorder fst_rec(0, 0xffffffffu);
    ref.bk.machine.cpu().setObserver(&ref_rec);
    fst.bk.machine.cpu().setObserver(&fst_rec);
    for (int i = 0; i < 3; i++) {
        ref.fault();
        fst.fault();
    }
    ref.bk.machine.cpu().setObserver(nullptr);
    fst.bk.machine.cpu().setObserver(nullptr);

    const auto &a = ref_rec.trace();
    const auto &b = fst_rec.trace();
    ASSERT_GT(a.size(), 3u * 63u);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i++) {
        ASSERT_EQ(a[i].pc, b[i].pc)
            << "pc divergence at retired instruction " << i;
        ASSERT_EQ(a[i].cost, b[i].cost)
            << "cycle-cost divergence at pc " << std::hex << a[i].pc;
    }
    EXPECT_EQ(ref_rec.exceptions(), fst_rec.exceptions());
    EXPECT_EQ(ref.bk.machine.cpu().stats().cycles,
              fst.bk.machine.cpu().stats().cycles);
    EXPECT_EQ(ref.bk.machine.cpu().stats().instructions,
              fst.bk.machine.cpu().stats().instructions);
}

} // namespace
} // namespace uexc
