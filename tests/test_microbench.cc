/**
 * @file
 * Regression tests over the exception-cost microbenchmarks: these
 * pin the reproduction's headline numbers (Table 2's rows and
 * ratios, Table 3's counts) so that refactoring the kernel image or
 * the cost model cannot silently drift away from the paper.
 */

#include <gtest/gtest.h>

#include "core/microbench.h"

namespace uexc::rt::micro {
namespace {

class MicroTimings : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        sim::MachineConfig cfg = paperMachineConfig();
        fastSimple_ = new Timing(measure(Scenario::FastSimple, cfg));
        fastWp_ = new Timing(measure(Scenario::FastWriteProt, cfg));
        fastSub_ = new Timing(measure(Scenario::FastSubpage, cfg));
        ultrix_ = new Timing(measure(Scenario::UltrixSimple, cfg));
        ultrixWp_ = new Timing(measure(Scenario::UltrixWriteProt, cfg));
        syscall_ = new Timing(measure(Scenario::NullSyscall, cfg));
        hw_ = new Timing(measure(Scenario::HwVectorSimple, cfg));
        special_ = new Timing(measure(Scenario::FastSpecialized, cfg));
    }

    static void
    TearDownTestSuite()
    {
        for (Timing **t : {&fastSimple_, &fastWp_, &fastSub_, &ultrix_,
                           &ultrixWp_, &syscall_, &hw_, &special_}) {
            delete *t;
            *t = nullptr;
        }
    }

    static Timing *fastSimple_, *fastWp_, *fastSub_, *ultrix_,
        *ultrixWp_, *syscall_, *hw_, *special_;
};

Timing *MicroTimings::fastSimple_;
Timing *MicroTimings::fastWp_;
Timing *MicroTimings::fastSub_;
Timing *MicroTimings::ultrix_;
Timing *MicroTimings::ultrixWp_;
Timing *MicroTimings::syscall_;
Timing *MicroTimings::hw_;
Timing *MicroTimings::special_;

TEST_F(MicroTimings, FastSimpleDeliveryNearPaper)
{
    // paper: 5 us
    EXPECT_GE(fastSimple_->deliverUs, 4.0);
    EXPECT_LE(fastSimple_->deliverUs, 7.0);
}

TEST_F(MicroTimings, FastRoundTripNearPaper)
{
    // paper: 8 us
    EXPECT_GE(fastSimple_->roundTripUs, 6.0);
    EXPECT_LE(fastSimple_->roundTripUs, 10.0);
}

TEST_F(MicroTimings, OrderOfMagnitudeOverUltrix)
{
    // the paper's central result: 10x on the round trip
    double ratio = ultrix_->roundTripUs / fastSimple_->roundTripUs;
    EXPECT_GE(ratio, 8.0);
    EXPECT_LE(ratio, 13.0);
}

TEST_F(MicroTimings, WriteProtRatioNearPaper)
{
    // paper: 60 vs 15 us = 4x
    double ratio = ultrixWp_->deliverUs / fastWp_->deliverUs;
    EXPECT_GE(ratio, 3.0);
    EXPECT_LE(ratio, 5.5);
}

TEST_F(MicroTimings, FastRoundTripBeatsNullSyscall)
{
    // paper: "33% faster than a simple null Ultrix system call"
    EXPECT_LT(fastSimple_->roundTripUs, syscall_->roundTripUs);
}

TEST_F(MicroTimings, CostOrderingAcrossMechanisms)
{
    EXPECT_LT(hw_->roundTripUs, special_->roundTripUs);
    EXPECT_LT(special_->roundTripUs, fastSimple_->roundTripUs);
    EXPECT_LT(fastSimple_->roundTripUs, ultrix_->roundTripUs);
}

TEST_F(MicroTimings, ProtectionCostsOrdered)
{
    // simple < write-prot < subpage (Table 2's rows 1-3)
    EXPECT_LT(fastSimple_->deliverUs, fastWp_->deliverUs);
    EXPECT_LT(fastWp_->deliverUs, fastSub_->deliverUs);
}

TEST_F(MicroTimings, HardwareVectoringBeyondPaperEstimate)
{
    // the paper estimated 2-3x over the software scheme
    EXPECT_GE(fastSimple_->roundTripUs / hw_->roundTripUs, 2.0);
}

TEST_F(MicroTimings, SpecializedHandlerCheaperThanGeneric)
{
    // section 4.2.2: saving less state buys ~2 us
    EXPECT_LT(special_->roundTripUs, fastSimple_->roundTripUs - 1.0);
}

TEST_F(MicroTimings, KernelPathIs65InstructionsMinusUntakenFp)
{
    EXPECT_EQ(fastSimple_->kernelInsts, 63u);  // 65 static - 2 untaken
}

TEST(MicroProfile, Table3DynamicPhases)
{
    auto phases = profileFastPath(paperMachineConfig());
    ASSERT_EQ(phases.size(), 6u);
    EXPECT_EQ(phases[0].instructions, 6u);    // decode
    EXPECT_EQ(phases[1].instructions, 11u);   // compat
    EXPECT_EQ(phases[2].instructions, 31u);   // save
    EXPECT_EQ(phases[3].instructions, 4u);    // FP (2 untaken)
    EXPECT_EQ(phases[4].instructions, 8u);    // TLB check
    EXPECT_EQ(phases[5].instructions, 3u);    // vector
}

TEST(MicroConfig, CachelessMachineStillShowsTheOrderOfMagnitude)
{
    // the result does not depend on the cache model: with fixed
    // 1-cycle memory the instruction-count gap alone is ~10x
    sim::MachineConfig cfg = paperMachineConfig();
    cfg.cpu.cachesEnabled = false;
    Timing fast = measure(Scenario::FastSimple, cfg);
    Timing ultrix = measure(Scenario::UltrixSimple, cfg);
    double ratio = ultrix.roundTripUs / fast.roundTripUs;
    EXPECT_GE(ratio, 7.0);
}

TEST(MicroConfig, FasterClockScalesMicroseconds)
{
    sim::MachineConfig cfg = paperMachineConfig();
    Timing at25 = measure(Scenario::FastSimple, cfg);
    cfg.cpu.cost.clockMhz = 100.0;
    Timing at100 = measure(Scenario::FastSimple, cfg);
    EXPECT_EQ(at25.roundTripCycles, at100.roundTripCycles);
    EXPECT_NEAR(at25.roundTripUs / at100.roundTripUs, 4.0, 0.01);
}

class MissPenaltySweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(MissPenaltySweep, HeadlineRatioRobustToMemorySystem)
{
    // the order-of-magnitude result must not hinge on one cache
    // parameter: sweep the miss penalty across a realistic range
    sim::MachineConfig cfg = paperMachineConfig();
    cfg.cpu.cost.icacheMissPenalty = GetParam();
    cfg.cpu.cost.dcacheMissPenalty = GetParam();
    Timing fast = measure(Scenario::FastSimple, cfg);
    Timing ultrix = measure(Scenario::UltrixSimple, cfg);
    double ratio = ultrix.roundTripUs / fast.roundTripUs;
    EXPECT_GE(ratio, 7.0) << "penalty " << GetParam();
    EXPECT_LE(ratio, 16.0) << "penalty " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Penalties, MissPenaltySweep,
                         ::testing::Values(4u, 10u, 14u, 22u, 30u));

TEST(MicroConfig, MeasurementIsDeterministic)
{
    sim::MachineConfig cfg = paperMachineConfig();
    Timing a = measure(Scenario::FastWriteProt, cfg);
    Timing b = measure(Scenario::FastWriteProt, cfg);
    EXPECT_EQ(a.deliverCycles, b.deliverCycles);
    EXPECT_EQ(a.returnCycles, b.returnCycles);
}

} // namespace
} // namespace uexc::rt::micro
