/**
 * @file
 * Unit tests for AddressSpace: page table writes in guest memory,
 * protection changes with TLB shootdown, subpage masks, eager
 * amplification, and the U bit.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "os/addrspace.h"
#include "sim/cp0.h"

namespace uexc::os {
namespace {

using namespace sim;

class AddrSpaceTest : public ::testing::Test
{
  protected:
    AddrSpaceTest()
        : machine_(), frames_(kUserFrameBase, 0x01000000),
          as_(machine_, 1, kPageTableArena, frames_)
    {
    }

    Machine machine_;
    FrameAllocator frames_;
    AddressSpace as_;
};

TEST_F(AddrSpaceTest, FreshSpaceIsEmpty)
{
    EXPECT_FALSE(as_.present(0x00400000));
    EXPECT_EQ(as_.pte(0x00400000), 0u);
}

TEST_F(AddrSpaceTest, AllocateMapsPresentWritablePages)
{
    as_.allocate(0x00400000, 2 * kPageBytes, kProtRead | kProtWrite);
    EXPECT_TRUE(as_.present(0x00400000));
    EXPECT_TRUE(as_.present(0x00401000));
    EXPECT_FALSE(as_.present(0x00402000));
    Word pte = as_.pte(0x00400000);
    EXPECT_TRUE(pte & entrylo::V);
    EXPECT_TRUE(pte & entrylo::D);
    EXPECT_TRUE(pte & kPtePresent);
}

TEST_F(AddrSpaceTest, AllocateUnalignedRangeCoversWholePages)
{
    as_.allocate(0x00400ffc, 8, kProtRead | kProtWrite);
    EXPECT_TRUE(as_.present(0x00400000));
    EXPECT_TRUE(as_.present(0x00401000));
}

TEST_F(AddrSpaceTest, FramesAreDistinctAndZeroed)
{
    as_.allocate(0x00400000, 2 * kPageBytes, kProtRead | kProtWrite);
    Addr f0 = as_.frameOf(0x00400000);
    Addr f1 = as_.frameOf(0x00401000);
    EXPECT_NE(f0, f1);
    EXPECT_EQ(machine_.mem().readWord(f0), 0u);
    EXPECT_EQ(as_.physOf(0x00400abc) & 0xfffu, 0xabcu);
}

TEST_F(AddrSpaceTest, PageTableLivesInGuestMemoryAtContextSlot)
{
    as_.allocate(0x00403000, kPageBytes, kProtRead | kProtWrite);
    // the refill handler loads PTEBase | (va[30:12] << 2)
    Addr slot = kPageTableArena + ((0x00403000u >> 12) << 2);
    EXPECT_EQ(machine_.debugReadWord(slot), as_.pte(0x00403000));
    EXPECT_NE(machine_.debugReadWord(slot), 0u);
}

TEST_F(AddrSpaceTest, ProtectReadOnlyClearsDirty)
{
    as_.allocate(0x00400000, kPageBytes, kProtRead | kProtWrite);
    unsigned pages = as_.protect(0x00400000, kPageBytes, kProtRead);
    EXPECT_EQ(pages, 1u);
    Word pte = as_.pte(0x00400000);
    EXPECT_TRUE(pte & entrylo::V);
    EXPECT_FALSE(pte & entrylo::D);
}

TEST_F(AddrSpaceTest, ProtectNoneClearsValid)
{
    as_.allocate(0x00400000, kPageBytes, kProtRead | kProtWrite);
    as_.protect(0x00400000, kPageBytes, 0);
    Word pte = as_.pte(0x00400000);
    EXPECT_FALSE(pte & entrylo::V);
    EXPECT_TRUE(pte & kPtePresent);  // the frame is still there
}

TEST_F(AddrSpaceTest, ProtectShootsDownTlbEntry)
{
    as_.allocate(0x00400000, kPageBytes, kProtRead | kProtWrite);
    // simulate a refill having cached the translation
    machine_.cpu().tlb().setEntry(
        9, (0x00400000u & entryhi::VpnMask) | (1u << entryhi::AsidShift),
        as_.pte(0x00400000));
    ASSERT_TRUE(machine_.cpu().tlb().probeQuiet(0x00400000, 1));
    as_.protect(0x00400000, kPageBytes, kProtRead);
    EXPECT_FALSE(machine_.cpu().tlb().probeQuiet(0x00400000, 1));
}

TEST_F(AddrSpaceTest, SubpageProtectSetsMaskAndHardwareBits)
{
    as_.allocate(0x00400000, kPageBytes, kProtRead | kProtWrite);
    unsigned subs = as_.subpageProtect(0x00400400, kSubpageBytes,
                                       kProtRead);
    EXPECT_EQ(subs, 1u);
    EXPECT_TRUE(as_.subpageActive(0x00400000));
    EXPECT_EQ(as_.subpageMask(0x00400000), 0b0010u);
    Word pte = as_.pte(0x00400000);
    EXPECT_TRUE(pte & entrylo::V);
    EXPECT_FALSE(pte & entrylo::D);  // writes must trap
}

TEST_F(AddrSpaceTest, SubpageUnprotectRestoresFullAccess)
{
    as_.allocate(0x00400000, kPageBytes, kProtRead | kProtWrite);
    as_.subpageProtect(0x00400400, 2 * kSubpageBytes, kProtRead);
    EXPECT_EQ(as_.subpageMask(0x00400000), 0b0110u);
    as_.subpageProtect(0x00400400, 2 * kSubpageBytes,
                       kProtRead | kProtWrite);
    EXPECT_FALSE(as_.subpageActive(0x00400000));
    EXPECT_TRUE(as_.pte(0x00400000) & entrylo::D);
}

TEST_F(AddrSpaceTest, SubpageSpansPages)
{
    as_.allocate(0x00400000, 2 * kPageBytes, kProtRead | kProtWrite);
    unsigned subs = as_.subpageProtect(0x00400c00, 2 * kSubpageBytes,
                                       kProtRead);
    EXPECT_EQ(subs, 2u);
    EXPECT_EQ(as_.subpageMask(0x00400000), 0b1000u);
    EXPECT_EQ(as_.subpageMask(0x00401000), 0b0001u);
}

TEST_F(AddrSpaceTest, SubpageMisalignedIsFatal)
{
    setLoggingEnabled(false);
    as_.allocate(0x00400000, kPageBytes, kProtRead | kProtWrite);
    EXPECT_THROW(as_.subpageProtect(0x00400401, 4, kProtRead),
                 FatalError);
    setLoggingEnabled(true);
}

TEST_F(AddrSpaceTest, AmplifyGrantsAccessAndKeepsSubpageMask)
{
    as_.allocate(0x00400000, kPageBytes, kProtRead | kProtWrite);
    as_.subpageProtect(0x00400000, kSubpageBytes, kProtRead);
    as_.amplify(0x00400000);
    Word pte = as_.pte(0x00400000);
    EXPECT_TRUE(pte & entrylo::V);
    EXPECT_TRUE(pte & entrylo::D);
    EXPECT_EQ(as_.subpageMask(0x00400000), 0b0001u);
    // and re-protection restores hardware checks
    as_.reprotectFromSubpages(0x00400000);
    EXPECT_FALSE(as_.pte(0x00400000) & entrylo::D);
}

TEST_F(AddrSpaceTest, UserModifiableBit)
{
    as_.allocate(0x00400000, kPageBytes, kProtRead | kProtWrite);
    as_.setUserModifiable(0x00400000, true);
    EXPECT_TRUE(as_.pte(0x00400000) & entrylo::U);
    as_.setUserModifiable(0x00400000, false);
    EXPECT_FALSE(as_.pte(0x00400000) & entrylo::U);
}

TEST_F(AddrSpaceTest, ProtectUnmappedIsFatal)
{
    setLoggingEnabled(false);
    EXPECT_THROW(as_.protect(0x00500000, kPageBytes, kProtRead),
                 FatalError);
    EXPECT_THROW(as_.frameOf(0x00500000), FatalError);
    setLoggingEnabled(true);
}

TEST(FrameAllocatorTest, ExhaustionIsFatal)
{
    setLoggingEnabled(false);
    Machine m;
    FrameAllocator tiny(kUserFrameBase, kUserFrameBase + 2 * kPageBytes);
    EXPECT_NE(tiny.alloc(m.mem()), tiny.alloc(m.mem()));
    EXPECT_THROW(tiny.alloc(m.mem()), FatalError);
    setLoggingEnabled(true);
}

} // namespace
} // namespace uexc::os
