/**
 * @file
 * Unit tests for CP0: status stack semantics, cause packing, fault
 * address registers, random register, and the user exception file.
 */

#include <gtest/gtest.h>

#include "sim/cp0.h"

namespace uexc::sim {
namespace {

TEST(Cp0, ResetState)
{
    Cp0 cp0;
    EXPECT_EQ(cp0.statusReg(), 0u);      // kernel mode
    EXPECT_FALSE(cp0.userMode());
    EXPECT_EQ(cp0.asid(), 0u);
    EXPECT_NE(cp0.read(cp0reg::PrId), 0u);
}

TEST(Cp0, ExceptionPushesKuIeStack)
{
    Cp0 cp0;
    // start in user mode with interrupts enabled
    cp0.setStatusReg(status::KUc | status::IEc);
    cp0.enterException(0x1234, ExcCode::AdEL, false);

    Word st = cp0.statusReg();
    EXPECT_FALSE(st & status::KUc);  // now kernel
    EXPECT_FALSE(st & status::IEc);  // interrupts off
    EXPECT_TRUE(st & status::KUp);   // previous was user
    EXPECT_TRUE(st & status::IEp);
    EXPECT_EQ(cp0.epc(), 0x1234u);
    EXPECT_EQ((cp0.causeReg() & cause::ExcCodeMask) >> cause::ExcCodeShift,
              static_cast<Word>(ExcCode::AdEL));
    EXPECT_FALSE(cp0.causeReg() & cause::BD);
}

TEST(Cp0, BranchDelaySetsBd)
{
    Cp0 cp0;
    cp0.enterException(0x1000, ExcCode::Bp, true);
    EXPECT_TRUE(cp0.causeReg() & cause::BD);
}

TEST(Cp0, RfePopsStack)
{
    Cp0 cp0;
    cp0.setStatusReg(status::KUc | status::IEc);
    cp0.enterException(0x1000, ExcCode::Sys, false);
    cp0.returnFromException();
    Word st = cp0.statusReg();
    EXPECT_TRUE(st & status::KUc);
    EXPECT_TRUE(st & status::IEc);
}

TEST(Cp0, DoubleExceptionPreservesOldMode)
{
    Cp0 cp0;
    cp0.setStatusReg(status::KUc | status::IEc);
    cp0.enterException(0x1000, ExcCode::Sys, false);   // user -> kernel
    cp0.enterException(0x2000, ExcCode::TlbL, false);  // kernel -> kernel
    // two pops restore the original user state
    cp0.returnFromException();
    cp0.returnFromException();
    Word st = cp0.statusReg();
    EXPECT_TRUE(st & status::KUc);
    EXPECT_TRUE(st & status::IEc);
}

TEST(Cp0, ExtensionBitsSurviveStackOps)
{
    Cp0 cp0;
    cp0.setStatusReg(status::KUc | status::UV);
    cp0.enterException(0x1000, ExcCode::Sys, false);
    EXPECT_TRUE(cp0.statusReg() & status::UV);
    cp0.returnFromException();
    EXPECT_TRUE(cp0.statusReg() & status::UV);
}

TEST(Cp0, FaultAddressUpdatesBadVAddrContextEntryHi)
{
    Cp0 cp0;
    cp0.write(cp0reg::Context, 0x80200000u);  // PTEBase
    cp0.write(cp0reg::EntryHi, 5u << entryhi::AsidShift);
    cp0.setFaultAddress(0x00403004u);

    EXPECT_EQ(cp0.badVAddr(), 0x00403004u);
    // Context = PTEBase | (va[30:12] << 2)
    EXPECT_EQ(cp0.context(), 0x80200000u | ((0x00403004u >> 12) << 2));
    // EntryHi holds the faulting VPN and keeps the ASID
    EXPECT_EQ(cp0.entryHi() & entryhi::VpnMask, 0x00403000u);
    EXPECT_EQ(cp0.asid(), 5u);
}

TEST(Cp0, ContextPteBaseWritableBadVpnNot)
{
    Cp0 cp0;
    cp0.setFaultAddress(0x00001000u);
    Word badvpn = cp0.context() & 0x001ffffcu;
    cp0.write(cp0reg::Context, 0xffe00000u);
    EXPECT_EQ(cp0.context() & 0x001ffffcu, badvpn);
    EXPECT_EQ(cp0.context() & 0xffe00000u, 0xffe00000u);
}

TEST(Cp0, ReadOnlyRegistersIgnoreWrites)
{
    Cp0 cp0;
    Word prid = cp0.read(cp0reg::PrId);
    cp0.write(cp0reg::PrId, 0xdead);
    EXPECT_EQ(cp0.read(cp0reg::PrId), prid);
    cp0.setFaultAddress(0xabc000u);
    cp0.write(cp0reg::BadVAddr, 0);
    EXPECT_EQ(cp0.badVAddr(), 0xabc000u);
}

TEST(Cp0, RandomStaysInWiredFreeRange)
{
    Cp0 cp0;
    for (int i = 0; i < 200; i++) {
        unsigned idx = cp0.randomIndex();
        EXPECT_GE(idx, 8u);
        EXPECT_LE(idx, 63u);
    }
}

TEST(Cp0, RandomRegisterReadMatchesHardwareFormat)
{
    Cp0 cp0;
    Word raw = cp0.read(cp0reg::Random);
    EXPECT_EQ(raw & 0xffu, 0u);       // value is in bits [13:8]
    EXPECT_GE(raw >> 8, 8u);
}

TEST(Cp0, IndexWriteMasked)
{
    Cp0 cp0;
    cp0.write(cp0reg::Index, 0xffffffffu);
    EXPECT_EQ(cp0.index(), 0x3f00u);
    cp0.setIndexRaw(0x80000000u);
    EXPECT_EQ(cp0.index(), 0x80000000u);
}

TEST(Cp0, UxRegisterFile)
{
    Cp0 cp0;
    cp0.setUxReg(UxReg::Target, 0x00400100u);
    cp0.setUxReg(UxReg::Scratch3, 77u);
    EXPECT_EQ(cp0.uxReg(UxReg::Target), 0x00400100u);
    EXPECT_EQ(cp0.uxReg(UxReg::Scratch3), 77u);
    EXPECT_EQ(cp0.uxReg(UxReg::Cond), 0u);
}

} // namespace
} // namespace uexc::sim
