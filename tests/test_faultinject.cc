/**
 * @file
 * Fault injection and recovery hardening.
 *
 * Two layers of coverage, both running on the shared chaos rig
 * (core/chaos.h) so the workload here is byte-for-byte the one the
 * checkpoint/replay machinery snapshots:
 *
 *  1. Deterministic unit tests: each injection kind, the watchdog
 *     demotion path, the save-page canary, and the zero-overhead
 *     guarantee of an idle injector.
 *
 *  2. A seeded chaos campaign: many independently-seeded runs of the
 *     protection-fault workload with randomly placed injections. The
 *     invariant under test is the robustness contract — every run
 *     either converges bit-identically to the fault-free reference
 *     or terminates with a structured GuestError diagnosis; no run
 *     may crash the host, hang, or die on a PanicError/FatalError.
 *     When a seed breaks the contract, the divergence finder shrinks
 *     it to a minimal repro window and the failure message carries
 *     the copy-pasteable `uexc-snap replay` line for the saved file —
 *     nobody re-runs the campaign from boot to debug a CI failure.
 *
 * Seed count defaults to 200 and can be overridden with the
 * UEXC_CHAOS_SEEDS environment variable.
 */

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/guesterror.h"
#include "common/logging.h"
#include "core/chaos.h"
#include "os/layout.h"
#include "sim/faultinject.h"

namespace uexc::rt {
namespace {

using chaos::kRegion;
using chaos::kRegionBytes;
using chaos::kScratch;
using chaos::Rig;
using os::kPageBytes;
using os::kProtRead;
using os::kProtWrite;
using sim::FaultInjector;
using sim::FaultKind;

// -- deterministic unit coverage -------------------------------------------

/**
 * The zero-overhead baseline: an attached injector with no events is
 * bit-identical (cycles, instret, memory contents) to no injector.
 */
TEST(FaultInject, IdleInjectorIsBitIdentical)
{
    Rig plain;
    FaultInjector idle;
    Rig hooked(&idle);

    plain.run();
    hooked.run();

    EXPECT_EQ(plain.words(), hooked.words());
    EXPECT_EQ(plain.env().cpu().cycles(), hooked.env().cpu().cycles());
    EXPECT_EQ(plain.env().cpu().instret(),
              hooked.env().cpu().instret());
    EXPECT_TRUE(idle.fired().empty());
}

/** A spurious refill for a mapped page is repaired transparently. */
TEST(FaultInject, SpuriousRefillIsTransparent)
{
    FaultInjector inj;
    Rig rig(&inj);
    inj.addEvent({FaultKind::SpuriousException, 0,
                  rig.env().cpu().instret() + 5, kScratch, 0, 0});

    rig.env().store(kRegion, 41);
    (void)rig.env().load(kScratch);
    EXPECT_EQ(inj.pendingCount(), 0u);
    ASSERT_EQ(inj.fired().size(), 1u);
    EXPECT_EQ(rig.env().load(kRegion), 41u);
    EXPECT_FALSE(rig.env().demoted());
}

/** A TLB eviction only costs a refill; execution is unaffected. */
TEST(FaultInject, TlbEvictionIsRecoverable)
{
    FaultInjector inj;
    Rig rig(&inj);
    for (unsigned idx = 0; idx < 8; idx++) {
        inj.addEvent({FaultKind::TlbSpuriousMiss, 0,
                      rig.env().cpu().instret() + 20 + idx, 0, 0, idx});
    }
    rig.env().store(kRegion, 7);
    rig.env().store(kRegion + kPageBytes, 8);
    EXPECT_EQ(rig.env().load(kRegion), 7u);
    EXPECT_EQ(rig.env().load(kRegion + kPageBytes), 8u);
    EXPECT_FALSE(rig.env().demoted());
}

/**
 * In-place TLB corruption (V cleared under a valid PTE) is detected
 * by the kernel's pmap consistency check and surfaces as a structured
 * GuestError, not a host panic.
 */
TEST(FaultInject, TlbCorruptionIsDiagnosed)
{
    setLoggingEnabled(false);
    bool diagnosed = false;
    try {
        for (unsigned pass = 0; pass < 8 && !diagnosed; pass++) {
            FaultInjector inj;
            Rig rig(&inj);
            rig.env().store(kRegion, 1); // a live TLB entry exists
            for (unsigned idx = 0; idx < 8; idx++) {
                inj.addEvent({FaultKind::TlbCorrupt, 0,
                              rig.env().cpu().instret(), 0, 0,
                              pass * 8 + idx});
            }
            try {
                rig.runTo(chaos::kChaosOps);
            } catch (const GuestError &e) {
                diagnosed = true;
                EXPECT_NE(std::string(e.what()).find("bad trap"),
                          std::string::npos)
                    << e.what();
            }
        }
    } catch (const std::exception &e) {
        FAIL() << "non-GuestError escaped: " << e.what();
    }
    EXPECT_TRUE(diagnosed);
    setLoggingEnabled(true);
}

/**
 * A runaway user handler exhausts the watchdog budget, is demoted to
 * kernel-mediated delivery, and the faulting access still completes.
 */
TEST(FaultInject, HandlerRunawayDemotesAndRecovers)
{
    FaultInjector inj;
    chaos::RigConfig cfg;
    cfg.handlerBudget = 20000;
    Rig rig(&inj, cfg);

    Addr stub_page = rig.env().stubAddr() & ~(kPageBytes - 1);
    Addr stub_pa = rig.physOf(stub_page) +
                   (rig.env().stubAddr() & (kPageBytes - 1));
    inj.addEvent({FaultKind::HandlerRunaway, 0,
                  rig.env().cpu().instret(), stub_pa, 0, 0});

    rig.env().protect(kRegion, kRegionBytes, kProtRead);
    rig.env().store(kRegion + 8, 99); // faults into the looping stub

    EXPECT_TRUE(rig.env().demoted());
    EXPECT_EQ(rig.env().deliveryMode(), DeliveryMode::UltrixSignal);
    EXPECT_EQ(rig.env().stats().deliveryDemoted, 1u);
    EXPECT_EQ(rig.kernel().deliveryDemotions(), 1u);
    EXPECT_EQ(rig.env().load(kRegion + 8), 99u);

    // Later faults keep working through the kernel-mediated path.
    rig.env().protect(kRegion, kRegionBytes, kProtRead);
    rig.env().store(kRegion + 12, 100);
    EXPECT_EQ(rig.env().load(kRegion + 12), 100u);
    EXPECT_EQ(rig.env().stats().deliveryDemoted, 1u);
}

/**
 * Corrupting the pinned save page's canary is detected at the next
 * fast-mode delivery: the delivery in flight still completes, the
 * environment is demoted, and the canary is repaired.
 */
TEST(FaultInject, SavePageCanaryCorruptionDemotes)
{
    FaultInjector inj;
    Rig rig(&inj);

    Addr frame_pa = rig.physOf(os::kUexcFramePage);
    inj.addEvent({FaultKind::MemBitFlip, 0, rig.env().cpu().instret(),
                  frame_pa + os::kUexcCanaryOffset + 128, 13, 0});

    rig.env().protect(kRegion, kRegionBytes, kProtRead);
    rig.env().store(kRegion + 4, 55);

    EXPECT_EQ(rig.env().load(kRegion + 4), 55u);
    EXPECT_EQ(rig.env().stats().savePageCorruptions, 1u);
    EXPECT_TRUE(rig.env().demoted());
    EXPECT_EQ(rig.env().stats().deliveryDemoted, 1u);

    // Demoted but alive: further protection faults still deliver.
    rig.env().protect(kRegion, kRegionBytes, kProtRead);
    rig.env().store(kRegion + 16, 56);
    EXPECT_EQ(rig.env().load(kRegion + 16), 56u);
    EXPECT_EQ(rig.env().stats().savePageCorruptions, 1u);
}

/** A data-region bit flip before the final rewrite cannot survive
 *  (the rig closes the injection window before the rewrite). */
TEST(FaultInject, DataBitFlipIsOverwrittenByRecovery)
{
    Rig plain;
    plain.run();

    FaultInjector inj;
    Rig rig(&inj);
    inj.addEvent({FaultKind::MemBitFlip, 0,
                  rig.env().cpu().instret() + 100,
                  rig.physOf(kRegion) + 64, 7, 0});
    rig.run();
    EXPECT_EQ(rig.words(), plain.words());
}

// -- the seeded chaos campaign ------------------------------------------

/**
 * Shrink a failing seed to its minimal repro window, save the window
 * to a repro file (under UEXC_REPRO_DIR when set, so CI uploads it as
 * an artifact), and return the one-line reproduction command. Called
 * from assertion messages, i.e. only when a seed actually fails.
 */
std::string
reproLineFor(std::uint64_t seed, const chaos::Reference &ref)
{
    chaos::ReproWindow repro =
        chaos::shrinkCampaign(seed, ref.window, ref.words);
    if (!repro.found)
        return "(shrink could not reproduce the failure)";
    std::string dir = ::testing::TempDir();
    if (const char *d = std::getenv("UEXC_REPRO_DIR"))
        dir = std::string(d) + "/";
    std::string path = dir + "chaos_seed_" + std::to_string(seed) +
                       ".uxsn";
    chaos::writeReproFile(repro, path);
    return "reproduce ops [" + std::to_string(repro.startOp) + ", " +
           std::to_string(repro.endOp) + ") with: " +
           chaos::reproCommandLine(path);
}

TEST(FaultInjectChaos, SeededCampaign)
{
    setLoggingEnabled(false);
    chaos::Reference ref = chaos::makeReference();

    unsigned seeds = 200;
    if (const char *s = std::getenv("UEXC_CHAOS_SEEDS"))
        seeds = static_cast<unsigned>(std::atoi(s));

    unsigned converged = 0, diagnosed = 0;
    for (unsigned seed = 1; seed <= seeds; seed++) {
        std::uint64_t full_seed = 0x9000 + seed;
        chaos::CampaignOutcome out =
            chaos::runCampaign(full_seed, ref.window, ref.words);
        ASSERT_FALSE(out.hostFailure)
            << "seed " << seed << ": " << out.what << "\n"
            << reproLineFor(full_seed, ref);
        if (out.diagnosed) {
            // Only the detected classes may end in a diagnosis;
            // every recoverable class must converge.
            ASSERT_TRUE(out.mayDiagnose)
                << "seed " << seed
                << " diagnosed without a detectable fault: " << out.what
                << "\n"
                << reproLineFor(full_seed, ref);
            diagnosed++;
        } else {
            converged++;
        }
    }
    EXPECT_EQ(converged + diagnosed, seeds);
    EXPECT_GT(converged, 0u);
    setLoggingEnabled(true);
}

/**
 * The campaign verdict is scheduler-independent: running the rig's
 * machine under the Barrier (host-thread) scheduler instead of the
 * Serial reference changes nothing a seed can observe — diagnosis,
 * failure op, and final words all match. (RigConfig::scheduler is
 * the knob chaos replays would use; this pins its equivalence.)
 */
TEST(FaultInjectChaos, VerdictIsSchedulerIndependent)
{
    setLoggingEnabled(false);
    chaos::RigConfig serial_cfg, barrier_cfg;
    serial_cfg.scheduler = sim::SchedulerMode::Serial;
    barrier_cfg.scheduler = sim::SchedulerMode::Barrier;
    chaos::Reference ref = chaos::makeReference(serial_cfg);

    for (std::uint64_t seed : {0x61ull, 0x62ull, 0x63ull, 0x64ull,
                               0x9001ull, 0x9002ull}) {
        chaos::CampaignOutcome a =
            chaos::runCampaign(seed, ref.window, ref.words,
                               serial_cfg);
        chaos::CampaignOutcome b =
            chaos::runCampaign(seed, ref.window, ref.words,
                               barrier_cfg);
        EXPECT_EQ(a.diagnosed, b.diagnosed) << seed;
        EXPECT_EQ(a.hostFailure, b.hostFailure) << seed;
        EXPECT_EQ(a.what, b.what) << seed;
        EXPECT_EQ(a.failOp, b.failOp) << seed;
        EXPECT_EQ(a.words, b.words) << seed;
    }
    setLoggingEnabled(true);
}

/** Same seed, same machine: the campaign replays bit-identically. */
TEST(FaultInjectChaos, CampaignIsDeterministic)
{
    setLoggingEnabled(false);
    chaos::Reference ref = chaos::makeReference();

    for (std::uint64_t seed : {0x51ull, 0x52ull, 0x53ull}) {
        chaos::CampaignOutcome a =
            chaos::runCampaign(seed, ref.window, ref.words);
        chaos::CampaignOutcome b =
            chaos::runCampaign(seed, ref.window, ref.words);
        EXPECT_EQ(a.diagnosed, b.diagnosed) << seed;
        EXPECT_EQ(a.hostFailure, b.hostFailure) << seed;
        EXPECT_EQ(a.what, b.what) << seed;
        EXPECT_EQ(a.failOp, b.failOp) << seed;
        EXPECT_EQ(a.words, b.words) << seed;
    }
    setLoggingEnabled(true);
}

} // namespace
} // namespace uexc::rt
