/**
 * @file
 * Fault injection and recovery hardening.
 *
 * Two layers of coverage:
 *
 *  1. Deterministic unit tests: each injection kind, the watchdog
 *     demotion path, the save-page canary, and the zero-overhead
 *     guarantee of an idle injector.
 *
 *  2. A seeded chaos campaign: many independently-seeded runs of a
 *     protection-fault workload with randomly placed injections. The
 *     invariant under test is the robustness contract — every run
 *     either converges bit-identically to the fault-free reference
 *     or terminates with a structured GuestError diagnosis; no run
 *     may crash the host, hang, or die on a PanicError/FatalError.
 *
 * Seed count defaults to 200 and can be overridden with the
 * UEXC_CHAOS_SEEDS environment variable.
 */

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/guesterror.h"
#include "common/logging.h"
#include "os_test_util.h"
#include "sim/faultinject.h"

namespace uexc::rt {
namespace {

using namespace os;
using namespace os::testutil;
using sim::FaultEvent;
using sim::FaultInjector;
using sim::FaultKind;

constexpr Addr kRegion = 0x01000000;         // workload data, 2 pages
constexpr Word kRegionBytes = 2 * kPageBytes;
constexpr Addr kScratch = 0x01008000;        // always-mapped page
constexpr Word kCheckStride = 64;            // bytes between checked words

/** One bootable workload instance, optionally under injection. */
struct Rig
{
    explicit Rig(FaultInjector *injector = nullptr)
        : booted_(configFor(injector)),
          env(booted_.kernel, DeliveryMode::FastSoftware)
    {
        env.install(kAllExcMask);
        env.allocate(kRegion, kRegionBytes);
        env.allocate(kScratch, kPageBytes);
        env.setHandler([this](Fault &) {
            // Idempotent recovery: make the whole region writable.
            env.protect(kRegion, kRegionBytes, kProtRead | kProtWrite);
        });
        env.store(kScratch, 0x5c5c5c5cu);  // map it for good
    }

    static sim::MachineConfig configFor(FaultInjector *injector)
    {
        sim::MachineConfig cfg = osMachineConfig(/*hw_extensions=*/true);
        cfg.cpu.faultInjector = injector;
        return cfg;
    }

    /** Protection-fault churn: the window injections land in. */
    void chaosPhase()
    {
        for (unsigned round = 0; round < 6; round++) {
            env.protect(kRegion, kRegionBytes, kProtRead);
            for (unsigned i = 0; i < 8; i++) {
                Addr va = kRegion + ((round * 8 + i) * 132u) %
                                        kRegionBytes;
                env.store(va & ~3u, round * 100 + i);
            }
            for (unsigned i = 0; i < 4; i++)
                (void)env.load(kRegion + (i * 292u) % kRegionBytes);
            (void)env.load(kScratch);
        }
    }

    /** Rewrite every checked word, then collect them. */
    std::vector<Word> finalPhase()
    {
        for (Word off = 0; off < kRegionBytes; off += kCheckStride)
            env.store(kRegion + off, 0xabcd0000u + off);
        std::vector<Word> words;
        for (Word off = 0; off < kRegionBytes; off += kCheckStride)
            words.push_back(env.load(kRegion + off));
        return words;
    }

    Addr physOf(Addr va) { return env.process().as().physOf(va); }

    BootedKernel booted_;
    UserEnv env;
};

// -- deterministic unit coverage -------------------------------------------

/**
 * The zero-overhead baseline: an attached injector with no events is
 * bit-identical (cycles, instret, memory contents) to no injector.
 */
TEST(FaultInject, IdleInjectorIsBitIdentical)
{
    Rig plain;
    FaultInjector idle;
    Rig hooked(&idle);

    plain.chaosPhase();
    hooked.chaosPhase();
    std::vector<Word> a = plain.finalPhase();
    std::vector<Word> b = hooked.finalPhase();

    EXPECT_EQ(a, b);
    EXPECT_EQ(plain.env.cpu().cycles(), hooked.env.cpu().cycles());
    EXPECT_EQ(plain.env.cpu().instret(), hooked.env.cpu().instret());
    EXPECT_TRUE(idle.fired().empty());
}

/** A spurious refill for a mapped page is repaired transparently. */
TEST(FaultInject, SpuriousRefillIsTransparent)
{
    FaultInjector inj;
    Rig rig(&inj);
    inj.addEvent({FaultKind::SpuriousException, 0,
                  rig.env.cpu().instret() + 5, kScratch, 0, 0});

    rig.env.store(kRegion, 41);
    (void)rig.env.load(kScratch);
    EXPECT_EQ(inj.pendingCount(), 0u);
    ASSERT_EQ(inj.fired().size(), 1u);
    EXPECT_EQ(rig.env.load(kRegion), 41u);
    EXPECT_FALSE(rig.env.demoted());
}

/** A TLB eviction only costs a refill; execution is unaffected. */
TEST(FaultInject, TlbEvictionIsRecoverable)
{
    FaultInjector inj;
    Rig rig(&inj);
    for (unsigned idx = 0; idx < 8; idx++) {
        inj.addEvent({FaultKind::TlbSpuriousMiss, 0,
                      rig.env.cpu().instret() + 20 + idx, 0, 0, idx});
    }
    rig.env.store(kRegion, 7);
    rig.env.store(kRegion + kPageBytes, 8);
    EXPECT_EQ(rig.env.load(kRegion), 7u);
    EXPECT_EQ(rig.env.load(kRegion + kPageBytes), 8u);
    EXPECT_FALSE(rig.env.demoted());
}

/**
 * In-place TLB corruption (V cleared under a valid PTE) is detected
 * by the kernel's pmap consistency check and surfaces as a structured
 * GuestError, not a host panic.
 */
TEST(FaultInject, TlbCorruptionIsDiagnosed)
{
    setLoggingEnabled(false);
    FaultInjector inj;
    Rig rig(&inj);
    rig.env.store(kRegion, 1);  // ensure a live TLB entry exists

    bool diagnosed = false;
    try {
        for (unsigned pass = 0; pass < 32 && !diagnosed; pass++) {
            for (unsigned idx = 0; idx < 8; idx++) {
                inj.addEvent({FaultKind::TlbCorrupt, 0,
                              rig.env.cpu().instret(), 0, 0,
                              pass * 8 + idx});
            }
            try {
                rig.chaosPhase();
            } catch (const GuestError &e) {
                diagnosed = true;
                EXPECT_NE(std::string(e.what()).find("bad trap"),
                          std::string::npos)
                    << e.what();
            }
        }
    } catch (const std::exception &e) {
        FAIL() << "non-GuestError escaped: " << e.what();
    }
    EXPECT_TRUE(diagnosed);
    setLoggingEnabled(true);
}

/**
 * A runaway user handler exhausts the watchdog budget, is demoted to
 * kernel-mediated delivery, and the faulting access still completes.
 */
TEST(FaultInject, HandlerRunawayDemotesAndRecovers)
{
    FaultInjector inj;
    Rig rig(&inj);
    rig.env.setHandlerBudget(20000);

    Addr stub_page = rig.env.stubAddr() & ~(kPageBytes - 1);
    Addr stub_pa = rig.physOf(stub_page) +
                   (rig.env.stubAddr() & (kPageBytes - 1));
    inj.addEvent({FaultKind::HandlerRunaway, 0,
                  rig.env.cpu().instret(), stub_pa, 0, 0});

    rig.env.protect(kRegion, kRegionBytes, kProtRead);
    rig.env.store(kRegion + 8, 99);  // faults into the looping stub

    EXPECT_TRUE(rig.env.demoted());
    EXPECT_EQ(rig.env.deliveryMode(), DeliveryMode::UltrixSignal);
    EXPECT_EQ(rig.env.stats().deliveryDemoted, 1u);
    EXPECT_EQ(rig.booted_.kernel.deliveryDemotions(), 1u);
    EXPECT_EQ(rig.env.load(kRegion + 8), 99u);

    // Later faults keep working through the kernel-mediated path.
    rig.env.protect(kRegion, kRegionBytes, kProtRead);
    rig.env.store(kRegion + 12, 100);
    EXPECT_EQ(rig.env.load(kRegion + 12), 100u);
    EXPECT_EQ(rig.env.stats().deliveryDemoted, 1u);
}

/**
 * Corrupting the pinned save page's canary is detected at the next
 * fast-mode delivery: the delivery in flight still completes, the
 * environment is demoted, and the canary is repaired.
 */
TEST(FaultInject, SavePageCanaryCorruptionDemotes)
{
    FaultInjector inj;
    Rig rig(&inj);

    Addr frame_pa = rig.physOf(kUexcFramePage);
    inj.addEvent({FaultKind::MemBitFlip, 0, rig.env.cpu().instret(),
                  frame_pa + kUexcCanaryOffset + 128, 13, 0});

    rig.env.protect(kRegion, kRegionBytes, kProtRead);
    rig.env.store(kRegion + 4, 55);

    EXPECT_EQ(rig.env.load(kRegion + 4), 55u);
    EXPECT_EQ(rig.env.stats().savePageCorruptions, 1u);
    EXPECT_TRUE(rig.env.demoted());
    EXPECT_EQ(rig.env.stats().deliveryDemoted, 1u);

    // Demoted but alive: further protection faults still deliver.
    rig.env.protect(kRegion, kRegionBytes, kProtRead);
    rig.env.store(kRegion + 16, 56);
    EXPECT_EQ(rig.env.load(kRegion + 16), 56u);
    EXPECT_EQ(rig.env.stats().savePageCorruptions, 1u);
}

/** A data-region bit flip before the final rewrite cannot survive. */
TEST(FaultInject, DataBitFlipIsOverwrittenByRecovery)
{
    Rig plain;
    plain.chaosPhase();
    std::vector<Word> want = plain.finalPhase();

    FaultInjector inj;
    Rig rig(&inj);
    inj.addEvent({FaultKind::MemBitFlip, 0,
                  rig.env.cpu().instret() + 100, rig.physOf(kRegion) + 64,
                  7, 0});
    rig.chaosPhase();
    inj.clear();
    EXPECT_EQ(rig.finalPhase(), want);
}

// -- the seeded chaos campaign ------------------------------------------

struct CampaignOutcome
{
    bool diagnosed = false;      ///< ended in a GuestError
    bool hostFailure = false;    ///< PanicError/FatalError/other escape
    std::string what;
    /**
     * Whether any scheduled event may legitimately end in a
     * diagnosis instead of convergence: TlbCorrupt (detected by the
     * pmap consistency check), and SpuriousException (a refill
     * injected inside the stub's resume window clobbers K0 — the
     * R3000 kernel-register hazard the paper's pinned save page
     * exists to keep refill-free; the watchdog turns the resulting
     * runaway into demotion or a GuestError).
     */
    bool mayDiagnose = false;
    std::vector<Word> words;
};

CampaignOutcome
runCampaign(std::uint64_t seed, InstCount window,
            const std::vector<Word> &reference)
{
    CampaignOutcome out;
    FaultInjector inj;
    try {
        Rig rig(&inj);
        std::uint64_t rng = seed;
        unsigned nevents =
            1 + FaultInjector::splitmix64(rng) % 3;
        for (unsigned i = 0; i < nevents; i++) {
            FaultEvent e;
            e.kind = static_cast<FaultKind>(
                FaultInjector::splitmix64(rng) % 5);
            e.hart = 0;
            e.atInst = rig.env.cpu().instret() +
                       FaultInjector::splitmix64(rng) % window;
            switch (e.kind) {
              case FaultKind::MemBitFlip: {
                // Confined to the workload region: the recovery
                // contract (final rewrite) covers exactly this memory.
                Word off = static_cast<Word>(
                    FaultInjector::splitmix64(rng) % kRegionBytes) & ~3u;
                e.addr = rig.physOf(kRegion +
                                    (off & ~(kPageBytes - 1))) +
                         (off & (kPageBytes - 1));
                e.bit = FaultInjector::splitmix64(rng) % 32;
                break;
              }
              case FaultKind::TlbCorrupt:
              case FaultKind::TlbSpuriousMiss:
                e.tlbIndex =
                    static_cast<unsigned>(
                        FaultInjector::splitmix64(rng));
                out.mayDiagnose |= e.kind == FaultKind::TlbCorrupt;
                break;
              case FaultKind::SpuriousException:
                e.addr = kScratch;
                out.mayDiagnose = true;
                break;
              case FaultKind::HandlerRunaway: {
                Addr page = rig.env.stubAddr() & ~(kPageBytes - 1);
                e.addr = rig.physOf(page) +
                         (rig.env.stubAddr() & (kPageBytes - 1));
                break;
              }
            }
            inj.addEvent(e);
        }

        rig.env.setHandlerBudget(50000);
        rig.chaosPhase();
        // Close the injection window before recovery rewrites the
        // region; still-pending events never fired.
        inj.clear();
        out.words = rig.finalPhase();
        if (out.words != reference) {
            out.hostFailure = true;
            out.what = "final contents diverged from reference";
        }
    } catch (const GuestError &e) {
        out.diagnosed = true;
        out.what = e.what();
    } catch (const std::exception &e) {
        out.hostFailure = true;
        out.what = e.what();
    } catch (...) {
        out.hostFailure = true;
        out.what = "unknown exception";
    }
    return out;
}

TEST(FaultInjectChaos, SeededCampaign)
{
    setLoggingEnabled(false);

    // Fault-free reference: final words and the size of the
    // injection window (instructions retired through the chaos
    // phase).
    Rig ref;
    ref.chaosPhase();
    InstCount window = ref.env.cpu().instret();
    std::vector<Word> reference = ref.finalPhase();

    unsigned seeds = 200;
    if (const char *s = std::getenv("UEXC_CHAOS_SEEDS"))
        seeds = static_cast<unsigned>(std::atoi(s));

    unsigned converged = 0, diagnosed = 0;
    for (unsigned seed = 1; seed <= seeds; seed++) {
        CampaignOutcome out =
            runCampaign(0x9000 + seed, window, reference);
        ASSERT_FALSE(out.hostFailure)
            << "seed " << seed << ": " << out.what;
        if (out.diagnosed) {
            // Only the detected classes may end in a diagnosis;
            // every recoverable class must converge.
            ASSERT_TRUE(out.mayDiagnose)
                << "seed " << seed
                << " diagnosed without a detectable fault: "
                << out.what;
            diagnosed++;
        } else {
            converged++;
        }
    }
    EXPECT_EQ(converged + diagnosed, seeds);
    EXPECT_GT(converged, 0u);
    setLoggingEnabled(true);
}

/** Same seed, same machine: the campaign replays bit-identically. */
TEST(FaultInjectChaos, CampaignIsDeterministic)
{
    setLoggingEnabled(false);
    Rig ref;
    ref.chaosPhase();
    InstCount window = ref.env.cpu().instret();
    std::vector<Word> reference = ref.finalPhase();

    for (std::uint64_t seed : {0x51ull, 0x52ull, 0x53ull}) {
        CampaignOutcome a = runCampaign(seed, window, reference);
        CampaignOutcome b = runCampaign(seed, window, reference);
        EXPECT_EQ(a.diagnosed, b.diagnosed) << seed;
        EXPECT_EQ(a.hostFailure, b.hostFailure) << seed;
        EXPECT_EQ(a.what, b.what) << seed;
        EXPECT_EQ(a.words, b.words) << seed;
    }
    setLoggingEnabled(true);
}

} // namespace
} // namespace uexc::rt
