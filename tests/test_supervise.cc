/**
 * @file
 * Unit tests of the fleet supervisor: the typed failure taxonomy,
 * heartbeat wedge detection, the recovery policy (restart vs.
 * re-migrate vs. quarantine), capped exponential backoff with seeded
 * jitter, MTTR bookkeeping, and the determinism of the decision log.
 *
 * Everything here is mechanism-free — no machines, no images — which
 * is the point: the policy must be a pure function of the seed and
 * the observed event sequence, so the fleet's self-healing behaviour
 * is reproducible from its decision log alone.
 */

#include <string>

#include <gtest/gtest.h>

#include "core/supervise.h"

namespace uexc::rt::supervise {
namespace {

TEST(Supervise, NamesAndDecisionLinesAreStable)
{
    EXPECT_STREQ(failureKindName(FailureKind::Wedged), "wedged");
    EXPECT_STREQ(failureKindName(FailureKind::Crashed), "crashed");
    EXPECT_STREQ(failureKindName(FailureKind::CorruptedImage),
                 "corrupted-image");
    EXPECT_STREQ(failureKindName(FailureKind::Partitioned),
                 "partitioned");
    EXPECT_STREQ(failureKindName(FailureKind::HostDown), "host-down");
    EXPECT_STREQ(actionName(Action::Restart), "restart");
    EXPECT_STREQ(actionName(Action::Remigrate), "remigrate");
    EXPECT_STREQ(actionName(Action::Quarantine), "quarantine");

    Decision d;
    d.tick = 12;
    d.guest = 3;
    d.failure = FailureKind::HostDown;
    d.action = Action::Remigrate;
    d.consecutiveFailures = 2;
    d.backoffTicks = 1;
    EXPECT_EQ(decisionLine(d),
              "tick 12 guest 3: host-down -> remigrate "
              "(failure #2, backoff 1 ticks)");
    d.note = "host 1 crashed";
    EXPECT_EQ(decisionLine(d),
              "tick 12 guest 3: host-down -> remigrate "
              "(failure #2, backoff 1 ticks) — host 1 crashed");
}

TEST(Supervise, HeartbeatDetectsAWedgeAfterConfiguredBeats)
{
    SupervisorConfig cfg;
    cfg.wedgedAfterBeats = 2;
    Supervisor sup(cfg);
    sup.track(0);

    // first beat seeds the baseline; identical counters afterwards
    // stall, and the second stalled beat crosses the threshold
    EXPECT_FALSE(sup.heartbeat(0, 1, 100, 7));
    EXPECT_FALSE(sup.heartbeat(0, 2, 100, 7));
    EXPECT_TRUE(sup.heartbeat(0, 3, 100, 7));
    EXPECT_EQ(sup.stats().wedgeDetections, 1u);

    // progress on either counter resets the stall count
    EXPECT_FALSE(sup.heartbeat(0, 4, 101, 7));
    EXPECT_FALSE(sup.heartbeat(0, 5, 101, 7));
    EXPECT_FALSE(sup.heartbeat(0, 6, 101, 8)); // echo alone is life
    EXPECT_FALSE(sup.heartbeat(0, 7, 101, 8));
    EXPECT_TRUE(sup.heartbeat(0, 8, 101, 8));
}

TEST(Supervise, DownAndQuarantinedGuestsDoNotBeat)
{
    Supervisor sup;
    sup.track(0);
    sup.onFailure(0, 5, 0, FailureKind::Crashed, "");
    EXPECT_TRUE(sup.down(0));
    // a down guest never reports wedged (it is already being handled)
    EXPECT_FALSE(sup.heartbeat(0, 6, 0, 0));
    EXPECT_FALSE(sup.heartbeat(0, 7, 0, 0));
    EXPECT_FALSE(sup.heartbeat(0, 8, 0, 0));

    sup.onRecovered(0, 9, 0);
    EXPECT_FALSE(sup.down(0));
    // recovery re-seeds the liveness baseline: the first beat after
    // recovery never compares against pre-outage counters
    EXPECT_FALSE(sup.heartbeat(0, 10, 0, 0));
    EXPECT_FALSE(sup.heartbeat(0, 11, 0, 0));
    EXPECT_TRUE(sup.heartbeat(0, 12, 0, 0));
}

TEST(Supervise, PolicyMapsFailureKindsToActions)
{
    Supervisor sup;
    for (unsigned g = 0; g < 5; g++)
        sup.track(g);
    EXPECT_EQ(sup.onFailure(0, 1, 0, FailureKind::HostDown, "").action,
              Action::Remigrate);
    EXPECT_EQ(
        sup.onFailure(1, 1, 0, FailureKind::Partitioned, "").action,
        Action::Remigrate);
    EXPECT_EQ(sup.onFailure(2, 1, 0, FailureKind::Wedged, "").action,
              Action::Restart);
    EXPECT_EQ(sup.onFailure(3, 1, 0, FailureKind::Crashed, "").action,
              Action::Restart);
    EXPECT_EQ(
        sup.onFailure(4, 1, 0, FailureKind::CorruptedImage, "").action,
        Action::Restart);
    EXPECT_EQ(sup.stats().remigrations, 2u);
    EXPECT_EQ(sup.stats().restarts, 3u);
    for (unsigned k = 0; k < kFailureKinds; k++)
        EXPECT_EQ(sup.stats().failuresByKind[k], 1u);
}

TEST(Supervise, BackoffDoublesWithJitterAndCaps)
{
    SupervisorConfig cfg;
    cfg.quarantineAfter = 100; // stay on the backoff curve
    cfg.backoffBaseTicks = 1;
    cfg.backoffCapTicks = 8;
    Supervisor sup(cfg);
    sup.track(0);

    // expected backoff before jitter: 0, 1, 2, 4, 8, 8 (capped), ...
    const std::uint64_t want[] = {0, 1, 2, 4, 8, 8, 8};
    std::uint64_t tick = 10;
    for (unsigned i = 0; i < 7; i++) {
        Decision d =
            sup.onFailure(0, tick, 0, FailureKind::Crashed, "");
        EXPECT_EQ(d.consecutiveFailures, i + 1);
        if (i == 0) {
            // the first recovery attempt is immediate
            EXPECT_EQ(d.backoffTicks, 0u);
        } else {
            EXPECT_GE(d.backoffTicks, want[i]);
            EXPECT_LE(d.backoffTicks, want[i] + 1) << "jitter > 1";
        }
        EXPECT_EQ(sup.retryAtTick(0), tick + d.backoffTicks);
        tick += d.backoffTicks + 1;
    }
}

TEST(Supervise, QuarantineAfterKAndRecoveryResetsTheCount)
{
    SupervisorConfig cfg;
    cfg.quarantineAfter = 3;
    Supervisor sup(cfg);
    sup.track(0);

    sup.onFailure(0, 1, 0, FailureKind::Crashed, "");
    sup.onFailure(0, 2, 0, FailureKind::Crashed, "");
    EXPECT_EQ(sup.consecutiveFailures(0), 2u);
    sup.onRecovered(0, 3, 0);
    EXPECT_EQ(sup.consecutiveFailures(0), 0u);
    EXPECT_FALSE(sup.quarantined(0));

    sup.onFailure(0, 4, 0, FailureKind::Crashed, "");
    sup.onFailure(0, 5, 0, FailureKind::Crashed, "");
    Decision d = sup.onFailure(0, 6, 0, FailureKind::Crashed, "");
    EXPECT_EQ(d.action, Action::Quarantine);
    EXPECT_TRUE(sup.quarantined(0));
    EXPECT_EQ(sup.stats().quarantines, 1u);
    // a quarantined guest is out of the heartbeat rotation
    EXPECT_FALSE(sup.heartbeat(0, 7, 0, 0));
}

TEST(Supervise, MttrSamplesAndPercentiles)
{
    Supervisor sup;
    sup.track(0);
    sup.track(1);

    // guest 0: down from tick 10 / cycle 1000 to tick 14 / cycle 5000
    sup.onFailure(0, 10, 1000, FailureKind::HostDown, "");
    // an escalation does NOT move the down-since marker
    sup.onFailure(0, 12, 3000, FailureKind::Partitioned, "");
    sup.onRecovered(0, 14, 5000);

    // guest 1: down from tick 20 to tick 21
    sup.onFailure(1, 20, 9000, FailureKind::Crashed, "");
    sup.onRecovered(1, 21, 9500);

    ASSERT_EQ(sup.stats().mttrTicks.size(), 2u);
    EXPECT_EQ(sup.stats().mttrTicks[0], 4u);
    EXPECT_EQ(sup.stats().mttrTicks[1], 1u);
    EXPECT_EQ(sup.stats().mttrCycles[0], 4000u);
    EXPECT_EQ(sup.stats().mttrCycles[1], 500u);
    EXPECT_EQ(sup.stats().recoveries, 2u);

    // percentiles over {1, 4}: p50 rounds to the upper sample here
    // (rank 0.5 rounds to index 1), p99 is the max, p0 the min
    EXPECT_EQ(sup.stats().mttrTicksPercentile(0), 1u);
    EXPECT_EQ(sup.stats().mttrTicksPercentile(99), 4u);
    EXPECT_GE(sup.stats().mttrTicksPercentile(99),
              sup.stats().mttrTicksPercentile(50));

    // a recovery without a preceding failure records nothing
    sup.onRecovered(1, 30, 9999);
    EXPECT_EQ(sup.stats().mttrTicks.size(), 2u);
}

TEST(Supervise, SameSeedSameEventsSameDecisionLog)
{
    SupervisorConfig cfg;
    cfg.seed = 42;
    cfg.quarantineAfter = 4;
    Supervisor a(cfg), b(cfg);
    for (Supervisor *s : {&a, &b}) {
        s->track(0);
        s->track(1);
        s->onFailure(0, 1, 100, FailureKind::HostDown, "host 2 died");
        s->onFailure(0, 3, 300, FailureKind::Partitioned, "link");
        s->onRecovered(0, 5, 500);
        s->onFailure(1, 6, 600, FailureKind::Wedged, "no progress");
        s->onFailure(1, 7, 700, FailureKind::Crashed, "");
        s->onFailure(1, 9, 900, FailureKind::Crashed, "");
    }
    EXPECT_FALSE(a.decisionLogText().empty());
    EXPECT_EQ(a.decisionLogText(), b.decisionLogText());
    ASSERT_EQ(a.decisionLog().size(), b.decisionLog().size());
    EXPECT_EQ(a.stats().backoffTicksCharged,
              b.stats().backoffTicksCharged);
    EXPECT_EQ(a.stats().mttrTicks, b.stats().mttrTicks);
}

} // namespace
} // namespace uexc::rt::supervise
