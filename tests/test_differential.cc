/**
 * @file
 * Differential execution tests: every guest program is run twice, on
 * a reference machine (per-instruction interpreter) and on a machine
 * with the predecoded fast interpreter enabled, and the complete
 * architectural state — registers, HI/LO, PC/NPC, CP0, TLB, physical
 * memory — plus every statistic (instruction/cycle/branch/exception
 * counters, TLB lookup/miss counts, phase profiles) must come out
 * bit-identical. The fast path is an optimization, never a semantic.
 *
 * The cases deliberately stress the fast path's invalidation edges:
 * self-modifying code, exceptions in the middle of a decoded block,
 * faults in branch delay slots, TLB rewrites, user/kernel transitions
 * and the cache-modeled paper configuration.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "core/microbench.h"
#include "sim_test_util.h"

namespace uexc::sim {
namespace {

using testutil::BareMachine;
using testutil::kTestOrigin;

MachineConfig
smallConfig(bool fast)
{
    MachineConfig config;
    config.memBytes = 1 << 20;
    config.cpu.fastInterpreter = fast;
    return config;
}

/** Compare every architectural register, statistic and memory word. */
void
expectIdenticalState(Machine &ref, Machine &fst)
{
    const Cpu &rc = ref.cpu();
    const Cpu &fc = fst.cpu();

    for (unsigned r = 0; r < NumRegs; r++)
        EXPECT_EQ(rc.reg(r), fc.reg(r)) << "GPR " << regName(r);
    EXPECT_EQ(rc.hi(), fc.hi());
    EXPECT_EQ(rc.lo(), fc.lo());
    EXPECT_EQ(rc.pc(), fc.pc());
    EXPECT_EQ(rc.npc(), fc.npc());

    static const unsigned cp0_regs[] = {
        cp0reg::Index, cp0reg::Random, cp0reg::EntryLo, cp0reg::Context,
        cp0reg::BadVAddr, cp0reg::EntryHi, cp0reg::Status, cp0reg::Cause,
        cp0reg::Epc,
    };
    for (unsigned r : cp0_regs)
        EXPECT_EQ(rc.cp0().read(r), fc.cp0().read(r)) << "CP0 reg " << r;

    for (unsigned i = 0; i < Tlb::NumEntries; i++) {
        EXPECT_EQ(rc.tlb().entry(i).hi, fc.tlb().entry(i).hi)
            << "TLB entry " << i << " hi";
        EXPECT_EQ(rc.tlb().entry(i).lo, fc.tlb().entry(i).lo)
            << "TLB entry " << i << " lo";
    }

    const CpuStats &rs = rc.stats();
    const CpuStats &fs = fc.stats();
    EXPECT_EQ(rs.instructions, fs.instructions);
    EXPECT_EQ(rs.cycles, fs.cycles);
    EXPECT_EQ(rs.loads, fs.loads);
    EXPECT_EQ(rs.stores, fs.stores);
    EXPECT_EQ(rs.branches, fs.branches);
    EXPECT_EQ(rs.exceptionsTaken, fs.exceptionsTaken);
    EXPECT_EQ(rs.tlbRefillFaults, fs.tlbRefillFaults);
    EXPECT_EQ(rs.userVectoredExceptions, fs.userVectoredExceptions);
    for (unsigned c = 0; c < NumExcCodes; c++)
        EXPECT_EQ(rs.perExcCode[c], fs.perExcCode[c]) << "exc code " << c;

    EXPECT_EQ(rc.tlb().stats().lookups, fc.tlb().stats().lookups);
    EXPECT_EQ(rc.tlb().stats().misses, fc.tlb().stats().misses);

    ASSERT_EQ(ref.mem().size(), fst.mem().size());
    std::vector<Word> rmem(ref.mem().size() / 4);
    std::vector<Word> fmem(fst.mem().size() / 4);
    ref.mem().readBlock(0, rmem.data(), ref.mem().size());
    fst.mem().readBlock(0, fmem.data(), fst.mem().size());
    unsigned reported = 0;
    for (std::size_t i = 0; i < rmem.size() && reported < 8; i++) {
        if (rmem[i] != fmem[i]) {
            ADD_FAILURE() << "memory differs at paddr 0x" << std::hex
                          << (i * 4) << ": ref 0x" << rmem[i]
                          << " fast 0x" << fmem[i];
            reported++;
        }
    }
}

/** A reference machine and a fast-interpreter machine run in lockstep. */
struct DiffPair
{
    explicit DiffPair(const MachineConfig &ref_config = smallConfig(false),
                      const MachineConfig &fast_config = smallConfig(true))
        : ref(ref_config), fst(fast_config)
    {
    }

    void load(const std::function<void(Assembler &)> &body)
    {
        ref.loadAsm(body);
        fst.loadAsm(body);
    }

    /** Apply identical host-side setup (mappings, mode, ...) to both. */
    void setup(const std::function<void(Machine &)> &fn)
    {
        fn(ref.machine);
        fn(fst.machine);
    }

    void run(InstCount max_insts = 1'000'000)
    {
        RunResult r = ref.cpu().run(max_insts);
        RunResult f = fst.cpu().run(max_insts);
        EXPECT_EQ(static_cast<int>(r.reason), static_cast<int>(f.reason));
        EXPECT_EQ(r.instsExecuted, f.instsExecuted);
        expectIdenticalState(ref.machine, fst.machine);
    }

    BareMachine ref;
    BareMachine fst;
};

/**
 * Install a skip-the-faulting-instruction handler at both exception
 * vectors, so programs can take exceptions mid-stream and continue.
 */
void
installSkipHandlers(Machine &m)
{
    for (Addr vector : {Cpu::RefillVector, Cpu::GeneralVector}) {
        Assembler a(vector);
        a.mfc0(K0, cp0reg::Epc);
        a.addiu(K0, K0, 4);
        a.jr(K0);
        a.rfe();  // delay slot
        m.load(a.finalize());
    }
}

TEST(Differential, TightAluLoop)
{
    DiffPair d;
    d.load([](Assembler &a) {
        a.li32(T1, 5000);
        a.label("loop");
        a.addiu(T0, T0, 3);
        a.xor_(T2, T0, T1);
        a.addiu(T1, T1, -1);
        a.bne(T1, Zero, "loop");
        a.sltu(T3, T1, T0);  // delay slot
        a.hcall(0);
    });
    d.run();
}

TEST(Differential, MixedAluMultDivShifts)
{
    DiffPair d;
    d.load([](Assembler &a) {
        a.li32(T0, 0x80000000u);
        a.li32(T1, 0xffffffffu);
        a.div(T0, T1);       // INT_MIN / -1 wrap case
        a.mfhi(T2);
        a.mflo(T3);
        a.divu(T0, Zero);    // divide by zero, defined result
        a.mfhi(T4);
        a.mflo(T5);
        a.mult(T0, T1);
        a.mfhi(T6);
        a.mflo(T7);
        a.li32(A0, 123456789);
        a.sra(A1, A0, 7);
        a.srlv(A2, A0, T0);
        a.slti(A3, A0, -5);
        a.lui(V0, 0xbeef);
        a.nor(V1, A0, A1);
        a.hcall(0);
    });
    d.run();
}

TEST(Differential, SelfModifyingCodeSamePage)
{
    // The program overwrites an instruction a few words ahead of the
    // PC, inside the page (and decoded block) currently executing.
    // The fast interpreter must notice the page-version bump and
    // re-decode; both modes must retire the *new* instruction.
    DiffPair d;
    d.load([](Assembler &a) {
        a.li32(T0, enc::addiu(V0, V0, 7));  // replacement instruction
        a.li32(T1, kTestOrigin);
        a.lwLo(T2, "patch", T1);   // not needed; keep addresses simple
        a.swLo(T0, "patch", T1);   // patch the slot below
        a.label("patch");
        a.addiu(V0, V0, 1);        // replaced by addiu v0, v0, 7
        a.addiu(V0, V0, 100);
        a.hcall(0);
    });
    d.run();
    EXPECT_EQ(d.ref.cpu().reg(V0), 107u);
    EXPECT_EQ(d.fst.cpu().reg(V0), 107u);
}

TEST(Differential, SelfModifyingCodeBackwardLoop)
{
    // A loop whose body is patched on a later iteration: the patch
    // targets an *earlier* address the fast path already has decoded.
    DiffPair d;
    d.load([](Assembler &a) {
        a.li32(T1, 4);                       // iterations
        a.li32(T0, enc::addiu(V0, V0, 50));
        a.li32(T3, kTestOrigin);
        a.label("loop");
        a.addiu(V0, V0, 1);                  // patched mid-run
        a.label("after");
        a.addiu(T1, T1, -1);
        a.swLo(T0, "loop", T3);              // patch the loop body
        a.bne(T1, Zero, "loop");
        a.nop();
        a.hcall(0);
    });
    d.run();
    // iteration 1 runs the original +1, the store then rewrites it,
    // so iterations 2..4 run +50
    EXPECT_EQ(d.ref.cpu().reg(V0), 151u);
    EXPECT_EQ(d.fst.cpu().reg(V0), 151u);
}

TEST(Differential, MidBlockException)
{
    // A TLB refill fault from a kuseg load in the middle of a
    // straight-line block; the skip handler resumes after it.
    DiffPair d;
    d.setup(installSkipHandlers);
    d.load([](Assembler &a) {
        a.addiu(V0, V0, 1);
        a.addiu(V0, V0, 2);
        a.lw(T0, 0, Zero);     // kuseg vaddr 0: refill fault
        a.addiu(V0, V0, 4);
        a.addiu(V0, V0, 8);
        a.hcall(0);
    });
    d.run();
    EXPECT_EQ(d.ref.cpu().reg(V0), 15u);
    EXPECT_EQ(d.ref.cpu().stats().tlbRefillFaults, 1u);
}

TEST(Differential, OverflowExceptionMidBlock)
{
    DiffPair d;
    d.setup(installSkipHandlers);
    d.load([](Assembler &a) {
        a.li32(T0, 0x7fffffffu);
        a.addiu(V0, V0, 1);
        a.add(T1, T0, T0);     // signed overflow -> Ov exception
        a.addiu(V0, V0, 2);
        a.hcall(0);
    });
    d.run();
    EXPECT_EQ(d.ref.cpu().reg(V0), 3u);
    EXPECT_EQ(d.ref.cpu().stats().exceptionsTaken, 1u);
}

TEST(Differential, BranchDelaySlotFault)
{
    // The delay slot of a taken branch faults: EPC must point at the
    // branch (BD set) and both modes must agree. The skip handler
    // resumes at EPC + 4 — the delay slot — which then re-executes as
    // a standalone instruction, faults with its own EPC, and the
    // second skip lands past it; the branch redirect is lost, which
    // is precisely the subtle trajectory both interpreters must share.
    DiffPair d;
    d.setup(installSkipHandlers);
    d.load([](Assembler &a) {
        a.li32(T0, 0x00001000u);   // kuseg address, unmapped
        a.li32(T1, kTestOrigin);   // valid kseg0 address
        a.addiu(V0, V0, 1);
        a.beq(Zero, Zero, "out");
        a.lw(T2, 0, T0);           // delay slot: refill fault
        a.label("out");
        a.addiu(V0, V0, 2);
        a.hcall(0);
    });
    d.run();
    // the handler resumes at branch+4 (the delay slot), which faults
    // again ad infinitum unless the skip lands past it; either way
    // both interpreters must do exactly the same thing for a bounded
    // instruction budget
}

TEST(Differential, JumpToUnalignedAddress)
{
    DiffPair d;
    d.setup(installSkipHandlers);
    d.load([](Assembler &a) {
        a.li32(T0, kTestOrigin + 0x22);  // unaligned target
        a.jr(T0);
        a.nop();
        a.hcall(0);
    });
    // AdEL on fetch; the skip handler "resumes" at epc+4 which is
    // also unaligned, so this loops taking exceptions — run a fixed
    // budget and require identical trajectories.
    d.run(2000);
}

TEST(Differential, TlbWriteAndRemapSequence)
{
    // Kernel-mode code maps a kuseg page via mtc0/tlbwi, stores
    // through it, remaps the same VPN to a different frame, and reads
    // back — exercising micro-TLB invalidation on TLB writes.
    constexpr Addr kVa = 0x00400000u;
    constexpr Addr kPa1 = 0x00080000u;
    constexpr Addr kPa2 = 0x000a0000u;
    DiffPair d;
    d.load([](Assembler &a) {
        // entryhi = VPN | asid 0; entrylo = PFN | V | D
        a.li32(T0, kVa);
        a.li32(T1, kPa1 | entrylo::V | entrylo::D);
        a.mtc0(T0, cp0reg::EntryHi);
        a.mtc0(T1, cp0reg::EntryLo);
        a.li32(T2, 9u << 8);       // index 9 (not wired), bits [13:8]
        a.mtc0(T2, cp0reg::Index);
        a.tlbwi();
        a.li32(T3, kVa);
        a.li32(T4, 0xdeadbeefu);
        a.sw(T4, 0, T3);
        a.lw(T5, 0, T3);           // hits micro-dTLB
        // remap the same VPN to frame 2
        a.li32(T1, kPa2 | entrylo::V | entrylo::D);
        a.mtc0(T1, cp0reg::EntryLo);
        a.tlbwi();
        a.lw(T6, 0, T3);           // must see frame 2 (zeroes)
        a.sw(T5, 4, T3);
        a.hcall(0);
    });
    d.run();
    EXPECT_EQ(d.ref.cpu().reg(T5), 0xdeadbeefu);
    EXPECT_EQ(d.ref.cpu().reg(T6), 0u);
}

TEST(Differential, UserModeExecutionWithAsid)
{
    // User-mode code fetched through the TLB: exercises the fetch
    // cache's (VPN, ASID, mode) key. Runs a fixed budget.
    constexpr Addr kUserCode = 0x00010000u;
    constexpr Addr kCodePhys = 0x00040000u;
    constexpr unsigned kAsid = 5;
    Program prog;
    {
        Assembler a(kUserCode);
        a.label("loop");
        a.addiu(T0, T0, 1);
        a.bne(T0, T1, "loop");
        a.addiu(T2, T2, 2);
        a.j("loop");
        a.nop();
        prog = a.finalize();
    }
    DiffPair d;
    d.setup([&](Machine &m) {
        for (Word i = 0; i < prog.words.size(); i++)
            m.mem().writeWord(kCodePhys + 4 * i, prog.words[i]);
        testutil::mapPage(m, kUserCode, kCodePhys, kAsid, 1, false);
        testutil::enterUserMode(m, kAsid);
        m.cpu().setPc(kUserCode);
    });
    d.run(50'000);
}

TEST(Differential, CacheModeledConfigIdenticalCycles)
{
    // The paper configuration models I/D caches; hit/miss charging
    // must be identical in both interpreters.
    MachineConfig ref_config = rt::micro::paperMachineConfig();
    ref_config.memBytes = 1 << 20;
    ref_config.cpu.fastInterpreter = false;
    MachineConfig fast_config = ref_config;
    fast_config.cpu.fastInterpreter = true;
    DiffPair d(ref_config, fast_config);
    d.load([](Assembler &a) {
        a.li32(T1, 200);
        a.li32(T3, kTestOrigin + 0x800);
        a.label("loop");
        a.sw(T1, 0, T3);
        a.lw(T4, 0, T3);
        a.addiu(T3, T3, 4);
        a.addiu(T1, T1, -1);
        a.bne(T1, Zero, "loop");
        a.nop();
        a.hcall(0);
    });
    d.run();
}

TEST(Differential, MicrobenchTimingsIdentical)
{
    // The paper's scenario measurements (Tables 1/2) must not depend
    // on the interpreter implementation.
    using rt::micro::Scenario;
    MachineConfig ref_config = rt::micro::paperMachineConfig();
    MachineConfig fast_config = ref_config;
    fast_config.cpu.fastInterpreter = true;
    for (Scenario s : {Scenario::FastSimple, Scenario::FastWriteProt,
                       Scenario::HwVectorSimple, Scenario::NullSyscall}) {
        rt::micro::Timing ref_t = rt::micro::measure(s, ref_config);
        rt::micro::Timing fast_t = rt::micro::measure(s, fast_config);
        EXPECT_EQ(ref_t.deliverCycles, fast_t.deliverCycles)
            << "scenario " << static_cast<int>(s);
        EXPECT_EQ(ref_t.returnCycles, fast_t.returnCycles)
            << "scenario " << static_cast<int>(s);
        EXPECT_EQ(ref_t.roundTripCycles, fast_t.roundTripCycles)
            << "scenario " << static_cast<int>(s);
        EXPECT_EQ(ref_t.kernelInsts, fast_t.kernelInsts)
            << "scenario " << static_cast<int>(s);
    }
}

TEST(Differential, FastPathPhaseStatsIdentical)
{
    // Table 3 phase attribution runs with an instruction observer
    // installed; the fast interpreter must deliver the identical
    // per-phase instruction and cycle counts.
    MachineConfig ref_config = rt::micro::paperMachineConfig();
    MachineConfig fast_config = ref_config;
    fast_config.cpu.fastInterpreter = true;
    auto ref_phases = rt::micro::profileFastPath(ref_config);
    auto fast_phases = rt::micro::profileFastPath(fast_config);
    ASSERT_EQ(ref_phases.size(), fast_phases.size());
    for (std::size_t i = 0; i < ref_phases.size(); i++) {
        EXPECT_EQ(ref_phases[i].name, fast_phases[i].name);
        EXPECT_EQ(ref_phases[i].instructions, fast_phases[i].instructions)
            << "phase " << ref_phases[i].name;
        EXPECT_EQ(ref_phases[i].cycles, fast_phases[i].cycles)
            << "phase " << ref_phases[i].name;
    }
}

} // namespace
} // namespace uexc::sim
